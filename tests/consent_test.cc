// Patient-driven sharing tests: the ConsentRegistry's grant semantics
// (scoping, time-boxing, signatures), the Vault's enforcement of them
// (RBAC, ownership, synchronous revocation, disposal kill, audit and
// §164.528 accounting), persistence across reopen, sharded routing,
// and a concurrent grant/revoke churn that the sanitizer builds watch.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/consent.h"
#include "core/record_cache.h"
#include "core/shard_router.h"
#include "core/sharded_vault.h"
#include "core/vault.h"
#include "obs/metrics.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

constexpr Timestamp kHour = 3600 * kMicrosPerSecond;

// ---------------------------------------------------------------------------
// Registry semantics (no vault)
// ---------------------------------------------------------------------------

class ConsentRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.Configure(std::string(32, 'K'), "cg");
  }

  ConsentRegistry registry_;
  Timestamp now_ = 1000000;
};

TEST_F(ConsentRegistryTest, GrantValidation) {
  EXPECT_TRUE(registry_.Grant("", "dr-a", "", "why", now_, now_ + 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry_.Grant("pat-p", "", "", "why", now_, now_ + 1)
                  .status()
                  .IsInvalidArgument());
  // Patients already read their own records; self-consent is a bug.
  EXPECT_TRUE(registry_.Grant("pat-p", "pat-p", "", "why", now_, now_ + 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry_.Grant("pat-p", "dr-a", "", "", now_, now_ + 1)
                  .status()
                  .IsInvalidArgument());
  // Already expired at issue.
  EXPECT_TRUE(registry_.Grant("pat-p", "dr-a", "", "why", now_, now_)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ConsentRegistryTest, ScopeFollowsRecordId) {
  auto record_scoped =
      registry_.Grant("pat-p", "dr-a", "r-1", "referral", now_, now_ + kHour);
  ASSERT_TRUE(record_scoped.ok());
  EXPECT_EQ(record_scoped->scope, ConsentScope::kRecord);
  EXPECT_EQ(record_scoped->grant_id, "cg-1");

  auto patient_scoped =
      registry_.Grant("pat-p", "dr-b", "", "second opinion", now_,
                      now_ + kHour);
  ASSERT_TRUE(patient_scoped.ok());
  EXPECT_EQ(patient_scoped->scope, ConsentScope::kPatient);
  EXPECT_EQ(patient_scoped->grant_id, "cg-2");

  // Record-scoped: only that record, only that grantee.
  EXPECT_TRUE(
      registry_.HasActiveConsent("dr-a", "pat-p", "r-1", now_, nullptr));
  EXPECT_FALSE(
      registry_.HasActiveConsent("dr-a", "pat-p", "r-2", now_, nullptr));
  EXPECT_FALSE(
      registry_.HasActiveConsent("dr-c", "pat-p", "r-1", now_, nullptr));
  // Patient-scoped: any of the patient's records, including future ids.
  EXPECT_TRUE(
      registry_.HasActiveConsent("dr-b", "pat-p", "r-999", now_, nullptr));
  EXPECT_FALSE(
      registry_.HasActiveConsent("dr-b", "pat-q", "r-1", now_, nullptr));

  std::string matched;
  ASSERT_TRUE(
      registry_.HasActiveConsent("dr-a", "pat-p", "r-1", now_, &matched));
  EXPECT_EQ(matched, "cg-1");
}

TEST_F(ConsentRegistryTest, ExpiryBoundaryIsExclusive) {
  const Timestamp expires = now_ + kHour;
  ASSERT_TRUE(
      registry_.Grant("pat-p", "dr-a", "r-1", "why", now_, expires).ok());
  // Active strictly before expiry...
  EXPECT_TRUE(registry_.HasActiveConsent("dr-a", "pat-p", "r-1", expires - 1,
                                         nullptr));
  EXPECT_EQ(registry_.ActiveCount(expires - 1), 1u);
  // ...and refused at exactly expires_at: `<`, never `<=`. (This probe
  // also prunes the now-dead grant from the table.)
  EXPECT_FALSE(
      registry_.HasActiveConsent("dr-a", "pat-p", "r-1", expires, nullptr));
  EXPECT_EQ(registry_.ActiveCount(expires), 0u);
}

TEST_F(ConsentRegistryTest, RevokeAndListLifecycle) {
  auto g = registry_.Grant("pat-p", "dr-a", "r-1", "why", now_, now_ + kHour);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(registry_.ListForPatient("pat-p", now_).size(), 1u);
  EXPECT_TRUE(registry_.Revoke(g->grant_id).ok());
  EXPECT_FALSE(
      registry_.HasActiveConsent("dr-a", "pat-p", "r-1", now_, nullptr));
  EXPECT_TRUE(registry_.Revoke(g->grant_id).IsNotFound());
  EXPECT_TRUE(registry_.ListForPatient("pat-p", now_).empty());
}

TEST_F(ConsentRegistryTest, RevokeAllForRecordSparesPatientScope) {
  ASSERT_TRUE(
      registry_.Grant("pat-p", "dr-a", "r-1", "why", now_, now_ + kHour)
          .ok());
  ASSERT_TRUE(
      registry_.Grant("pat-p", "dr-b", "r-1", "why", now_, now_ + kHour)
          .ok());
  auto broad =
      registry_.Grant("pat-p", "dr-c", "", "why", now_, now_ + kHour);
  ASSERT_TRUE(broad.ok());

  auto killed = registry_.RevokeAllForRecord("r-1");
  EXPECT_EQ(killed.size(), 2u);
  EXPECT_FALSE(registry_.HasActiveConsentForRecord("r-1", now_));
  // The patient-scoped grant survives — it covers the patient's other
  // records, and the shredded one is unreadable once its key is gone.
  EXPECT_TRUE(
      registry_.HasActiveConsent("dr-c", "pat-p", "r-2", now_, nullptr));
}

TEST_F(ConsentRegistryTest, SignatureBindsEveryField) {
  auto g = registry_.Grant("pat-p", "dr-a", "r-1", "why", now_, now_ + kHour);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(registry_.VerifySignature(*g).ok());

  // Flipping any signed field must fail verification.
  for (int field = 0; field < 5; ++field) {
    ConsentGrant tampered = *g;
    switch (field) {
      case 0: tampered.grantee = "mallory"; break;
      case 1: tampered.record_id = "r-2"; break;
      case 2: tampered.purpose = "widened"; break;
      case 3: tampered.expires_at += kHour; break;
      case 4: tampered.patient = "pat-q"; break;
    }
    EXPECT_TRUE(registry_.VerifySignature(tampered).IsTamperDetected())
        << "field " << field;
  }
}

TEST_F(ConsentRegistryTest, EncodeDecodeRoundTrip) {
  auto g = registry_.Grant("pat-p", "dr-a", "r-1", "referral care", now_,
                           now_ + kHour);
  ASSERT_TRUE(g.ok());
  auto decoded = ConsentGrant::Decode(g->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->grant_id, g->grant_id);
  EXPECT_EQ(decoded->patient, g->patient);
  EXPECT_EQ(decoded->grantee, g->grantee);
  EXPECT_EQ(decoded->record_id, g->record_id);
  EXPECT_EQ(decoded->scope, g->scope);
  EXPECT_EQ(decoded->purpose, g->purpose);
  EXPECT_EQ(decoded->issued_at, g->issued_at);
  EXPECT_EQ(decoded->expires_at, g->expires_at);
  EXPECT_EQ(decoded->signature, g->signature);
  EXPECT_TRUE(registry_.VerifySignature(*decoded).ok());

  // Truncations and trailing garbage are corruption, never a crash.
  const std::string wire = g->Encode();
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(ConsentGrant::Decode(Slice(wire.data(), cut)).ok());
  }
  EXPECT_TRUE(
      ConsentGrant::Decode(wire + "x").status().IsCorruption());
}

TEST_F(ConsentRegistryTest, RestoreKeepsIdCounterAhead) {
  auto g = registry_.Grant("pat-p", "dr-a", "r-1", "why", now_, now_ + kHour);
  ASSERT_TRUE(g.ok());

  ConsentRegistry replayed;
  replayed.Configure(std::string(32, 'K'), "cg");
  ASSERT_TRUE(replayed.Restore(*g, now_).ok());
  EXPECT_TRUE(
      replayed.HasActiveConsent("dr-a", "pat-p", "r-1", now_, nullptr));
  // A fresh grant after replay must not collide with the replayed id.
  auto next =
      replayed.Grant("pat-p", "dr-b", "", "why", now_, now_ + kHour);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->grant_id, "cg-2");

  // Replaying an expired grant notes the id but installs nothing.
  ConsentRegistry late;
  late.Configure(std::string(32, 'K'), "cg");
  ASSERT_TRUE(late.Restore(*g, g->expires_at).ok());
  EXPECT_EQ(late.ActiveCount(g->expires_at), 0u);
}

// ---------------------------------------------------------------------------
// Vault enforcement
// ---------------------------------------------------------------------------

class ConsentVaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OpenVault();
    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-b", Role::kPhysician, "Dr B"})
                    .ok());
    ASSERT_TRUE(
        vault_
            ->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
            .ok());
    ASSERT_TRUE(
        vault_->RegisterPrincipal("admin-r", {"pat-p", Role::kPatient, "P"})
            .ok());
    ASSERT_TRUE(
        vault_->RegisterPrincipal("admin-r", {"pat-q", Role::kPatient, "Q"})
            .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  void OpenVault() {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "consent-test-entropy";
    options.signer_height = 4;
    options.cache = &cache_;
    options.metrics = &metrics_;
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok()) << vault.status().ToString();
    vault_ = std::move(vault).value();
  }

  void Reopen() {
    vault_.reset();
    OpenVault();
  }

  Result<RecordId> CreateForP() {
    return vault_->CreateRecord("dr-a", "pat-p", "text/plain", "p note",
                                {"cardiology"}, "hipaa-6y");
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  RecordCache cache_{1 << 20};
  obs::MetricsRegistry metrics_;
  std::unique_ptr<Vault> vault_;
};

TEST_F(ConsentVaultTest, OnlyPatientsDelegateAndOnlyTheirOwnRecords) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  // Non-patient principals cannot issue consent grants.
  EXPECT_TRUE(vault_->GrantConsent("dr-a", "dr-b", *rp, "why", kHour)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(vault_->GrantConsent("admin-r", "dr-b", *rp, "why", kHour)
                  .status()
                  .IsPermissionDenied());
  // pat-q does not own rp.
  EXPECT_TRUE(vault_->GrantConsent("pat-q", "dr-b", *rp, "why", kHour)
                  .status()
                  .IsPermissionDenied());
  // The grantee must be a registered principal.
  EXPECT_TRUE(vault_->GrantConsent("pat-p", "ghost", *rp, "why", kHour)
                  .status()
                  .IsNotFound());
  // Valid: the record's owner delegates to a registered principal.
  auto g = vault_->GrantConsent("pat-p", "dr-b", *rp, "referral", kHour);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->scope, ConsentScope::kRecord);
  EXPECT_EQ(vault_->ActiveConsentCount(), 1u);
}

TEST_F(ConsentVaultTest, GranteeReadsAndAuditNamesTheBasis) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  // dr-b has no care relation with pat-p: refused before the grant...
  EXPECT_TRUE(vault_->ReadRecord("dr-b", *rp).status().IsPermissionDenied());
  auto g = vault_->GrantConsent("pat-p", "dr-b", *rp, "referral", kHour);
  ASSERT_TRUE(g.ok());
  // ...allowed under it.
  auto read = vault_->ReadRecord("dr-b", *rp);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->plaintext, "p note");
  ASSERT_TRUE(vault_->RecordHistory("dr-b", *rp).ok());
  ASSERT_TRUE(vault_->ReadRecordVersion("dr-b", *rp, 1).ok());

  // Every read exercised through the grant names it in the audit trail;
  // reads on another basis (care relation) stay unannotated.
  ASSERT_TRUE(vault_->ReadRecord("dr-a", *rp).ok());
  auto trail = vault_->ReadAuditTrail("aud-x", *rp);
  ASSERT_TRUE(trail.ok());
  const std::string tag = " via=consent grant=" + g->grant_id;
  size_t tagged = 0;
  for (const AuditEvent& e : *trail) {
    // Denied attempts log as kAccessDenied, so every kRead here is a
    // successful disclosure.
    if (e.actor == "dr-b" && e.action == AuditAction::kRead) {
      EXPECT_NE(e.details.find(tag), std::string::npos) << e.details;
      ++tagged;
    }
    if (e.actor == "dr-a") {
      EXPECT_EQ(e.details.find("via="), std::string::npos) << e.details;
    }
  }
  EXPECT_EQ(tagged, 3u);  // read + history + version read
  EXPECT_EQ(metrics_.GetCounter("consent.exercised")->Value(), 2u);
}

TEST_F(ConsentVaultTest, ConsentIsReadOnlyDelegation) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(vault_->GrantConsent("pat-p", "dr-b", *rp, "why", kHour).ok());
  EXPECT_TRUE(vault_->CorrectRecord("dr-b", *rp, "rewrite", "fix", {})
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(
      vault_->DisposeRecord("dr-b", *rp).status().IsPermissionDenied());
  // Non-clinicians under patient-scoped consent still cannot search.
  ASSERT_TRUE(vault_->GrantConsent("pat-p", "pat-q", "", "proxy", kHour).ok());
  EXPECT_TRUE(vault_->SearchKeyword("pat-q", "cardiology")
                  .status()
                  .IsPermissionDenied());
  // But they can read the record directly.
  EXPECT_TRUE(vault_->ReadRecord("pat-q", *rp).ok());
}

TEST_F(ConsentVaultTest, ExpiryBoundaryThroughTheVaultClock) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  auto g = vault_->GrantConsent("pat-p", "dr-b", *rp, "why", kHour);
  ASSERT_TRUE(g.ok());
  clock_.Set(g->expires_at - 1);
  EXPECT_TRUE(vault_->ReadRecord("dr-b", *rp).ok());
  // At exactly expires_at the grant is dead — `<`, never `<=`.
  clock_.Set(g->expires_at);
  EXPECT_TRUE(vault_->ReadRecord("dr-b", *rp).status().IsPermissionDenied());
  EXPECT_EQ(vault_->ActiveConsentCount(), 0u);
}

TEST_F(ConsentVaultTest, RevocationIsSynchronousAndPurgesCache) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  auto g = vault_->GrantConsent("pat-p", "dr-b", *rp, "why", kHour);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-b", *rp).ok());
  EXPECT_GT(cache_.entry_count(), 0u);

  // Only the granting patient or an admin may revoke.
  EXPECT_TRUE(
      vault_->RevokeConsent("dr-b", g->grant_id).IsPermissionDenied());
  EXPECT_TRUE(
      vault_->RevokeConsent("pat-q", g->grant_id).IsPermissionDenied());
  ASSERT_TRUE(vault_->RevokeConsent("pat-p", g->grant_id).ok());

  // The instant the revoke returns: reads refused, no cached plaintext.
  EXPECT_TRUE(vault_->ReadRecord("dr-b", *rp).status().IsPermissionDenied());
  EXPECT_EQ(cache_.entry_count(), 0u);
  EXPECT_TRUE(vault_->RevokeConsent("pat-p", g->grant_id).IsNotFound());
  EXPECT_EQ(metrics_.GetCounter("consent.revoked")->Value(), 1u);
}

TEST_F(ConsentVaultTest, ListConsentsIsPatientOrAuditAuthority) {
  ASSERT_TRUE(vault_->GrantConsent("pat-p", "dr-b", "", "why", kHour).ok());
  auto own = vault_->ListConsents("pat-p", "pat-p");
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->size(), 1u);
  ASSERT_TRUE(vault_->ListConsents("aud-x", "pat-p").ok());
  ASSERT_TRUE(vault_->ListConsents("admin-r", "pat-p").ok());
  EXPECT_TRUE(vault_->ListConsents("pat-q", "pat-p")
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(vault_->ListConsents("dr-b", "pat-p")
                  .status()
                  .IsPermissionDenied());
}

TEST_F(ConsentVaultTest, AccountingMatchesScanOracleWithGranteeIdentity) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  auto g = vault_->GrantConsent("pat-p", "dr-b", *rp, "referral", kHour);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-b", *rp).ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-a", *rp).ok());
  ASSERT_TRUE(
      vault_->BreakGlass("dr-b", "pat-q", "ER", kHour).ok());  // not pat-p

  auto accounting = vault_->AccountingOfDisclosures("aud-x", "pat-p");
  ASSERT_TRUE(accounting.ok());

  // Oracle: a full-trail scan. A disclosure of pat-p is a successful
  // read of their record or a consent grant they issued; dr-b's
  // break-glass names pat-q and must not appear.
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  std::vector<uint64_t> expected;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kRead && e.record_id == *rp) {
      expected.push_back(e.seq);
    }
    if (e.action == AuditAction::kConsentGrant &&
        e.details.rfind("patient=pat-p ", 0) == 0) {
      expected.push_back(e.seq);
    }
  }
  ASSERT_EQ(accounting->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*accounting)[i].seq, expected[i]);
  }
  // The grant discloses the grantee's identity; the delegated read
  // names both the grantee (actor) and the grant it rode in on.
  bool saw_grant = false, saw_delegated_read = false;
  for (const AuditEvent& e : *accounting) {
    if (e.action == AuditAction::kConsentGrant) {
      saw_grant = true;
      EXPECT_NE(e.details.find("grantee=dr-b"), std::string::npos);
    }
    if (e.action == AuditAction::kRead && e.actor == "dr-b") {
      saw_delegated_read = true;
      EXPECT_NE(e.details.find("via=consent grant=" + g->grant_id),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_grant);
  EXPECT_TRUE(saw_delegated_read);
}

TEST_F(ConsentVaultTest, GrantsSurviveReopenAndSoDoRevocations) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  auto keep = vault_->GrantConsent("pat-p", "dr-b", *rp, "keep", kHour);
  ASSERT_TRUE(keep.ok());
  auto kill = vault_->GrantConsent("pat-p", "pat-q", "", "kill", kHour);
  ASSERT_TRUE(kill.ok());
  ASSERT_TRUE(vault_->RevokeConsent("pat-p", kill->grant_id).ok());
  ASSERT_TRUE(vault_->SyncAll().ok());

  Reopen();
  EXPECT_EQ(vault_->ActiveConsentCount(), 1u);
  EXPECT_TRUE(vault_->ReadRecord("dr-b", *rp).ok());
  EXPECT_TRUE(vault_->ReadRecord("pat-q", *rp).status().IsPermissionDenied());
  // The id counter moved past both replayed grants.
  auto next = vault_->GrantConsent("pat-p", "pat-q", "", "fresh", kHour);
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next->grant_id, keep->grant_id);
  EXPECT_NE(next->grant_id, kill->grant_id);

  // The expiry boundary also holds for restored grants.
  clock_.Set(keep->expires_at - 1);
  EXPECT_TRUE(vault_->ReadRecord("dr-b", *rp).ok());
  clock_.Set(keep->expires_at);
  EXPECT_TRUE(vault_->ReadRecord("dr-b", *rp).status().IsPermissionDenied());
}

TEST_F(ConsentVaultTest, CryptoShredKillsRecordGrantsSparesPatientScope) {
  auto rp = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "p note",
                                 {}, "short-1y");
  ASSERT_TRUE(rp.ok());
  // Decade-long grants so they are still live when retention expires.
  const Timestamp kDecade = 10 * 365 * 24 * kHour;
  auto narrow = vault_->GrantConsent("pat-p", "dr-b", *rp, "narrow", kDecade);
  ASSERT_TRUE(narrow.ok());
  auto broad = vault_->GrantConsent("pat-p", "pat-q", "", "broad", kDecade);
  ASSERT_TRUE(broad.ok());

  clock_.AdvanceYears(2);  // past the 1-year retention
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *rp).ok());
  // The record-scoped grant died with the key; the revocation is
  // audited with the shred as its reason.
  EXPECT_EQ(vault_->ActiveConsentCount(), 1u);
  auto live = vault_->ListConsents("pat-p", "pat-p");
  ASSERT_TRUE(live.ok());
  ASSERT_EQ(live->size(), 1u);
  EXPECT_EQ((*live)[0].grant_id, broad->grant_id);
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  bool shred_revoke = false;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kConsentRevoke &&
        e.details.find("grant=" + narrow->grant_id) != std::string::npos) {
      EXPECT_NE(e.details.find("reason=crypto-shred"), std::string::npos);
      shred_revoke = true;
    }
  }
  EXPECT_TRUE(shred_revoke);
  // And it stays dead across reopen.
  ASSERT_TRUE(vault_->SyncAll().ok());
  Reopen();
  EXPECT_EQ(vault_->ActiveConsentCount(), 1u);
}

TEST_F(ConsentVaultTest, GrantOnDisposedOrForeignRecordRefused) {
  auto rp = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "p note",
                                 {}, "short-1y");
  ASSERT_TRUE(rp.ok());
  clock_.AdvanceYears(2);  // past the 1-year retention
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *rp).ok());
  EXPECT_TRUE(vault_->GrantConsent("pat-p", "dr-b", *rp, "late", kHour)
                  .status()
                  .IsKeyDestroyed());
  EXPECT_TRUE(vault_->GrantConsent("pat-p", "dr-b", "r-999", "ghost", kHour)
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// Sharded routing
// ---------------------------------------------------------------------------

class ConsentShardedTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;

  void SetUp() override {
    ShardedVaultOptions options;
    options.env = &env_;
    options.dir = "sharded";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "consent-sharded";
    options.num_shards = kShards;
    options.signer_height = 4;
    auto opened = ShardedVault::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    vault_ = std::move(*opened);
    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-b", Role::kPhysician, "Dr B"})
                    .ok());
    for (int p = 0; p < 8; ++p) {
      const std::string pat = Patient(p);
      ASSERT_TRUE(
          vault_->RegisterPrincipal("admin-r", {pat, Role::kPatient, pat})
              .ok());
      ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", pat).ok());
    }
  }

  static std::string Patient(int p) { return "pat-" + std::to_string(p); }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<ShardedVault> vault_;
};

TEST_F(ConsentShardedTest, GrantIdsNameTheirShardAndRouteBack) {
  for (int p = 0; p < 8; ++p) {
    const std::string pat = Patient(p);
    auto rid = vault_->CreateRecord("dr-a", pat, "text/plain", "n", {},
                                    "hipaa-6y");
    ASSERT_TRUE(rid.ok());
    auto g = vault_->GrantConsent(pat, "dr-b", *rid, "routing", kHour);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    uint32_t shard = 0;
    ASSERT_TRUE(ShardRouter::ShardOfConsentId(g->grant_id, &shard));
    EXPECT_EQ(shard, vault_->router().ShardOf(pat));
    // The grantee reads through the sharded facade.
    EXPECT_TRUE(vault_->ReadRecord("dr-b", *rid).ok());
    // Revocation routes by the grant id alone and is total.
    ASSERT_TRUE(vault_->RevokeConsent(pat, g->grant_id).ok());
    EXPECT_TRUE(
        vault_->ReadRecord("dr-b", *rid).status().IsPermissionDenied());
  }
  EXPECT_EQ(vault_->ActiveConsentCount(), 0u);
}

TEST_F(ConsentShardedTest, UnroutableGrantIdsAreNotFound) {
  EXPECT_TRUE(vault_->RevokeConsent(Patient(0), "cg-1").IsNotFound());
  EXPECT_TRUE(vault_->RevokeConsent(Patient(0), "s99-cg-1").IsNotFound());
  EXPECT_TRUE(vault_->RevokeConsent(Patient(0), "garbage").IsNotFound());
}

TEST_F(ConsentShardedTest, CrossShardGrantRefusedListsRouted) {
  // Find two patients on different shards.
  std::string a = Patient(0), b;
  for (int p = 1; p < 8; ++p) {
    if (vault_->router().ShardOf(Patient(p)) !=
        vault_->router().ShardOf(a)) {
      b = Patient(p);
      break;
    }
  }
  ASSERT_FALSE(b.empty());
  auto rid_b =
      vault_->CreateRecord("dr-a", b, "text/plain", "b", {}, "hipaa-6y");
  ASSERT_TRUE(rid_b.ok());
  // Patient a cannot grant on a record that lives on b's shard.
  EXPECT_TRUE(vault_->GrantConsent(a, "dr-b", *rid_b, "cross", kHour)
                  .status()
                  .IsPermissionDenied());

  auto g = vault_->GrantConsent(b, "dr-b", *rid_b, "own", kHour);
  ASSERT_TRUE(g.ok());
  auto listed = vault_->ListConsents(b, b);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].grant_id, g->grant_id);
  EXPECT_EQ(vault_->ActiveConsentCount(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrent churn (sanitizer target: smoke.sh re-runs the `consent`
// label under ASan/UBSan/TSan)
// ---------------------------------------------------------------------------

TEST_F(ConsentVaultTest, ConcurrentReadersNeverOutliveARevocation) {
  auto rp = CreateForP();
  ASSERT_TRUE(rp.ok());
  auto g = vault_->GrantConsent("pat-p", "dr-b", *rp, "churn", kHour);
  ASSERT_TRUE(g.ok());

  std::atomic<bool> revoked{false};
  std::atomic<int> started{0};
  std::atomic<int> late_success{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      started.fetch_add(1, std::memory_order_release);
      // Bounded churn: each iteration after the revoke lands is one
      // audited denial, so an unbounded loop would just grow the audit
      // log while the main thread finishes.
      for (int i = 0; i < 300; ++i) {
        const bool was_revoked = revoked.load(std::memory_order_acquire);
        auto read = vault_->ReadRecord("dr-b", *rp);
        // Reads that *started* after the revoke returned must fail.
        // (A read overlapping the revoke may legitimately land either
        // way; one sampled strictly-after success is the bug.)
        if (was_revoked && read.ok()) {
          late_success.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Revoke mid-churn, once every reader is running.
  while (started.load(std::memory_order_acquire) < 4) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(vault_->RevokeConsent("pat-p", g->grant_id).ok());
  revoked.store(true, std::memory_order_release);
  // After the acked revoke: every new delegated read is refused...
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(
        vault_->ReadRecord("dr-b", *rp).status().IsPermissionDenied());
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(late_success.load(), 0);
  // ...and the owner's reads may refill the cache, but a purge did run
  // the instant the grant died (revocation is synchronous and total).
  EXPECT_GT(cache_.stats().purges, 0u);
}

}  // namespace
}  // namespace medvault::core
