// Decoder-robustness sweeps ("poor man's fuzzing"): every on-disk
// structure's Decode must handle arbitrary bytes without crashing —
// returning an error or a well-formed value, never UB. Compliance
// storage parses attacker-reachable bytes by definition.

#include <gtest/gtest.h>

#include <string>

#include "common/coding.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/backup.h"
#include "core/migration.h"
#include "core/provenance.h"
#include "core/record.h"
#include "core/retention.h"
#include "crypto/xmss.h"
#include "storage/log_reader.h"
#include "storage/mem_env.h"
#include "storage/segment.h"

namespace medvault {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::string out(len, '\0');
  for (size_t i = 0; i < len; i++) {
    out[i] = static_cast<char>(rng->Uniform(256));
  }
  return out;
}

class DecoderFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr int kIterations = 300;
};

TEST_P(DecoderFuzz, AllDecodersSurviveRandomBytes) {
  Random rng(GetParam());
  for (int i = 0; i < kIterations; i++) {
    std::string bytes = RandomBytes(&rng, 300);
    // Each of these must return (not crash); value vs error is free.
    (void)core::VersionHeader::Decode(bytes);
    (void)core::RecordMeta::Decode(bytes);
    (void)core::AuditEvent::Decode(bytes);
    (void)core::SignedCheckpoint::Decode(bytes);
    (void)core::CustodyEvent::Decode(bytes);
    (void)core::DisposalCertificate::Decode(bytes);
    (void)core::MigrationReceipt::Decode(bytes);
    (void)core::BackupManifest::Decode(bytes);
    (void)core::ParseVersionEntry(bytes);
    (void)crypto::XmssSignature::Decode(bytes);
    (void)storage::EntryHandle::Decode(bytes);
  }
}

TEST_P(DecoderFuzz, MutatedValidEncodingsNeverCrash) {
  Random rng(GetParam());

  core::AuditEvent event;
  event.seq = 5;
  event.timestamp = 123;
  event.actor = "dr-a";
  event.action = core::AuditAction::kRead;
  event.record_id = "r-1";
  event.details = "details";
  event.prev_hash = std::string(32, 'h');
  std::string valid_event = event.Encode();

  core::CustodyEvent custody;
  custody.record_id = "r-1";
  custody.actor = "dr-a";
  custody.system_id = "sys";
  custody.prev_hash = std::string(32, 'h');
  std::string valid_custody = custody.Encode();

  for (int i = 0; i < kIterations; i++) {
    for (const std::string* base : {&valid_event, &valid_custody}) {
      std::string mutated = *base;
      // 1-3 random mutations: flip, truncate, or extend.
      int mutations = 1 + rng.Uniform(3);
      for (int m = 0; m < mutations; m++) {
        switch (rng.Uniform(3)) {
          case 0:
            if (!mutated.empty()) {
              mutated[rng.Uniform(mutated.size())] ^=
                  static_cast<char>(1 + rng.Uniform(255));
            }
            break;
          case 1:
            mutated.resize(rng.Uniform(mutated.size() + 1));
            break;
          case 2:
            mutated += RandomBytes(&rng, 16);
            break;
        }
      }
      (void)core::AuditEvent::Decode(mutated);
      (void)core::CustodyEvent::Decode(mutated);
    }
  }
}

TEST_P(DecoderFuzz, LogReaderSurvivesRandomFiles) {
  Random rng(GetParam());
  storage::MemEnv env;
  for (int i = 0; i < 30; i++) {
    std::string name = "fuzz-" + std::to_string(i);
    ASSERT_TRUE(storage::WriteStringToFile(&env, RandomBytes(&rng, 2000),
                                           name, false)
                    .ok());
    std::unique_ptr<storage::SequentialFile> src;
    ASSERT_TRUE(env.NewSequentialFile(name, &src).ok());
    storage::log::Reader reader(std::move(src));
    std::string record;
    int guard = 0;
    while (reader.ReadRecord(&record) && guard++ < 10000) {
    }
    // Whatever happened, the reader terminated with a definite status.
    (void)reader.status();
  }
}

TEST_P(DecoderFuzz, SegmentStoreSurvivesGarbageSegments) {
  Random rng(GetParam());
  storage::MemEnv env;
  // Pre-plant a garbage segment whose first frame is structurally
  // complete (length field fits) but whose CRC is random garbage. Open
  // may cut a structurally torn tail behind it, but the complete bad
  // frame is tamper evidence and must surface as corruption — cleanly,
  // not as a crash.
  std::string garbage(500, '\0');
  for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
  EncodeFixed32(&garbage[4], 100);
  ASSERT_TRUE(
      storage::WriteStringToFile(&env, garbage, "seg/seg-00000001", false)
          .ok());
  storage::SegmentStore store(&env, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  Status s = store.ForEachEntry(
      [](const storage::EntryHandle&, const Slice&) { return true; });
  EXPECT_FALSE(s.ok());
}

TEST_P(DecoderFuzz, SegmentStoreRecoversStructurallyTornTail) {
  Random rng(GetParam());
  storage::MemEnv env;
  // A file that parses as an incomplete frame from byte 0 is
  // indistinguishable from a torn append of a large payload: Open
  // recovers by truncating it, and iteration sees an empty store.
  std::string garbage(500, '\0');
  for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
  EncodeFixed32(&garbage[4], 1u << 30);  // length field overruns the file
  ASSERT_TRUE(
      storage::WriteStringToFile(&env, garbage, "seg/seg-00000001", false)
          .ok());
  storage::SegmentStore store(&env, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  int entries = 0;
  Status s = store.ForEachEntry(
      [&](const storage::EntryHandle&, const Slice&) {
        entries++;
        return true;
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(entries, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(0xf00d, 0xbeef, 0xcafe, 0xd00d));

}  // namespace
}  // namespace medvault
