// Crash matrix: a full record lifecycle (bootstrap → ingest → batch
// ingest → correction → checkpoint → crypto-shred) is killed by a
// simulated power cut at EVERY sanctioned I/O boundary, the unsynced
// bytes are dropped (or partially kept), and the vault is reopened.
//
// After every crash point the reopened vault must satisfy the recovery
// contract:
//   - Open succeeds (never a wedged store),
//   - the audit chain verifies end to end,
//   - every record acknowledged by a successful SyncAll is readable at
//     (at least) its acknowledged version — or crypto-shredded, but
//     only if its disposal had been started,
//   - NO partial record is visible: everything the catalog lists is
//     either fully readable or a disposed tombstone,
//   - blinded search still finds every acknowledged record,
//   - the vault accepts fresh ingest after recovery.
//
// The boundary count is discovered by one fault-free dry run; the
// matrix then replays the deterministic workload once per boundary per
// crash mode. See FaultInjectionEnv::PlanCrash and
// MemEnv::CrashAndRecover for the power-fail model.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/audit.h"
#include "core/replication.h"
#include "core/shard_router.h"
#include "core/sharded_vault.h"
#include "core/vault.h"
#include "crypto/xmss.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"

namespace medvault {
namespace {

using core::Role;
using core::ShardedVault;
using core::ShardedVaultOptions;
using core::ShardRouter;
using core::Vault;
using core::VaultOptions;

/// What the workload got durably acknowledged before the power cut.
/// Only SyncAll-acked state carries guarantees across a crash.
struct WorkloadTrace {
  /// record id -> minimum latest version the reopened vault must serve.
  std::map<std::string, uint32_t> acked;
  /// Acked records indexed under the "shared" keyword (search probe).
  std::vector<std::string> acked_shared;
  std::string disposal_id;         ///< the record the workload shreds
  bool disposal_started = false;   ///< DisposeRecord was entered
  bool disposal_acked = false;     ///< ...and a later SyncAll succeeded
  /// The record reachable by "dr" only through a break-glass grant
  /// (its patient has no treating clinician), and whether the grant
  /// was durably acknowledged — an acked grant must survive reopen via
  /// state-log replay at its ORIGINAL expiry.
  std::string breakglass_record;
  bool breakglass_acked = false;
  /// One record of patient "p" (for the revoked-consent probe below).
  std::string p_record;
  /// Patient-driven sharing: "spec" (a physician with NO care relation
  /// and no break-glass grant) reads q's sealed record only through q's
  /// consent grant. Grants and revocations ride the state log exactly
  /// like break-glass: an acked grant must survive reopen at its
  /// original expiry, an acked revocation must stay revoked, and an
  /// acked crypto-shred must leave no live record-scoped grant behind.
  std::string consent_grant_id;    ///< q -> spec on the sealed record
  bool consent_grant_acked = false;
  std::string revoked_grant_id;    ///< p -> spec, patient-wide, revoked
  bool revoke_acked = false;
  std::string doomed_grant_id;     ///< p -> spec on the doomed record
  bool doomed_grant_acked = false;
  /// Checkpoints whose publication returned OK. AuditLog::Checkpoint
  /// syncs the frame before returning, so an OK return IS the ack: the
  /// reopened log must still carry each one verbatim.
  std::vector<core::SignedCheckpoint> acked_checkpoints;
};

VaultOptions Options(storage::Env* env, const Clock* clock) {
  VaultOptions options;
  options.env = env;
  options.dir = "vault";
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "crash-entropy";
  options.signer_height = 4;
  return options;
}

/// Runs the lifecycle workload until it completes or the planned crash
/// makes an operation fail. Every step bails on the first error — after
/// a power cut the process is gone, so nothing after the failing call
/// may execute. Records what a client would consider durable in
/// `trace`.
void RunWorkload(storage::Env* env, ManualClock* clock,
                 WorkloadTrace* trace) {
  auto opened = Vault::Open(Options(env, clock));
  if (!opened.ok()) return;
  Vault* vault = opened->get();

  if (!vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok())
    return;
  if (!vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}).ok())
    return;
  if (!vault->RegisterPrincipal("admin", {"p", Role::kPatient, "P"}).ok())
    return;
  if (!vault->RegisterPrincipal("admin", {"ck", Role::kClerk, "C"}).ok())
    return;
  // "q" deliberately has no treating clinician: only break-glass opens
  // their records to dr.
  if (!vault->RegisterPrincipal("admin", {"q", Role::kPatient, "Q"}).ok())
    return;
  // "spec" has no care relation with anyone: only patient consent
  // grants open records to them.
  if (!vault->RegisterPrincipal("admin", {"spec", Role::kPhysician, "S"})
           .ok())
    return;
  if (!vault->AssignCare("admin", "dr", "p").ok()) return;
  if (!vault->SyncAll().ok()) return;

  // Ingest: one single create plus a batched pair.
  auto r1 = vault->CreateRecord("dr", "p", "text/plain",
                                "alpha clinical note", {"alpha", "shared"},
                                "hipaa-6y");
  if (!r1.ok()) return;
  trace->p_record = *r1;
  auto batch = vault->CreateRecordsBatch(
      "dr", {{"p", "text/plain", "beta result", {"beta", "shared"},
              "hipaa-6y"},
             {"p", "text/plain", "gamma scan", {"gamma", "shared"},
              "hipaa-6y"}});
  if (!batch.ok()) return;
  if (vault->SyncAll().ok()) {
    trace->acked[*r1] = 1;
    for (const auto& id : *batch) trace->acked[id] = 1;
    trace->acked_shared = {*r1, (*batch)[0], (*batch)[1]};
  }

  // Correction: r1 gains version 2.
  if (!vault
           ->CorrectRecord("dr", *r1, "alpha clinical note, corrected",
                           "transcription error", {"alpha", "shared"})
           .ok())
    return;
  if (vault->SyncAll().ok()) trace->acked[*r1] = 2;

  // Break-glass: the clerk registers a record for the clinician-less
  // patient, then dr breaks glass. Record and grant are acked by the
  // same SyncAll; from then on the reopened vault must honor the grant
  // (it rides the state log — a grant living only in memory would be
  // silently revoked by the power cut while the audit trail claims
  // emergency access was active).
  auto sealed = vault->CreateRecord("ck", "q", "text/plain",
                                    "sealed note for q", {"sealed"},
                                    "hipaa-6y");
  if (!sealed.ok()) return;
  trace->breakglass_record = *sealed;
  // 10 years: outlives the disposal step's 2-year clock jump below.
  if (!vault->BreakGlass("dr", "q", "crash-matrix emergency",
                         10 * kMicrosPerYear)
           .ok())
    return;
  if (vault->SyncAll().ok()) {
    trace->acked[*sealed] = 1;
    trace->breakglass_acked = true;
  }

  // Consent: q delegates their sealed record to spec (10 years, so the
  // disposal step's 2-year jump cannot age it out), and p issues then
  // immediately revokes a patient-wide grant. Both ride the state log.
  auto shared_grant = vault->GrantConsent("q", "spec", *sealed,
                                          "second opinion",
                                          10 * kMicrosPerYear);
  if (!shared_grant.ok()) return;
  trace->consent_grant_id = shared_grant->grant_id;
  if (vault->SyncAll().ok()) trace->consent_grant_acked = true;

  auto broad_grant = vault->GrantConsent("p", "spec", "", "care transfer",
                                         10 * kMicrosPerYear);
  if (!broad_grant.ok()) return;
  trace->revoked_grant_id = broad_grant->grant_id;
  if (!vault->RevokeConsent("p", broad_grant->grant_id).ok()) return;
  if (vault->SyncAll().ok()) trace->revoke_acked = true;

  auto mid_checkpoint = vault->CheckpointAudit();
  if (!mid_checkpoint.ok()) return;
  trace->acked_checkpoints.push_back(*mid_checkpoint);

  // Disposal: a short-retention record, aged out, then crypto-shredded.
  auto doomed = vault->CreateRecord("dr", "p", "text/plain",
                                    "delta short-lived", {"delta"},
                                    "short-1y");
  if (!doomed.ok()) return;
  if (vault->SyncAll().ok()) trace->acked[*doomed] = 1;
  trace->disposal_id = *doomed;

  // A record-scoped grant on the doomed record: the crypto-shred below
  // must revoke it synchronously and durably.
  auto doomed_grant = vault->GrantConsent("p", "spec", *doomed,
                                          "short-lived share",
                                          10 * kMicrosPerYear);
  if (!doomed_grant.ok()) return;
  trace->doomed_grant_id = doomed_grant->grant_id;
  if (vault->SyncAll().ok()) trace->doomed_grant_acked = true;

  clock->AdvanceYears(2);

  trace->disposal_started = true;
  if (!vault->DisposeRecord("admin", *doomed).ok()) return;
  if (vault->SyncAll().ok()) trace->disposal_acked = true;

  // A second checkpoint after the shred: the matrix now also covers
  // crash points with one durable checkpoint behind them and another
  // in flight — including the window between the XMSS leaf reservation
  // (synced to the state log first) and the checkpoint frame's own
  // sync, where the power cut must WASTE the reserved leaf, never hand
  // it back for reuse.
  auto final_checkpoint = vault->CheckpointAudit();
  if (!final_checkpoint.ok()) return;
  trace->acked_checkpoints.push_back(*final_checkpoint);
}

/// Re-registers whatever part of the cast the crash erased. Individual
/// registrations may fail because the principal already exists — that
/// is fine; the probe that follows is what asserts.
void EnsureCast(Vault* vault) {
  (void)vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"});
  (void)vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"});
  (void)vault->RegisterPrincipal("admin", {"p", Role::kPatient, "P"});
  (void)vault->RegisterPrincipal("admin", {"ck", Role::kClerk, "C"});
  (void)vault->RegisterPrincipal("admin", {"q", Role::kPatient, "Q"});
  (void)vault->RegisterPrincipal("admin", {"spec", Role::kPhysician, "S"});
  (void)vault->AssignCare("admin", "dr", "p");
}

/// Asserts the full recovery contract on a post-crash env.
void CheckRecovered(storage::Env* env, ManualClock* clock,
                    const WorkloadTrace& trace, const std::string& label) {
  SCOPED_TRACE(label);
  auto reopened = Vault::Open(Options(env, clock));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Vault* vault = reopened->get();

  EXPECT_TRUE(vault->VerifyAudit().ok());

  // Published-checkpoint contract: every checkpoint whose publication
  // was acknowledged survives the crash verbatim, the reopened log
  // still proves append-only growth from it, and an inclusion proof
  // for an old event still verifies against its (now stale) root.
  for (const core::SignedCheckpoint& cp : trace.acked_checkpoints) {
    auto persisted = vault->audit()->CheckpointAt(cp.tree_size);
    ASSERT_TRUE(persisted.ok())
        << "acked checkpoint at size " << cp.tree_size
        << " lost: " << persisted.status().ToString();
    EXPECT_EQ(persisted->root, cp.root);
    EXPECT_EQ(persisted->signature, cp.signature);
    EXPECT_TRUE(vault->VerifyAuditAgainstTrusted(cp).ok());
    if (cp.tree_size > 0) {
      auto proof = vault->audit()->ProveEventAt(0, cp.tree_size);
      ASSERT_TRUE(proof.ok()) << proof.status().ToString();
      EXPECT_TRUE(core::AuditLog::VerifyEventProof(*proof, cp.root).ok());
    }
  }

  // XMSS leaf conservation: reserve-then-sign makes the spent-leaf
  // count durable BEFORE any signature exists, so no leaf visible in a
  // persisted checkpoint may sign twice or sit at/past the restored
  // signer position — wherever the power cut landed. Reuse would
  // forfeit the one-time scheme outright.
  std::set<uint32_t> used_leaves;
  for (const core::SignedCheckpoint& cp :
       vault->audit()->SnapshotCheckpoints()) {
    auto sig = crypto::XmssSignature::Decode(cp.signature);
    ASSERT_TRUE(sig.ok()) << sig.status().ToString();
    EXPECT_TRUE(used_leaves.insert(sig->leaf_index).second)
        << "XMSS leaf " << sig->leaf_index
        << " signs two persisted checkpoints";
    EXPECT_LT(sig->leaf_index, vault->signer()->SignaturesUsed())
        << "restored signer would re-sign with leaf " << sig->leaf_index;
  }

  // Every SyncAll-acked record must still be served at (at least) its
  // acked version; the shredded one must read as destroyed once the
  // disposal was acked, and may read either way while it was in flight.
  for (const auto& [id, version] : trace.acked) {
    // q's record is read as q themself: its survival must not depend
    // on the break-glass grant's (asserted separately below).
    const char* reader = id == trace.breakglass_record ? "q" : "dr";
    auto read = vault->ReadRecord(reader, id);
    if (id == trace.disposal_id && trace.disposal_started) {
      if (trace.disposal_acked) {
        EXPECT_TRUE(read.status().IsKeyDestroyed())
            << id << ": " << read.status().ToString();
      } else {
        EXPECT_TRUE(read.ok() || read.status().IsKeyDestroyed())
            << id << ": " << read.status().ToString();
      }
      continue;
    }
    ASSERT_TRUE(read.ok()) << id << ": " << read.status().ToString();
    EXPECT_GE(read->header.version, version) << id;
  }

  // No partial record: whatever the catalog lists is fully usable —
  // meta present, history walkable, latest version readable (or a
  // disposed tombstone).
  for (const auto& id : vault->ListRecordIds()) {
    auto meta = vault->GetRecordMeta(id);
    ASSERT_TRUE(meta.ok()) << id;
    // Read as the record's own patient: always authorized, even for
    // the break-glass patient whose grant may not have survived.
    const core::PrincipalId& reader = meta->patient_id;
    auto read = vault->ReadRecord(reader, id);
    if (meta->disposed) {
      EXPECT_TRUE(read.status().IsKeyDestroyed())
          << id << ": " << read.status().ToString();
      continue;
    }
    ASSERT_TRUE(read.ok()) << id << ": " << read.status().ToString();
    auto history = vault->RecordHistory(reader, id);
    ASSERT_TRUE(history.ok()) << id << ": " << history.status().ToString();
    EXPECT_EQ(history->size(), meta->latest_version) << id;
  }

  // An ACKED break-glass grant survives the crash: dr reads q's record
  // with no care relation, purely through the replayed grant, and the
  // grant table still counts it (at the original 10-year expiry — the
  // disposal step's 2-year jump must not have aged it out).
  if (trace.breakglass_acked) {
    auto emergency = vault->ReadRecord("dr", trace.breakglass_record);
    EXPECT_TRUE(emergency.ok())
        << "acked break-glass grant lost in crash: "
        << emergency.status().ToString();
    EXPECT_GE(vault->access()->ActiveGrantCount(clock->Now()), 1u);
  }

  // An ACKED consent grant survives the crash the same way: spec reads
  // q's sealed record with no care relation and no break-glass, purely
  // through the replayed grant — at its original 10-year expiry.
  if (trace.consent_grant_acked) {
    auto shared_read = vault->ReadRecord("spec", trace.breakglass_record);
    EXPECT_TRUE(shared_read.ok())
        << "acked consent grant " << trace.consent_grant_id
        << " lost in crash: " << shared_read.status().ToString();
    EXPECT_GE(vault->ActiveConsentCount(), 1u);
  }

  // An ACKED revocation stays revoked: spec has no remaining basis on
  // p's records, so the read must be refused (not a replayed grant
  // resurrecting the revoked patient-wide delegation).
  if (trace.revoke_acked) {
    auto dead = vault->ReadRecord("spec", trace.p_record);
    EXPECT_TRUE(dead.status().IsPermissionDenied())
        << "revoked consent grant " << trace.revoked_grant_id
        << " came back after crash: " << dead.status().ToString();
  }

  // An ACKED crypto-shred leaves no live record-scoped grant on the
  // shredded record — the grant dies with the key, durably.
  if (trace.doomed_grant_acked && trace.disposal_acked) {
    auto live = vault->ListConsents("p", "p");
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    for (const auto& g : *live) {
      EXPECT_NE(g.record_id, trace.disposal_id)
          << "crypto-shred left record-scoped grant " << g.grant_id
          << " alive after crash";
    }
  }

  // Blinded search still finds every acked live record.
  if (!trace.acked_shared.empty()) {
    auto hits = vault->SearchKeyword("dr", "shared");
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    for (const auto& id : trace.acked_shared) {
      EXPECT_NE(std::find(hits->begin(), hits->end(), id), hits->end())
          << "acked record " << id << " missing from search";
    }
  }

  // The recovered vault accepts fresh ingest end to end.
  EnsureCast(vault);
  auto fresh = vault->CreateRecord("dr", "p", "text/plain",
                                   "post-recovery note", {"fresh"},
                                   "hipaa-6y");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_TRUE(vault->SyncAll().ok());
  EXPECT_TRUE(vault->ReadRecord("dr", *fresh).ok());

  // And a post-recovery checkpoint signs with a FRESH leaf — the
  // direct demonstration that a leaf reserved-but-wasted by the crash
  // is skipped, not recycled.
  auto fresh_checkpoint = vault->CheckpointAudit();
  ASSERT_TRUE(fresh_checkpoint.ok())
      << fresh_checkpoint.status().ToString();
  auto fresh_sig = crypto::XmssSignature::Decode(fresh_checkpoint->signature);
  ASSERT_TRUE(fresh_sig.ok());
  EXPECT_EQ(used_leaves.count(fresh_sig->leaf_index), 0u)
      << "post-recovery checkpoint reused XMSS leaf "
      << fresh_sig->leaf_index;
}

/// One fault-free pass to discover the boundary count; the workload is
/// deterministic, so every matrix run replays the same op sequence.
uint64_t CountBoundaries() {
  storage::MemEnv env;
  env.SetCrashTrackingEnabled(true);
  storage::FaultInjectionEnv fault(&env);
  ManualClock clock(1000000);
  WorkloadTrace trace;
  RunWorkload(&fault, &clock, &trace);
  // Sanity: the dry run must complete and ack everything, or the
  // matrix below would silently test a truncated workload.
  EXPECT_EQ(trace.acked.size(), 5u);
  EXPECT_TRUE(trace.disposal_acked);
  EXPECT_TRUE(trace.breakglass_acked);
  EXPECT_TRUE(trace.consent_grant_acked);
  EXPECT_TRUE(trace.revoke_acked);
  EXPECT_TRUE(trace.doomed_grant_acked);
  EXPECT_EQ(trace.acked_checkpoints.size(), 2u);
  return fault.ops();
}

void RunMatrix(storage::CrashMode mode) {
  const uint64_t boundaries = CountBoundaries();
  ASSERT_GT(boundaries, 0u);
  for (uint64_t k = 0; k < boundaries; k++) {
    storage::MemEnv env;
    env.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&env);
    ManualClock clock(1000000);
    fault.PlanCrash(k);

    WorkloadTrace trace;
    RunWorkload(&fault, &clock, &trace);
    ASSERT_TRUE(fault.crashed()) << "boundary " << k << " never reached";

    env.CrashAndRecover(mode, /*seed=*/static_cast<uint32_t>(k));
    CheckRecovered(&env, &clock,
                   trace, "crash at boundary " + std::to_string(k));
  }
}

TEST(CrashMatrixTest, EveryBoundaryDropUnsynced) {
  RunMatrix(storage::CrashMode::kDropUnsynced);
}

TEST(CrashMatrixTest, EveryBoundaryKeepPartial) {
  RunMatrix(storage::CrashMode::kKeepPartial);
}

// A crash can also strike while recovery itself is writing (the
// reconciliation rewrite, the kRecovery audit entry, the final sync).
// Recovery must be idempotent: crash it at every boundary of a
// recovering open, recover again, and the contract must still hold.
TEST(CrashMatrixTest, CrashDuringRecoveryIsIdempotent) {
  // First crash: mid-lifecycle, somewhere that leaves real work for
  // recovery (two thirds through the workload).
  const uint64_t boundaries = CountBoundaries();
  const uint64_t first_crash = boundaries * 2 / 3;

  // Discover how many ops a recovering open performs after that crash.
  uint64_t recovery_ops = 0;
  {
    storage::MemEnv env;
    env.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&env);
    ManualClock clock(1000000);
    fault.PlanCrash(first_crash);
    WorkloadTrace trace;
    RunWorkload(&fault, &clock, &trace);
    ASSERT_TRUE(fault.crashed());
    env.CrashAndRecover(storage::CrashMode::kDropUnsynced, 0);
    fault.Reset();
    auto reopened = Vault::Open(Options(&fault, &clock));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    recovery_ops = fault.ops();
  }

  for (uint64_t k = 0; k < recovery_ops; k++) {
    storage::MemEnv env;
    env.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&env);
    ManualClock clock(1000000);
    fault.PlanCrash(first_crash);
    WorkloadTrace trace;
    RunWorkload(&fault, &clock, &trace);
    ASSERT_TRUE(fault.crashed());
    env.CrashAndRecover(storage::CrashMode::kDropUnsynced, 0);
    fault.Reset();

    // Second power cut: during the recovering open.
    fault.PlanCrash(k);
    (void)Vault::Open(Options(&fault, &clock));
    ASSERT_TRUE(fault.crashed())
        << "recovery boundary " << k << " never reached";
    env.CrashAndRecover(storage::CrashMode::kDropUnsynced,
                        static_cast<uint32_t>(k) + 7919);
    CheckRecovered(&env, &clock, trace,
                   "re-crash at recovery boundary " + std::to_string(k));
  }
}

// ---------------------------------------------------------------------------
// Cross-shard crash matrix
// ---------------------------------------------------------------------------
//
// A sharded vault has one commit point PER SHARD: SyncAll syncs shard 0,
// then shard 1, so a power cut can land exactly between the two — shard
// 0 has acknowledged its half of a cross-shard batch while shard 1's
// half is still volatile. The matrix below kills the workload at every
// I/O boundary (which includes every point between the shards' sync
// sequences) and demands per-shard recovery:
//   - each shard recovers independently to ITS acknowledged state,
//   - no shard lists a record id belonging to another shard, and no
//     listed record is partial (no cross-shard orphans),
//   - a shard that needed repair logs exactly one kRecovery audit
//     event for that open — and a subsequent clean reopen logs none.
//
// The workload runs with ingest_threads=1 (sequential fan-out in shard
// order): the crash matrix replays the exact same boundary sequence on
// every run, which parallel pool scheduling cannot guarantee.

ShardedVaultOptions ShardedOptions(storage::Env* env, const Clock* clock) {
  ShardedVaultOptions options;
  options.env = env;
  options.dir = "sharded";
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "sharded-crash-entropy";
  options.num_shards = 2;
  options.signer_height = 4;
  options.ingest_threads = 1;  // deterministic boundary sequence
  return options;
}

/// Two patient ids that hash to shard 0 and shard 1 respectively.
std::vector<std::string> PatientsPerShard() {
  ShardRouter router(2);
  std::vector<std::string> patients(2);
  std::vector<bool> found(2, false);
  for (int i = 0; !(found[0] && found[1]); ++i) {
    std::string candidate = "pat-" + std::to_string(i);
    uint32_t shard = router.ShardOf(candidate);
    if (!found[shard]) {
      patients[shard] = candidate;
      found[shard] = true;
    }
  }
  return patients;
}

void RunShardedWorkload(storage::Env* env, ManualClock* clock,
                        WorkloadTrace* trace) {
  auto opened = ShardedVault::Open(ShardedOptions(env, clock));
  if (!opened.ok()) return;
  ShardedVault* vault = opened->get();
  const std::vector<std::string> patients = PatientsPerShard();

  if (!vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok())
    return;
  if (!vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}).ok())
    return;
  for (const std::string& patient : patients) {
    if (!vault
             ->RegisterPrincipal("admin", {patient, Role::kPatient, patient})
             .ok())
      return;
    if (!vault->AssignCare("admin", "dr", patient).ok()) return;
  }
  if (!vault->SyncAll().ok()) return;

  // One plain create per shard.
  auto r0 = vault->CreateRecord("dr", patients[0], "text/plain",
                                "alpha on shard zero", {"alpha", "shared"},
                                "hipaa-6y");
  if (!r0.ok()) return;
  auto r1 = vault->CreateRecord("dr", patients[1], "text/plain",
                                "beta on shard one", {"beta", "shared"},
                                "hipaa-6y");
  if (!r1.ok()) return;
  if (vault->SyncAll().ok()) {
    trace->acked[*r0] = 1;
    trace->acked[*r1] = 1;
  }

  // A batch spanning both shards: the canonical cross-shard-orphan
  // hazard. Acknowledged only by the SyncAll that covers both shards.
  auto batch = vault->CreateRecordsBatch(
      "dr", {{patients[0], "text/plain", "gamma spanning", {"shared"},
              "hipaa-6y"},
             {patients[1], "text/plain", "delta spanning", {"shared"},
              "hipaa-6y"}});
  if (!batch.ok()) return;
  if (vault->SyncAll().ok()) {
    for (const auto& id : *batch) trace->acked[id] = 1;
  }

  // A correction on shard 0 (exercises the shared cache purge too).
  if (!vault
           ->CorrectRecord("dr", *r0, "alpha, corrected", "typo",
                           {"alpha", "shared"})
           .ok())
    return;
  if (vault->SyncAll().ok()) trace->acked[*r0] = 2;
}

/// Counts kRecovery events in one shard's full audit trail.
int RecoveryEvents(Vault* shard) {
  auto trail = shard->ReadAuditTrail("admin", "");
  if (!trail.ok()) {
    ADD_FAILURE() << "audit trail unreadable: "
                  << trail.status().ToString();
    return -1;
  }
  int events = 0;
  for (const core::AuditEvent& event : *trail) {
    if (event.action == core::AuditAction::kRecovery) events++;
  }
  return events;
}

void CheckShardedRecovered(storage::Env* env, ManualClock* clock,
                           const WorkloadTrace& trace,
                           const std::string& label) {
  SCOPED_TRACE(label);
  std::vector<int> recovery_events(2, 0);
  {
    auto reopened = ShardedVault::Open(ShardedOptions(env, clock));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ShardedVault* vault = reopened->get();

    EXPECT_TRUE(vault->VerifyAudit().ok());

    // Acked records (including both halves of an acked cross-shard
    // batch) survive at no less than their acknowledged version.
    for (const auto& [id, version] : trace.acked) {
      auto read = vault->ReadRecord("dr", id);
      ASSERT_TRUE(read.ok()) << id << ": " << read.status().ToString();
      EXPECT_GE(read->header.version, version) << id;
    }

    // No cross-shard orphans: every listed id lives on the shard its
    // prefix names, and is fully usable there — regardless of whether
    // the sibling half of its batch survived on the other shard.
    for (uint32_t k = 0; k < 2; ++k) {
      for (const auto& id : vault->shard(k)->ListRecordIds()) {
        uint32_t embedded = 2;
        ASSERT_TRUE(ShardRouter::ShardOfRecordId(id, &embedded)) << id;
        EXPECT_EQ(embedded, k) << "record " << id << " on wrong shard";
        auto meta = vault->GetRecordMeta(id);
        ASSERT_TRUE(meta.ok()) << id;
        auto read = vault->ReadRecord("dr", id);
        if (meta->disposed) {
          // Recovery may tombstone an UNACKED record whose meta survived
          // a partial-media crash but whose version bytes did not
          // ("versions-lost") — same contract as the single-vault
          // matrix. Acked records can never take this branch: the acked
          // loop above already demanded a successful read.
          EXPECT_EQ(trace.acked.count(id), 0u)
              << "acked record " << id << " was tombstoned";
          EXPECT_TRUE(read.status().IsKeyDestroyed())
              << id << ": " << read.status().ToString();
          continue;
        }
        ASSERT_TRUE(read.ok()) << id << ": " << read.status().ToString();
        auto history = vault->RecordHistory("dr", id);
        ASSERT_TRUE(history.ok()) << id;
        EXPECT_EQ(history->size(), meta->latest_version) << id;
      }
    }

    // Re-register whatever part of the cast the crash erased (needed
    // both for the audit-trail reads below and the fresh ingest). Actor
    // "admin" works on every shard regardless of divergence: a shard
    // that lost the admin is back in bootstrap (anyone may register),
    // and a shard that kept it sees a legitimate admin actor.
    const std::vector<std::string> patients = PatientsPerShard();
    (void)vault->RegisterPrincipal("admin", {"admin", Role::kAdmin, "A"});
    (void)vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"});
    for (const std::string& patient : patients) {
      (void)vault->RegisterPrincipal("admin",
                                     {patient, Role::kPatient, patient});
      (void)vault->AssignCare("admin", "dr", patient);
    }

    // A repaired shard logs exactly one kRecovery event for this open;
    // an untouched shard logs none.
    for (uint32_t k = 0; k < 2; ++k) {
      recovery_events[k] = RecoveryEvents(vault->shard(k));
      ASSERT_GE(recovery_events[k], 0);
      EXPECT_LE(recovery_events[k], 1)
          << "shard " << k << " logged multiple recovery events";
    }

    // The recovered vault accepts fresh cross-shard ingest.
    auto fresh = vault->CreateRecordsBatch(
        "dr", {{patients[0], "text/plain", "post-crash zero", {}, "hipaa-6y"},
               {patients[1], "text/plain", "post-crash one", {}, "hipaa-6y"}});
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    ASSERT_TRUE(vault->SyncAll().ok());
    for (const auto& id : *fresh) {
      EXPECT_TRUE(vault->ReadRecord("dr", id).ok()) << id;
    }
  }

  // Recovery is once-per-repair, not once-per-open: a clean reopen must
  // not append further kRecovery events on any shard.
  auto again = ShardedVault::Open(ShardedOptions(env, clock));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (uint32_t k = 0; k < 2; ++k) {
    EXPECT_EQ(RecoveryEvents((*again)->shard(k)), recovery_events[k])
        << "clean reopen logged a recovery event on shard " << k;
  }
}

uint64_t CountShardedBoundaries() {
  storage::MemEnv env;
  env.SetCrashTrackingEnabled(true);
  storage::FaultInjectionEnv fault(&env);
  ManualClock clock(1000000);
  WorkloadTrace trace;
  RunShardedWorkload(&fault, &clock, &trace);
  EXPECT_EQ(trace.acked.size(), 4u);
  return fault.ops();
}

void RunShardedMatrix(storage::CrashMode mode) {
  const uint64_t boundaries = CountShardedBoundaries();
  ASSERT_GT(boundaries, 0u);
  for (uint64_t k = 0; k < boundaries; k++) {
    storage::MemEnv env;
    env.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&env);
    ManualClock clock(1000000);
    fault.PlanCrash(k);

    WorkloadTrace trace;
    RunShardedWorkload(&fault, &clock, &trace);
    ASSERT_TRUE(fault.crashed()) << "boundary " << k << " never reached";

    env.CrashAndRecover(mode, /*seed=*/static_cast<uint32_t>(k));
    CheckShardedRecovered(&env, &clock, trace,
                          "sharded crash at boundary " + std::to_string(k));
  }
}

TEST(ShardedCrashMatrixTest, EveryBoundaryDropUnsynced) {
  RunShardedMatrix(storage::CrashMode::kDropUnsynced);
}

TEST(ShardedCrashMatrixTest, EveryBoundaryKeepPartial) {
  RunShardedMatrix(storage::CrashMode::kKeepPartial);
}

// ---------------------------------------------------------------------------
// Group-commit crash matrix
// ---------------------------------------------------------------------------
//
// The batched-durability path (CreateRecordsBatchDurable → GroupCommitter
// → one cross-shard sync wave) changes WHERE the commit points are: a
// whole batch is acknowledged by a single coalesced window instead of an
// explicit SyncAll per step. The matrix kills the workload at every I/O
// boundary — which now includes every boundary of a coalesced sync wave —
// and demands the same contract: everything acknowledged by a returned
// durable batch survives, shards recover independently, and a repaired
// shard logs at most one kRecovery event for the recovering open.
//
// ingest_threads=1 keeps the fan-out inline-sequential and window 0
// keeps the leader from sleeping, so every run replays the identical
// boundary sequence (FaultInjectionEnv's batch API stays inline-
// sequential precisely so each coalesced completion is one numbered
// boundary).

void RunDurableShardedWorkload(storage::Env* env, ManualClock* clock,
                               WorkloadTrace* trace) {
  auto opened = ShardedVault::Open(ShardedOptions(env, clock));
  if (!opened.ok()) return;
  ShardedVault* vault = opened->get();
  const std::vector<std::string> patients = PatientsPerShard();

  if (!vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok())
    return;
  if (!vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}).ok())
    return;
  for (const std::string& patient : patients) {
    if (!vault
             ->RegisterPrincipal("admin", {patient, Role::kPatient, patient})
             .ok())
      return;
    if (!vault->AssignCare("admin", "dr", patient).ok()) return;
  }
  if (!vault->SyncAll().ok()) return;

  // A durable batch spanning both shards: OK return IS the ack — one
  // group-committed wave covered both shards' commit points.
  auto spanning = vault->CreateRecordsBatchDurable(
      "dr", {{patients[0], "text/plain", "alpha spanning", {"shared"},
              "hipaa-6y"},
             {patients[1], "text/plain", "beta spanning", {"shared"},
              "hipaa-6y"}});
  if (spanning.ok()) {
    for (const auto& id : *spanning) trace->acked[id] = 1;
  } else {
    return;
  }

  // A single-shard durable batch: the wave still runs across the vault,
  // so the crash can land between this shard's sync and the other's.
  auto single = vault->CreateRecordsBatchDurable(
      "dr", {{patients[1], "text/plain", "gamma single-shard", {"shared"},
              "hipaa-6y"}});
  if (single.ok()) {
    trace->acked[(*single)[0]] = 1;
  } else {
    return;
  }

  // A second spanning batch after the first acks, so the matrix covers
  // wave boundaries with durable state already on both shards.
  auto again = vault->CreateRecordsBatchDurable(
      "dr", {{patients[0], "text/plain", "delta spanning", {"shared"},
              "hipaa-6y"},
             {patients[1], "text/plain", "epsilon spanning", {"shared"},
              "hipaa-6y"}});
  if (again.ok()) {
    for (const auto& id : *again) trace->acked[id] = 1;
  }
}

uint64_t CountDurableShardedBoundaries() {
  storage::MemEnv env;
  env.SetCrashTrackingEnabled(true);
  storage::FaultInjectionEnv fault(&env);
  ManualClock clock(1000000);
  WorkloadTrace trace;
  RunDurableShardedWorkload(&fault, &clock, &trace);
  EXPECT_EQ(trace.acked.size(), 5u);
  return fault.ops();
}

void RunDurableShardedMatrix(storage::CrashMode mode) {
  const uint64_t boundaries = CountDurableShardedBoundaries();
  ASSERT_GT(boundaries, 0u);
  for (uint64_t k = 0; k < boundaries; k++) {
    storage::MemEnv env;
    env.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&env);
    ManualClock clock(1000000);
    fault.PlanCrash(k);

    WorkloadTrace trace;
    RunDurableShardedWorkload(&fault, &clock, &trace);
    ASSERT_TRUE(fault.crashed()) << "boundary " << k << " never reached";

    env.CrashAndRecover(mode, /*seed=*/static_cast<uint32_t>(k));
    CheckShardedRecovered(
        &env, &clock, trace,
        "group-commit crash at boundary " + std::to_string(k));
  }
}

TEST(GroupCommitCrashMatrixTest, EveryWindowBoundaryDropUnsynced) {
  RunDurableShardedMatrix(storage::CrashMode::kDropUnsynced);
}

TEST(GroupCommitCrashMatrixTest, EveryWindowBoundaryKeepPartial) {
  RunDurableShardedMatrix(storage::CrashMode::kKeepPartial);
}

// ---------------------------------------------------------------------------
// Replicated group-commit crash matrix
// ---------------------------------------------------------------------------
//
// The durable workload again, now with a warm standby pulling a
// Merkle-verified batch after every acknowledged window. The primary is
// killed at every I/O boundary — including mid-window, between one
// shard's sync and the other's, and mid-cut — and the invariant is:
// the REPLICA is never ahead of the RECOVERED primary. Concretely,
// every audit head the standby applied must still be a prefix of the
// recovered primary's audit log (RootAt equality), because batches are
// cut only over synced bytes. The replica process survives the
// primary's power cut, so the surviving applier's state is what is
// checked.

void RunReplicatedDurableWorkload(storage::Env* env, ManualClock* clock,
                                  core::ShardedReplicaApplier* applier,
                                  WorkloadTrace* trace) {
  auto opened = ShardedVault::Open(ShardedOptions(env, clock));
  if (!opened.ok()) return;
  ShardedVault* vault = opened->get();
  core::ShardedReplicationSource source(vault);
  const std::vector<std::string> patients = PatientsPerShard();

  // Shipping failures are survivable (the crash lands mid-cut); the
  // applier just keeps its previous state.
  auto ship = [&] {
    auto cursors = applier->Cursors();
    if (!cursors.ok()) return;
    auto batches = source.CutAll(*cursors);
    if (!batches.ok()) return;
    (void)applier->ApplyAll(*batches);
  };

  if (!vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok())
    return;
  if (!vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}).ok())
    return;
  for (const std::string& patient : patients) {
    if (!vault
             ->RegisterPrincipal("admin", {patient, Role::kPatient, patient})
             .ok())
      return;
    if (!vault->AssignCare("admin", "dr", patient).ok()) return;
  }
  if (!vault->SyncAll().ok()) return;
  ship();

  auto spanning = vault->CreateRecordsBatchDurable(
      "dr", {{patients[0], "text/plain", "alpha spanning", {"shared"},
              "hipaa-6y"},
             {patients[1], "text/plain", "beta spanning", {"shared"},
              "hipaa-6y"}});
  if (!spanning.ok()) return;
  for (const auto& id : *spanning) trace->acked[id] = 1;
  ship();

  auto single = vault->CreateRecordsBatchDurable(
      "dr", {{patients[1], "text/plain", "gamma single-shard", {"shared"},
              "hipaa-6y"}});
  if (!single.ok()) return;
  trace->acked[(*single)[0]] = 1;
  ship();
}

void RunReplicatedDurableMatrix(storage::CrashMode mode) {
  // Dry run for the boundary count, with shipping in the op stream.
  uint64_t boundaries = 0;
  {
    storage::MemEnv primary_mem;
    primary_mem.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&primary_mem);
    storage::MemEnv replica_env;
    ManualClock clock(1000000);
    core::ShardedReplicaApplier::Options applier_options;
    applier_options.env = &replica_env;
    applier_options.dir = "standby";
    applier_options.entropy = "sharded-crash-entropy";
    applier_options.num_shards = 2;
    applier_options.apply_threads = 1;  // deterministic boundary sequence
    auto applier = core::ShardedReplicaApplier::Open(applier_options);
    ASSERT_TRUE(applier.ok());
    WorkloadTrace trace;
    RunReplicatedDurableWorkload(&fault, &clock, applier->get(), &trace);
    EXPECT_EQ(trace.acked.size(), 3u);
    EXPECT_EQ((*applier)->lag_bytes(), 0u);
    boundaries = fault.ops();
  }
  ASSERT_GT(boundaries, 0u);

  for (uint64_t k = 0; k < boundaries; k++) {
    SCOPED_TRACE("replicated window crash at boundary " + std::to_string(k));
    storage::MemEnv primary_mem;
    primary_mem.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&primary_mem);
    storage::MemEnv replica_env;
    ManualClock clock(1000000);
    core::ShardedReplicaApplier::Options applier_options;
    applier_options.env = &replica_env;
    applier_options.dir = "standby";
    applier_options.entropy = "sharded-crash-entropy";
    applier_options.num_shards = 2;
    applier_options.apply_threads = 1;
    auto applier = core::ShardedReplicaApplier::Open(applier_options);
    ASSERT_TRUE(applier.ok());
    fault.PlanCrash(k);

    WorkloadTrace trace;
    RunReplicatedDurableWorkload(&fault, &clock, applier->get(), &trace);
    ASSERT_TRUE(fault.crashed()) << "boundary " << k << " never reached";
    ASSERT_EQ((*applier)->quarantined_shards(), 0u)
        << "a primary crash must read as lag on the standby, never tamper";

    primary_mem.CrashAndRecover(mode, /*seed=*/static_cast<uint32_t>(k));
    auto reopened = ShardedVault::Open(ShardedOptions(&primary_mem, &clock));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

    // Never ahead: every audit head the standby applied is a prefix of
    // the recovered primary's audit log. RootAt fails outright if the
    // standby's head were past the recovered end.
    for (uint32_t s = 0; s < 2; s++) {
      core::ReplicaApplier* shard = (*applier)->shard(s);
      ASSERT_NE(shard, nullptr);
      if (shard->last_audit_size() == 0) continue;
      auto root =
          (*reopened)->shard(s)->audit()->RootAt(shard->last_audit_size());
      ASSERT_TRUE(root.ok())
          << "standby shard " << s << " audit head at "
          << shard->last_audit_size()
          << " is past the recovered primary: " << root.status().ToString();
      EXPECT_EQ(*root, shard->last_audit_root())
          << "standby shard " << s
          << " applied an audit head the recovered primary never had";
    }

    // And the recovered primary ships the standby back to equality.
    core::ShardedReplicationSource source(reopened->get());
    for (int round = 0; round < 3; round++) {
      auto cursors = (*applier)->Cursors();
      ASSERT_TRUE(cursors.ok());
      auto batches = source.CutAll(*cursors);
      ASSERT_TRUE(batches.ok()) << batches.status().ToString();
      ASSERT_TRUE((*applier)->ApplyAll(*batches).ok());
      if ((*applier)->lag_bytes() == 0) break;
    }
    EXPECT_EQ((*applier)->lag_bytes(), 0u);
  }
}

TEST(ReplicatedGroupCommitCrashTest, StandbyNeverAheadDropUnsynced) {
  RunReplicatedDurableMatrix(storage::CrashMode::kDropUnsynced);
}

TEST(ReplicatedGroupCommitCrashTest, StandbyNeverAheadKeepPartial) {
  RunReplicatedDurableMatrix(storage::CrashMode::kKeepPartial);
}

}  // namespace
}  // namespace medvault
