// Backup/restore tests: off-site copies, signed manifests, verification,
// restore-and-reopen, disaster and tamper scenarios.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/backup.h"
#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class BackupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vault_ = OpenVault(&env_, "vault");
    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"pat-p", Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  std::unique_ptr<Vault> OpenVault(storage::Env* env,
                                   const std::string& dir) {
    VaultOptions options;
    options.env = env;
    options.dir = dir;
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "backup-test-entropy";
    options.signer_height = 4;
    auto vault = Vault::Open(options);
    EXPECT_TRUE(vault.ok()) << vault.status().ToString();
    return std::move(vault).value();
  }

  RecordId CreateSample(const std::string& content) {
    auto id = vault_->CreateRecord("dr-a", "pat-p", "text/plain", content,
                                   {"backup"}, "osha-30y");
    EXPECT_TRUE(id.ok());
    return id.ValueOr("");
  }

  storage::MemEnv env_;      // primary site
  storage::MemEnv offsite_;  // off-site facility
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> vault_;
};

TEST_F(BackupTest, BackupProducesSignedManifest) {
  CreateSample("important record");
  auto manifest =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_GT(manifest->files.size(), 3u);
  EXPECT_TRUE(BackupManager::VerifyManifestSignature(
                  *manifest, vault_->SignerPublicKey(),
                  vault_->SignerPublicSeed(), vault_->SignerHeight())
                  .ok());
  EXPECT_TRUE(
      BackupManager::Verify(&offsite_, "offsite", *manifest).ok());
}

TEST_F(BackupTest, BackupRequiresPermission) {
  EXPECT_TRUE(
      BackupManager::Backup(vault_.get(), "dr-a", &offsite_, "offsite")
          .status()
          .IsPermissionDenied());
}

TEST_F(BackupTest, ManifestPersistsOffsiteAndReloads) {
  CreateSample("x");
  auto manifest =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(manifest.ok());
  auto loaded = BackupManager::LoadManifest(&offsite_, "offsite");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->backup_id, manifest->backup_id);
  EXPECT_EQ(loaded->files, manifest->files);
  EXPECT_TRUE(BackupManager::VerifyManifestSignature(
                  *loaded, vault_->SignerPublicKey(),
                  vault_->SignerPublicSeed(), vault_->SignerHeight())
                  .ok());
}

TEST_F(BackupTest, VerifyDetectsOffsiteTamper) {
  CreateSample("y");
  auto manifest =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(manifest.ok());
  // Tamper with one backed-up file.
  const std::string victim = "offsite/" + manifest->files[1].first;
  uint64_t size = 0;
  ASSERT_TRUE(offsite_.GetFileSize(victim, &size).ok());
  ASSERT_TRUE(offsite_.UnsafeOverwrite(victim, size / 2, "X").ok());
  EXPECT_TRUE(BackupManager::Verify(&offsite_, "offsite", *manifest)
                  .IsTamperDetected());
}

TEST_F(BackupTest, VerifyDetectsMissingFile) {
  CreateSample("z");
  auto manifest =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(
      offsite_.RemoveFile("offsite/" + manifest->files[0].first).ok());
  EXPECT_TRUE(BackupManager::Verify(&offsite_, "offsite", *manifest)
                  .IsTamperDetected());
}

TEST_F(BackupTest, DisasterRecoveryRestoresWorkingVault) {
  RecordId r1 = CreateSample("survives the fire");
  ASSERT_TRUE(
      vault_->CorrectRecord("dr-a", r1, "v2 content", "fix", {}).ok());
  auto manifest =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(manifest.ok());
  vault_.reset();

  // "Fire": the primary site is lost entirely. Restore to a new site.
  storage::MemEnv new_site;
  ASSERT_TRUE(BackupManager::Restore(&offsite_, "offsite", *manifest,
                                     &new_site, "vault")
                  .ok());
  auto restored = OpenVault(&new_site, "vault");
  EXPECT_EQ(restored->ReadRecord("dr-a", r1)->plaintext, "v2 content");
  EXPECT_TRUE(restored->VerifyEverything().ok());
  // Search works after restore too.
  auto hits = restored->SearchKeyword("dr-a", "backup");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(BackupTest, RestoreRefusesTamperedBackup) {
  CreateSample("w");
  auto manifest =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(manifest.ok());
  const std::string victim = "offsite/" + manifest->files[1].first;
  uint64_t size = 0;
  ASSERT_TRUE(offsite_.GetFileSize(victim, &size).ok());
  ASSERT_TRUE(offsite_.UnsafeOverwrite(victim, size / 2, "X").ok());

  storage::MemEnv new_site;
  EXPECT_TRUE(BackupManager::Restore(&offsite_, "offsite", *manifest,
                                     &new_site, "vault")
                  .IsTamperDetected());
}

TEST_F(BackupTest, BackupIsAudited) {
  CreateSample("v");
  ASSERT_TRUE(
      vault_->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
          .ok());
  auto manifest =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(manifest.ok());
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  bool found = false;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kBackup &&
        e.details.find(manifest->backup_id) != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(BackupTest, IncrementalStyleSecondBackupSupersedes) {
  RecordId r1 = CreateSample("first state");
  auto m1 =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "offsite");
  ASSERT_TRUE(m1.ok());
  clock_.Advance(kMicrosPerDay);
  ASSERT_TRUE(
      vault_->CorrectRecord("dr-a", r1, "second state", "update", {}).ok());
  auto m2 = BackupManager::Backup(vault_.get(), "admin-r", &offsite_,
                                  "offsite2");
  ASSERT_TRUE(m2.ok());
  EXPECT_NE(m1->backup_id, m2->backup_id);

  storage::MemEnv new_site;
  ASSERT_TRUE(BackupManager::Restore(&offsite_, "offsite2", *m2, &new_site,
                                     "vault")
                  .ok());
  auto restored = OpenVault(&new_site, "vault");
  EXPECT_EQ(restored->ReadRecord("dr-a", r1)->plaintext, "second state");
}

TEST_F(BackupTest, IncrementalBackupCopiesOnlyChanges) {
  RecordId r1 = CreateSample("base content");
  auto full =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "full");
  ASSERT_TRUE(full.ok());

  clock_.Advance(kMicrosPerDay);
  ASSERT_TRUE(
      vault_->CorrectRecord("dr-a", r1, "changed content", "fix", {}).ok());
  auto incr = BackupManager::BackupIncremental(vault_.get(), "admin-r",
                                               &offsite_, "incr", *full);
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();
  EXPECT_EQ(incr->base_backup_id, full->backup_id);
  // Strictly fewer files than the full backup (unchanged ones skipped).
  EXPECT_LT(incr->files.size(), full->files.size());
  EXPECT_GT(incr->files.size(), 0u);
  EXPECT_TRUE(BackupManager::Verify(&offsite_, "incr", *incr).ok());

  // Restore the chain on fresh hardware.
  storage::MemEnv new_site;
  ASSERT_TRUE(BackupManager::RestoreChain(
                  &offsite_, {{"full", *full}, {"incr", *incr}}, &new_site,
                  "vault")
                  .ok());
  auto restored = OpenVault(&new_site, "vault");
  EXPECT_EQ(restored->ReadRecord("dr-a", r1)->plaintext,
            "changed content");
  EXPECT_TRUE(restored->VerifyEverything().ok());
}

TEST_F(BackupTest, RestoreChainValidatesLinkage) {
  CreateSample("x");
  auto full1 =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "f1");
  clock_.Advance(kMicrosPerDay);
  auto full2 =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "f2");
  ASSERT_TRUE(full1.ok());
  ASSERT_TRUE(full2.ok());

  storage::MemEnv new_site;
  // Chain must start with a full backup... (broken linkage is the
  // distinct kBackupChainBroken verdict, not a generic argument error:
  // the caller must know the chain itself is unusable)
  BackupManifest fake_incr = *full2;
  fake_incr.base_backup_id = "bk-nonexistent";
  EXPECT_TRUE(BackupManager::RestoreChain(&offsite_, {{"f2", fake_incr}},
                                          &new_site, "vault")
                  .IsBackupChainBroken());
  // ...and each link must name its predecessor.
  EXPECT_TRUE(BackupManager::RestoreChain(
                  &offsite_, {{"f1", *full1}, {"f2", fake_incr}}, &new_site,
                  "vault")
                  .IsBackupChainBroken());
  EXPECT_TRUE(BackupManager::RestoreChain(&offsite_, {}, &new_site, "vault")
                  .IsInvalidArgument());
}

TEST_F(BackupTest, TruncatedFinalManifestBreaksTheChain) {
  // A manifest cut off mid-file (torn copy to the offsite mount, a
  // partially synced link) must read as "this chain is unusable" —
  // kBackupChainBroken from LoadChain — not as a per-file tamper
  // verdict or a raw parse error leaking to the operator.
  RecordId r1 = CreateSample("base content");
  auto full =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "full");
  ASSERT_TRUE(full.ok());
  clock_.Advance(kMicrosPerDay);
  ASSERT_TRUE(
      vault_->CorrectRecord("dr-a", r1, "changed content", "fix", {}).ok());
  auto incr = BackupManager::BackupIncremental(vault_.get(), "admin-r",
                                               &offsite_, "incr", *full);
  ASSERT_TRUE(incr.ok());

  // Truncate the FINAL link's manifest mid-file: the newest state is
  // exactly what a restore would be reaching for.
  uint64_t size = 0;
  ASSERT_TRUE(offsite_.GetFileSize("incr/MANIFEST", &size).ok());
  ASSERT_GT(size, 2u);
  ASSERT_TRUE(offsite_.UnsafeTruncate("incr/MANIFEST", size / 2).ok());

  auto chain = BackupManager::LoadChain(&offsite_, {"full", "incr"});
  ASSERT_FALSE(chain.ok());
  EXPECT_TRUE(chain.status().IsBackupChainBroken())
      << chain.status().ToString();
  EXPECT_NE(chain.status().ToString().find("incr"), std::string::npos)
      << "the verdict must name the broken link: "
      << chain.status().ToString();

  // The intact prefix is still a loadable, usable chain on its own.
  auto prefix = BackupManager::LoadChain(&offsite_, {"full"});
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  storage::MemEnv new_site;
  ASSERT_TRUE(
      BackupManager::RestoreChain(&offsite_, *prefix, &new_site, "vault")
          .ok());
  auto restored = OpenVault(&new_site, "vault");
  EXPECT_EQ(restored->ReadRecord("dr-a", r1)->plaintext, "base content");
}

TEST_F(BackupTest, IncrementalChainHonorsDeletedFiles) {
  // Create enough disposed records to reclaim a sealed segment between
  // the full and the incremental backup: the restored vault must NOT
  // resurrect the reclaimed segment file.
  RecordId doomed = CreateSample(std::string(256, 'd'));
  RecordId keeper = CreateSample(std::string(256, 'k'));
  ASSERT_TRUE(vault_->versions()->segments()->SealActive().ok());
  auto full =
      BackupManager::Backup(vault_.get(), "admin-r", &offsite_, "full");
  ASSERT_TRUE(full.ok());

  clock_.AdvanceYears(31);
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", doomed).ok());
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", keeper).ok());
  ASSERT_GT(*vault_->ReclaimDisposedMedia("admin-r"), 0);

  auto incr = BackupManager::BackupIncremental(vault_.get(), "admin-r",
                                               &offsite_, "incr", *full);
  ASSERT_TRUE(incr.ok());
  EXPECT_FALSE(incr->deleted.empty());

  storage::MemEnv new_site;
  ASSERT_TRUE(BackupManager::RestoreChain(
                  &offsite_, {{"full", *full}, {"incr", *incr}}, &new_site,
                  "vault")
                  .ok());
  for (const std::string& rel : incr->deleted) {
    EXPECT_FALSE(new_site.FileExists("vault/" + rel)) << rel;
  }
  auto restored = OpenVault(&new_site, "vault");
  EXPECT_TRUE(
      restored->ReadRecord("dr-a", doomed).status().IsKeyDestroyed());
  EXPECT_TRUE(restored->VerifyEverything().ok());
}

}  // namespace
}  // namespace medvault::core
