// Property-based tests (parameterized sweeps): invariants that must hold
// across randomized inputs, sizes, and adversarial perturbations.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "common/random.h"
#include "core/keystore.h"
#include "core/secure_index.h"
#include "core/version_store.h"
#include "crypto/aead.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "storage/mem_env.h"

namespace medvault {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::string out(len, '\0');
  for (size_t i = 0; i < len; i++) {
    out[i] = static_cast<char>(rng->Uniform(256));
  }
  return out;
}

// ---- AEAD properties over random inputs ---------------------------------------

class AeadProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AeadProperty, RoundTripAndTamperDetection) {
  Random rng(GetParam());
  crypto::Aead aead;
  ASSERT_TRUE(aead.Init(RandomBytes(&rng, 0) + std::string(32, 'k')).ok());

  for (int iter = 0; iter < 20; iter++) {
    std::string plaintext = RandomBytes(&rng, 2048);
    std::string aad = RandomBytes(&rng, 128);
    std::string nonce(16, '\0');
    for (auto& c : nonce) c = static_cast<char>(rng.Uniform(256));

    auto sealed = aead.Seal(nonce, plaintext, aad);
    ASSERT_TRUE(sealed.ok());
    // Property 1: round trip.
    auto opened = aead.Open(*sealed, aad);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, plaintext);
    // Property 2: any single byte flip is detected.
    std::string tampered = *sealed;
    size_t pos = rng.Uniform(tampered.size());
    tampered[pos] ^= static_cast<char>(1 + rng.Uniform(255));
    EXPECT_TRUE(aead.Open(tampered, aad).status().IsTamperDetected())
        << "iter " << iter << " pos " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AeadProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Merkle properties over random shapes ---------------------------------------

class MerkleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerkleProperty, RandomTreesProveAndExtend) {
  Random rng(GetParam());
  crypto::MerkleTree tree;
  uint64_t n = 1 + rng.Uniform(200);
  for (uint64_t i = 0; i < n; i++) {
    tree.Append(RandomBytes(&rng, 64));
  }

  // Property: random (index, size) inclusion proofs verify; perturbed
  // ones do not.
  for (int iter = 0; iter < 10; iter++) {
    uint64_t size = 1 + rng.Uniform(n);
    uint64_t index = rng.Uniform(size);
    auto proof = tree.InclusionProof(index, size);
    ASSERT_TRUE(proof.ok());
    auto root = tree.RootAt(size);
    ASSERT_TRUE(root.ok());
    auto leaf = tree.LeafHash(index);
    ASSERT_TRUE(leaf.ok());
    EXPECT_TRUE(crypto::MerkleTree::VerifyInclusion(*leaf, index, size,
                                                    *proof, *root)
                    .ok());
    if (!proof->empty()) {
      auto bad = *proof;
      bad[rng.Uniform(bad.size())][rng.Uniform(32)] ^= 0x10;
      EXPECT_FALSE(crypto::MerkleTree::VerifyInclusion(*leaf, index, size,
                                                       bad, *root)
                       .ok());
    }
  }

  // Property: random prefix pairs are consistent.
  for (int iter = 0; iter < 10; iter++) {
    uint64_t old_size = rng.Uniform(n + 1);
    uint64_t new_size = old_size + rng.Uniform(n - old_size + 1);
    auto proof = tree.ConsistencyProof(old_size, new_size);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(crypto::MerkleTree::VerifyConsistency(
                    old_size, *tree.RootAt(old_size), new_size,
                    *tree.RootAt(new_size), *proof)
                    .ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MerkleProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---- Version chain properties ------------------------------------------------------

class VersionChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(VersionChainProperty, ChainsVerifyAtEveryLength) {
  const int versions = GetParam();
  storage::MemEnv env;
  core::KeyStore keystore(&env, "keys.db", std::string(32, 'M'), "seed");
  ASSERT_TRUE(keystore.Open().ok());
  core::VersionStore store(&env, "vault", &keystore);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(keystore.CreateKey("r-1").ok());

  Random rng(versions);
  std::vector<std::string> contents;
  for (int v = 0; v < versions; v++) {
    std::string content = RandomBytes(&rng, 500);
    contents.push_back(content);
    ASSERT_TRUE(store
                    .AppendVersion("r-1", "dr", "bin",
                                   v == 0 ? "" : "fix", content, 1000 + v)
                    .ok());
    // Invariant: the whole chain verifies after every append.
    ASSERT_TRUE(store.VerifyRecord("r-1").ok()) << "after version " << v;
  }
  // Invariant: every historical version reads back exactly.
  for (int v = 0; v < versions; v++) {
    auto rv = store.ReadVersion("r-1", v + 1);
    ASSERT_TRUE(rv.ok());
    EXPECT_EQ(rv->plaintext, contents[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, VersionChainProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---- Secure deletion property -----------------------------------------------------

class ShredProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShredProperty, ShreddedRecordsVanishEverywhereOthersUnaffected) {
  Random rng(GetParam());
  storage::MemEnv env;
  core::KeyStore keystore(&env, "keys.db", std::string(32, 'M'), "seed");
  ASSERT_TRUE(keystore.Open().ok());
  core::VersionStore store(&env, "vault", &keystore);
  ASSERT_TRUE(store.Open().ok());
  core::SecureIndex index(&env, "index.log", std::string(32, 'I'),
                          &keystore);
  ASSERT_TRUE(index.Open().ok());

  const int n = 12;
  std::vector<std::string> ids;
  for (int i = 0; i < n; i++) {
    std::string id = "r-" + std::to_string(i);
    ids.push_back(id);
    ASSERT_TRUE(keystore.CreateKey(id).ok());
    ASSERT_TRUE(store.AppendVersion(id, "dr", "txt", "",
                                    "content-" + id, 1000 + i)
                    .ok());
    ASSERT_TRUE(index.AddPostings(id, {"shared", "unique-" + id}).ok());
  }

  // Shred a random subset.
  std::set<std::string> shredded;
  for (const std::string& id : ids) {
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(keystore.DestroyKey(id).ok());
      shredded.insert(id);
    }
  }

  // Invariants: shredded -> unreadable + unsearchable; live -> intact.
  auto hits = index.Search("shared");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), ids.size() - shredded.size());
  for (const std::string& id : ids) {
    auto read = store.ReadVersion(id, 1);
    auto unique_hits = index.Search("unique-" + id);
    ASSERT_TRUE(unique_hits.ok());
    if (shredded.count(id)) {
      EXPECT_TRUE(read.status().IsKeyDestroyed()) << id;
      EXPECT_TRUE(unique_hits->empty()) << id;
    } else {
      ASSERT_TRUE(read.ok()) << id;
      EXPECT_EQ(read->plaintext, "content-" + id);
      ASSERT_EQ(unique_hits->size(), 1u) << id;
    }
    // Integrity verification works either way.
    EXPECT_TRUE(store.VerifyRecord(id).ok()) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShredProperty,
                         ::testing::Values(100, 200, 300, 400));

// ---- Hash-chain tamper property ---------------------------------------------------

class TamperProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TamperProperty, AnySegmentByteFlipIsDetected) {
  Random rng(GetParam());
  storage::MemEnv env;
  core::KeyStore keystore(&env, "keys.db", std::string(32, 'M'), "seed");
  ASSERT_TRUE(keystore.Open().ok());
  core::VersionStore store(&env, "vault", &keystore);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(keystore.CreateKey("r-1").ok());
  for (int v = 0; v < 5; v++) {
    ASSERT_TRUE(store
                    .AppendVersion("r-1", "dr", "txt", v ? "fix" : "",
                                   RandomBytes(&rng, 300), 1000 + v)
                    .ok());
  }
  ASSERT_TRUE(store.VerifyRecord("r-1").ok());

  auto ids = store.segments()->SegmentIds();
  std::string file = store.segments()->SegmentFileName(ids.front());
  uint64_t size = 0;
  ASSERT_TRUE(env.GetFileSize(file, &size).ok());

  // Flip one random byte; verification must fail. Repeat several times
  // on fresh copies (restore the byte after each check).
  for (int iter = 0; iter < 25; iter++) {
    uint64_t pos = rng.Uniform(size);
    std::unique_ptr<storage::RandomAccessFile> reader;
    ASSERT_TRUE(env.NewRandomAccessFile(file, &reader).ok());
    std::string original;
    ASSERT_TRUE(reader->Read(pos, 1, &original).ok());
    char flipped = static_cast<char>(original[0] ^
                                     (1 + rng.Uniform(255)));
    ASSERT_TRUE(env.UnsafeOverwrite(file, pos, Slice(&flipped, 1)).ok());
    EXPECT_FALSE(store.VerifyRecord("r-1").ok())
        << "flip at " << pos << " went undetected";
    ASSERT_TRUE(env.UnsafeOverwrite(file, pos, original).ok());
  }
  EXPECT_TRUE(store.VerifyRecord("r-1").ok());  // restored state is clean
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperProperty,
                         ::testing::Values(7, 17, 27));

// ---- SHA-256 structural properties ---------------------------------------------------

class ShaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShaProperty, SplitInvariance) {
  Random rng(GetParam());
  for (int iter = 0; iter < 20; iter++) {
    std::string msg = RandomBytes(&rng, 500);
    std::string oneshot = crypto::Sha256Digest(msg);
    crypto::Sha256 h;
    size_t pos = 0;
    while (pos < msg.size()) {
      size_t chunk = 1 + rng.Uniform(64);
      chunk = std::min(chunk, msg.size() - pos);
      h.Update(Slice(msg.data() + pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(h.Finish(), oneshot);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShaProperty, ::testing::Values(3, 6, 9));

}  // namespace
}  // namespace medvault
