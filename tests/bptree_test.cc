// B+tree tests: CRUD, ordering, splits across many keys, scans,
// persistence across reopen, and corruption detection.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/bptree.h"
#include "storage/mem_env.h"

namespace medvault::storage {
namespace {

class BpTreeTest : public ::testing::Test {
 protected:
  void OpenTree() {
    tree_ = std::make_unique<BpTree>(&env_, "tree.db");
    ASSERT_TRUE(tree_->Open().ok());
  }

  MemEnv env_;
  std::unique_ptr<BpTree> tree_;
};

TEST_F(BpTreeTest, EmptyTreeBehaviour) {
  OpenTree();
  EXPECT_TRUE(tree_->Get("missing").status().IsNotFound());
  EXPECT_TRUE(tree_->Delete("missing").IsNotFound());
  EXPECT_EQ(tree_->KeyCount(), 0u);
  int visits = 0;
  ASSERT_TRUE(tree_->Scan("", [&](const Slice&, const Slice&) {
    visits++;
    return true;
  }).ok());
  EXPECT_EQ(visits, 0);
}

TEST_F(BpTreeTest, PutGetDelete) {
  OpenTree();
  ASSERT_TRUE(tree_->Put("key1", "value1").ok());
  ASSERT_TRUE(tree_->Put("key2", "value2").ok());
  EXPECT_EQ(*tree_->Get("key1"), "value1");
  EXPECT_EQ(*tree_->Get("key2"), "value2");
  EXPECT_EQ(tree_->KeyCount(), 2u);
  ASSERT_TRUE(tree_->Delete("key1").ok());
  EXPECT_TRUE(tree_->Get("key1").status().IsNotFound());
  EXPECT_EQ(tree_->KeyCount(), 1u);
}

TEST_F(BpTreeTest, OverwriteKeepsSingleEntry) {
  OpenTree();
  ASSERT_TRUE(tree_->Put("key", "old").ok());
  ASSERT_TRUE(tree_->Put("key", "new").ok());
  EXPECT_EQ(*tree_->Get("key"), "new");
  EXPECT_EQ(tree_->KeyCount(), 1u);
}

TEST_F(BpTreeTest, RejectsOversizedCells) {
  OpenTree();
  std::string big(BpTree::kMaxCellSize + 1, 'x');
  EXPECT_TRUE(tree_->Put("k", big).IsInvalidArgument());
}

TEST_F(BpTreeTest, ManySequentialInsertsSplitPages) {
  OpenTree();
  const int n = 5000;
  for (int i = 0; i < n; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_TRUE(tree_->Put(key, "v" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(tree_->KeyCount(), static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += 37) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    auto v = tree_->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
}

TEST_F(BpTreeTest, RandomInsertsMatchReferenceMap) {
  OpenTree();
  Random rng(99);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 3000; i++) {
    std::string key = "key-" + std::to_string(rng.Uniform(1000));
    std::string value = "val-" + std::to_string(rng.Next() % 100000);
    reference[key] = value;
    ASSERT_TRUE(tree_->Put(key, value).ok());
  }
  EXPECT_EQ(tree_->KeyCount(), reference.size());
  for (const auto& [key, value] : reference) {
    auto v = tree_->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value);
  }
}

TEST_F(BpTreeTest, ScanIsSortedAndComplete) {
  OpenTree();
  Random rng(7);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 2000; i++) {
    std::string key = "key-" + std::to_string(rng.Next() % 100000);
    reference[key] = "v";
    ASSERT_TRUE(tree_->Put(key, "v").ok());
  }
  std::vector<std::string> scanned;
  ASSERT_TRUE(tree_->Scan("", [&](const Slice& key, const Slice&) {
    scanned.push_back(key.ToString());
    return true;
  }).ok());
  ASSERT_EQ(scanned.size(), reference.size());
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  auto it = reference.begin();
  for (const std::string& key : scanned) {
    EXPECT_EQ(key, it->first);
    ++it;
  }
}

TEST_F(BpTreeTest, ScanFromStartKey) {
  OpenTree();
  for (char c = 'a'; c <= 'z'; c++) {
    ASSERT_TRUE(tree_->Put(std::string(1, c), "v").ok());
  }
  std::vector<std::string> scanned;
  ASSERT_TRUE(tree_->Scan("m", [&](const Slice& key, const Slice&) {
    scanned.push_back(key.ToString());
    return true;
  }).ok());
  ASSERT_EQ(scanned.size(), 14u);  // m..z
  EXPECT_EQ(scanned.front(), "m");
  EXPECT_EQ(scanned.back(), "z");
}

TEST_F(BpTreeTest, ScanEarlyStop) {
  OpenTree();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), "v").ok());
  }
  int visits = 0;
  ASSERT_TRUE(tree_->Scan("", [&](const Slice&, const Slice&) {
    return ++visits < 10;
  }).ok());
  EXPECT_EQ(visits, 10);
}

TEST_F(BpTreeTest, DeletesAcrossSplitPages) {
  OpenTree();
  const int n = 2000;
  for (int i = 0; i < n; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_TRUE(tree_->Put(key, std::string(64, 'v')).ok());
  }
  for (int i = 0; i < n; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_TRUE(tree_->Delete(key).ok()) << key;
  }
  EXPECT_EQ(tree_->KeyCount(), static_cast<uint64_t>(n / 2));
  for (int i = 0; i < n; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    if (i % 2 == 0) {
      EXPECT_TRUE(tree_->Get(key).status().IsNotFound()) << key;
    } else {
      EXPECT_TRUE(tree_->Get(key).ok()) << key;
    }
  }
}

TEST_F(BpTreeTest, PersistsAcrossReopen) {
  OpenTree();
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        tree_->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(tree_->Flush().ok());
  tree_.reset();

  OpenTree();
  EXPECT_EQ(tree_->KeyCount(), 1000u);
  for (int i = 0; i < 1000; i += 111) {
    auto v = tree_->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
  // And stays writable.
  ASSERT_TRUE(tree_->Put("new-key", "new-value").ok());
  EXPECT_EQ(*tree_->Get("new-key"), "new-value");
}

TEST_F(BpTreeTest, DetectsCorruptedPage) {
  OpenTree();
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), std::string(50, 'v'))
                    .ok());
  }
  ASSERT_TRUE(tree_->Flush().ok());
  tree_.reset();

  // Flip a byte inside the second page (the first node page).
  ASSERT_TRUE(
      env_.UnsafeOverwrite("tree.db", BpTree::kPageSize + 100, "X").ok());
  OpenTree();
  // Some lookup that touches the corrupted page must fail loudly.
  int corrupt = 0;
  for (int i = 0; i < 1000; i++) {
    auto v = tree_->Get("k" + std::to_string(i));
    if (!v.ok() && v.status().IsCorruption()) corrupt++;
  }
  EXPECT_GT(corrupt, 0);
}

TEST_F(BpTreeTest, BinaryKeysAndValues) {
  OpenTree();
  std::string key("\x00\x01\xff\x7f", 4);
  std::string value("\xde\xad\x00\xbe\xef", 5);
  ASSERT_TRUE(tree_->Put(key, value).ok());
  auto v = tree_->Get(key);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, value);
}

}  // namespace
}  // namespace medvault::storage
