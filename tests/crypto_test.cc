// Unit tests for the crypto substrate: SHA-256, HMAC, HKDF, HMAC-DRBG,
// AES, AES-CTR, and the AEAD composition — against published test
// vectors where they exist.

#include <gtest/gtest.h>

#include <string>

#include "common/hex.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/ctr.h"
#include "crypto/drbg.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace medvault::crypto {
namespace {

std::string FromHex(const std::string& hex) {
  auto r = HexDecode(hex);
  EXPECT_TRUE(r.ok()) << hex;
  return r.ValueOr("");
}

// ---- SHA-256 (FIPS 180-4 vectors) ------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha256Digest(Slice())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Sha256Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexEncode(Sha256Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) h.Update(chunk);
  EXPECT_EQ(HexEncode(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(Slice(msg.data(), split));
    h.Update(Slice(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.Finish(), Sha256Digest(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64 byte padding boundaries.
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    std::string msg(len, 'x');
    std::string d1 = Sha256Digest(msg);
    Sha256 h;
    for (char c : msg) h.Update(Slice(&c, 1));
    EXPECT_EQ(h.Finish(), d1) << "len=" << len;
  }
}

TEST(Sha256Test, ResetRestartsState) {
  Sha256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(HexEncode(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ---- HMAC-SHA256 (RFC 4231 vectors) -----------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  std::string key(20, '\x0b');
  EXPECT_EQ(HexEncode(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexEncode(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  std::string key(131, '\xaa');
  EXPECT_EQ(HexEncode(HmacSha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeySensitivity) {
  EXPECT_NE(HmacSha256("key1", "msg"), HmacSha256("key2", "msg"));
  EXPECT_NE(HmacSha256("key", "msg1"), HmacSha256("key", "msg2"));
}

TEST(ConstantTimeEqualTest, Behaviour) {
  EXPECT_TRUE(ConstantTimeEqual("same", "same"));
  EXPECT_FALSE(ConstantTimeEqual("same", "sane"));
  EXPECT_FALSE(ConstantTimeEqual("short", "longer"));
  EXPECT_TRUE(ConstantTimeEqual("", ""));
}

// ---- HKDF (RFC 5869 vectors) -------------------------------------------------

TEST(HkdfTest, Rfc5869Case1) {
  std::string ikm = FromHex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  std::string salt = FromHex("000102030405060708090a0b0c");
  std::string info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  auto okm = HkdfSha256(ikm, salt, info, 42);
  ASSERT_TRUE(okm.ok());
  EXPECT_EQ(HexEncode(*okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo) {
  std::string ikm = FromHex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  auto okm = HkdfSha256(ikm, Slice(), Slice(), 42);
  ASSERT_TRUE(okm.ok());
  EXPECT_EQ(HexEncode(*okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, RejectsOversizedOutput) {
  auto okm = HkdfSha256("ikm", Slice(), Slice(), 255 * 32 + 1);
  EXPECT_TRUE(okm.status().IsInvalidArgument());
}

TEST(HkdfTest, DistinctInfoYieldsIndependentKeys) {
  auto k1 = HkdfSha256("master", Slice(), "purpose-a", 32);
  auto k2 = HkdfSha256("master", Slice(), "purpose-b", 32);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(*k1, *k2);
}

// ---- HMAC-DRBG -----------------------------------------------------------------

TEST(DrbgTest, DeterministicForSameSeed) {
  HmacDrbg a("seed"), b("seed");
  EXPECT_EQ(a.Generate(64), b.Generate(64));
  EXPECT_EQ(a.Generate(17), b.Generate(17));
}

TEST(DrbgTest, StreamAdvances) {
  HmacDrbg drbg("seed");
  EXPECT_NE(drbg.Generate(32), drbg.Generate(32));
}

TEST(DrbgTest, DifferentSeedsDiffer) {
  HmacDrbg a("seed1"), b("seed2");
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  HmacDrbg a("seed"), b("seed");
  a.Generate(32);
  b.Generate(32);
  a.Reseed("fresh entropy");
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, OutputLooksUniform) {
  HmacDrbg drbg("statistical-check");
  std::string bytes = drbg.Generate(100000);
  int ones = 0;
  for (char c : bytes) ones += __builtin_popcount(static_cast<uint8_t>(c));
  double ratio = static_cast<double>(ones) / (bytes.size() * 8);
  EXPECT_GT(ratio, 0.49);
  EXPECT_LT(ratio, 0.51);
}

// ---- AES (FIPS 197 vectors) -----------------------------------------------------

TEST(AesTest, Fips197Aes128) {
  Aes aes;
  ASSERT_TRUE(aes.Init(FromHex("000102030405060708090a0b0c0d0e0f")).ok());
  std::string pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(reinterpret_cast<const uint8_t*>(pt.data()), ct);
  EXPECT_EQ(HexEncode(Slice(reinterpret_cast<char*>(ct), 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(back), 16), pt);
}

TEST(AesTest, Fips197Aes256) {
  Aes aes;
  ASSERT_TRUE(
      aes.Init(FromHex("000102030405060708090a0b0c0d0e0f"
                       "101112131415161718191a1b1c1d1e1f"))
          .ok());
  std::string pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(reinterpret_cast<const uint8_t*>(pt.data()), ct);
  EXPECT_EQ(HexEncode(Slice(reinterpret_cast<char*>(ct), 16)),
            "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(back), 16), pt);
}

TEST(AesTest, RejectsBadKeySizes) {
  Aes aes;
  EXPECT_TRUE(aes.Init("short").IsInvalidArgument());
  EXPECT_TRUE(aes.Init(std::string(24, 'k')).IsInvalidArgument());  // AES-192
  EXPECT_FALSE(aes.initialized());
}

// ---- AES-CTR (NIST SP 800-38A F.5.1) ----------------------------------------------

TEST(CtrTest, NistSp80038aAes128Ctr) {
  AesCtr ctr;
  ASSERT_TRUE(ctr.Init(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  std::string nonce = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::string pt = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  auto ct = ctr.Crypt(nonce, pt);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(CtrTest, CryptIsItsOwnInverse) {
  AesCtr ctr;
  ASSERT_TRUE(ctr.Init(std::string(32, 'k')).ok());
  std::string nonce(16, 'n');
  std::string pt = "not a multiple of sixteen bytes!!";
  auto ct = ctr.Crypt(nonce, pt);
  ASSERT_TRUE(ct.ok());
  EXPECT_NE(*ct, pt);
  auto back = ctr.Crypt(nonce, *ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST(CtrTest, RejectsBadNonce) {
  AesCtr ctr;
  ASSERT_TRUE(ctr.Init(std::string(32, 'k')).ok());
  EXPECT_TRUE(ctr.Crypt("short", "data").status().IsInvalidArgument());
}

TEST(CtrTest, EmptyInputYieldsEmptyOutput) {
  AesCtr ctr;
  ASSERT_TRUE(ctr.Init(std::string(32, 'k')).ok());
  auto out = ctr.Crypt(std::string(16, 'n'), Slice());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

// ---- AEAD ---------------------------------------------------------------------------

class AeadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(aead_.Init(std::string(32, 'K')).ok());
  }
  Aead aead_;
  std::string nonce_ = std::string(16, 'N');
};

TEST_F(AeadTest, SealOpenRoundTrip) {
  auto sealed = aead_.Seal(nonce_, "secret medical note", "record-aad");
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->size(), 19 + Aead::kOverhead);
  auto opened = aead_.Open(*sealed, "record-aad");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, "secret medical note");
}

TEST_F(AeadTest, EveryCiphertextByteFlipIsDetected) {
  auto sealed = aead_.Seal(nonce_, "payload", "aad");
  ASSERT_TRUE(sealed.ok());
  for (size_t i = 0; i < sealed->size(); i++) {
    std::string tampered = *sealed;
    tampered[i] ^= 0x01;
    EXPECT_TRUE(aead_.Open(tampered, "aad").status().IsTamperDetected())
        << "byte " << i << " flip not detected";
  }
}

TEST_F(AeadTest, WrongAadRejected) {
  auto sealed = aead_.Seal(nonce_, "payload", "aad-1");
  ASSERT_TRUE(sealed.ok());
  EXPECT_TRUE(aead_.Open(*sealed, "aad-2").status().IsTamperDetected());
}

TEST_F(AeadTest, TruncatedBlobRejected) {
  auto sealed = aead_.Seal(nonce_, "payload", "aad");
  ASSERT_TRUE(sealed.ok());
  std::string truncated = sealed->substr(0, Aead::kOverhead - 1);
  EXPECT_TRUE(aead_.Open(truncated, "aad").status().IsTamperDetected());
}

TEST_F(AeadTest, EmptyPlaintextWorks) {
  auto sealed = aead_.Seal(nonce_, Slice(), "aad");
  ASSERT_TRUE(sealed.ok());
  auto opened = aead_.Open(*sealed, "aad");
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

TEST_F(AeadTest, DifferentKeysCannotOpen) {
  auto sealed = aead_.Seal(nonce_, "payload", "aad");
  ASSERT_TRUE(sealed.ok());
  Aead other;
  ASSERT_TRUE(other.Init(std::string(32, 'X')).ok());
  EXPECT_TRUE(other.Open(*sealed, "aad").status().IsTamperDetected());
}

TEST_F(AeadTest, RejectsBadKeyAndNonceSizes) {
  Aead bad;
  EXPECT_TRUE(bad.Init("short").IsInvalidArgument());
  EXPECT_TRUE(
      aead_.Seal("shortnonce", "pt", "aad").status().IsInvalidArgument());
}

}  // namespace
}  // namespace medvault::crypto
