// Media reclamation tests (HIPAA §164.310(d)(2)(ii) media re-use):
// fully-shredded WORM segments can be physically dropped while every
// guarantee that still applies (tombstones, custody, verification,
// migration of the remainder) keeps holding.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/migration.h"
#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class ReclaimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "reclaim-entropy";
    options.signer_height = 5;
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok());
    vault_ = std::move(vault).value();
    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"pat-p", Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  Result<RecordId> Create() {
    return vault_->CreateRecord("dr-a", "pat-p", "text/plain",
                                std::string(300, 'x'), {"kw"}, "short-1y");
  }

  /// Seals the active segment so previous entries become reclaimable.
  void SealActive() {
    ASSERT_TRUE(vault_->versions()->segments()->SealActive().ok());
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> vault_;
};

TEST_F(ReclaimTest, NothingToReclaimWhileRecordsLive) {
  ASSERT_TRUE(Create().ok());
  SealActive();
  auto dropped = vault_->ReclaimDisposedMedia("admin-r");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0);
}

TEST_F(ReclaimTest, FullyShreddedSegmentIsReclaimed) {
  auto r1 = Create();
  auto r2 = Create();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  SealActive();
  clock_.AdvanceYears(2);
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *r1).ok());
  // Segment still holds r2 -> not reclaimable.
  EXPECT_EQ(*vault_->ReclaimDisposedMedia("admin-r"), 0);

  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *r2).ok());
  auto dropped = vault_->ReclaimDisposedMedia("admin-r");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 1);
  EXPECT_TRUE(vault_->versions()->IsReclaimed(*r1));

  // Reads still answer correctly, verification still passes.
  EXPECT_TRUE(vault_->ReadRecord("dr-a", *r1).status().IsKeyDestroyed());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
  // Custody chain intact, ends with disposal.
  ASSERT_TRUE(
      vault_->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
          .ok());
  auto chain = vault_->GetCustodyChain("aud-x", *r1);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->back().type, CustodyEventType::kDisposed);
}

TEST_F(ReclaimTest, ReclaimFreesBytes) {
  std::vector<RecordId> ids;
  for (int i = 0; i < 8; i++) {
    auto id = Create();
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  SealActive();
  clock_.AdvanceYears(2);
  for (const RecordId& id : ids) {
    ASSERT_TRUE(vault_->DisposeRecord("admin-r", id).ok());
  }
  uint64_t before = env_.TotalBytes();
  ASSERT_GT(*vault_->ReclaimDisposedMedia("admin-r"), 0);
  uint64_t after = env_.TotalBytes();
  EXPECT_LT(after, before);
}

TEST_F(ReclaimTest, ActiveSegmentNeverReclaimed) {
  auto r1 = Create();
  ASSERT_TRUE(r1.ok());
  clock_.AdvanceYears(2);
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *r1).ok());
  // Not sealed: must not be touched even though fully disposed.
  EXPECT_EQ(*vault_->ReclaimDisposedMedia("admin-r"), 0);
}

TEST_F(ReclaimTest, ReclaimRequiresAdminAndIsAudited) {
  EXPECT_TRUE(
      vault_->ReclaimDisposedMedia("dr-a").status().IsPermissionDenied());
  ASSERT_TRUE(vault_->ReclaimDisposedMedia("admin-r").ok());
  ASSERT_TRUE(
      vault_->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
          .ok());
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  bool found = false;
  for (const AuditEvent& e : *trail) {
    if (e.details.rfind("media-reclaim", 0) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ReclaimTest, DirectReclaimOfLiveSegmentRefused) {
  auto r1 = Create();
  ASSERT_TRUE(r1.ok());
  SealActive();
  auto ids = vault_->versions()->segments()->SegmentIds();
  EXPECT_TRUE(vault_->versions()
                  ->ReclaimSegments({ids.front()})
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(ReclaimTest, MigrationSkipsReclaimedRecordsButMovesTheRest) {
  auto gone = Create();
  auto kept = Create();
  ASSERT_TRUE(gone.ok());
  ASSERT_TRUE(kept.ok());
  SealActive();
  auto survivor = Create();  // lives in the next segment
  ASSERT_TRUE(survivor.ok());
  clock_.AdvanceYears(2);
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *gone).ok());
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *kept).ok());
  ASSERT_GT(*vault_->ReclaimDisposedMedia("admin-r"), 0);

  storage::MemEnv env_b;
  VaultOptions options;
  options.env = &env_b;
  options.dir = "vault";
  options.clock = &clock_;
  options.master_key = std::string(32, 'M');
  options.entropy = "reclaim-entropy-b";
  options.signer_height = 5;
  options.system_id = "gen2";
  auto target = std::move(Vault::Open(options)).value();
  ASSERT_TRUE(
      target->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
          .ok());
  ASSERT_TRUE(target
                  ->RegisterPrincipal("admin-r",
                                      {"dr-a", Role::kPhysician, "Dr"})
                  .ok());
  ASSERT_TRUE(target
                  ->RegisterPrincipal("admin-r",
                                      {"pat-p", Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE(target->AssignCare("admin-r", "dr-a", "pat-p").ok());

  auto receipt = Migrator::Migrate(vault_.get(), target.get(), "admin-r");
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  // The live record migrated with bytes; the reclaimed ones with
  // tombstones only.
  EXPECT_EQ(receipt->record_count, 3u);
  EXPECT_EQ(receipt->version_count, 1u);
  EXPECT_EQ(target->ReadRecord("dr-a", *survivor)->plaintext,
            std::string(300, 'x'));
  EXPECT_TRUE(target->ReadRecord("dr-a", *gone).status().IsKeyDestroyed());
  EXPECT_TRUE(
      Migrator::VerifyReceipt(*receipt, vault_.get(), target.get()).ok());
}

}  // namespace
}  // namespace medvault::core
