// SegmentStore tests: append/read, sealing, rollover, WORM discipline,
// tamper detection via frame CRCs, reopen behaviour.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/mem_env.h"
#include "storage/segment.h"

namespace medvault::storage {
namespace {

class SegmentTest : public ::testing::Test {
 protected:
  SegmentStore::Options SmallSegments() {
    SegmentStore::Options options;
    options.max_segment_bytes = 256;
    return options;
  }

  MemEnv env_;
};

TEST_F(SegmentTest, AppendAndReadBack) {
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  auto h1 = store.Append("first entry");
  auto h2 = store.Append("second entry");
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(*store.Read(*h1), "first entry");
  EXPECT_EQ(*store.Read(*h2), "second entry");
}

TEST_F(SegmentTest, HandleEncodingRoundTrip) {
  EntryHandle h{42, 12345, 678};
  auto decoded = EntryHandle::Decode(h.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, h);
  EXPECT_FALSE(EntryHandle::Decode("junk!").ok());
}

TEST_F(SegmentTest, RollsToNewSegmentWhenFull) {
  SegmentStore store(&env_, "seg", SmallSegments());
  ASSERT_TRUE(store.Open().ok());
  std::vector<EntryHandle> handles;
  for (int i = 0; i < 20; i++) {
    auto h = store.Append(std::string(100, 'a' + (i % 26)));
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  EXPECT_GT(store.SegmentIds().size(), 1u);
  // All entries remain readable across segments.
  for (int i = 0; i < 20; i++) {
    auto content = store.Read(handles[i]);
    ASSERT_TRUE(content.ok());
    EXPECT_EQ((*content)[0], 'a' + (i % 26));
  }
}

TEST_F(SegmentTest, SealedSegmentsAreMarked) {
  SegmentStore store(&env_, "seg", SmallSegments());
  ASSERT_TRUE(store.Open().ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store.Append(std::string(100, 'x')).ok());
  }
  auto ids = store.SegmentIds();
  ASSERT_GT(ids.size(), 1u);
  for (size_t i = 0; i + 1 < ids.size(); i++) {
    EXPECT_TRUE(store.IsSealed(ids[i])) << "segment " << ids[i];
  }
  EXPECT_FALSE(store.IsSealed(ids.back()));  // active
}

TEST_F(SegmentTest, SealActiveStartsFreshSegment) {
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Append("entry").ok());
  auto before = store.SegmentIds();
  ASSERT_TRUE(store.SealActive().ok());
  auto after = store.SegmentIds();
  EXPECT_EQ(after.size(), before.size() + 1);
  EXPECT_TRUE(store.IsSealed(before.back()));
}

TEST_F(SegmentTest, ForEachEntryVisitsAllInOrder) {
  SegmentStore store(&env_, "seg", SmallSegments());
  ASSERT_TRUE(store.Open().ok());
  for (int i = 0; i < 15; i++) {
    ASSERT_TRUE(store.Append("entry-" + std::to_string(i)).ok());
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(store
                  .ForEachEntry([&](const EntryHandle& h, const Slice& data) {
                    seen.push_back(data.ToString());
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 15u);
  for (int i = 0; i < 15; i++) {
    EXPECT_EQ(seen[i], "entry-" + std::to_string(i));
  }
}

TEST_F(SegmentTest, ForEachEntryEarlyStop) {
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(store.Append("e").ok());
  }
  int count = 0;
  ASSERT_TRUE(store
                  .ForEachEntry([&](const EntryHandle&, const Slice&) {
                    return ++count < 3;
                  })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(SegmentTest, TamperedEntryFailsCrc) {
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  auto h = store.Append("sensitive medical data");
  ASSERT_TRUE(h.ok());
  // Insider flips a payload byte via raw disk access.
  std::string file = store.SegmentFileName(h->segment_id);
  ASSERT_TRUE(env_.UnsafeOverwrite(file, h->offset + 8 + 2, "X").ok());
  EXPECT_TRUE(store.Read(*h).status().IsCorruption());
  EXPECT_TRUE(store
                  .ForEachEntry([](const EntryHandle&, const Slice&) {
                    return true;
                  })
                  .IsCorruption());
}

TEST_F(SegmentTest, ReadRejectsTruncatedEntry) {
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  auto h = store.Append("will be cut off");
  ASSERT_TRUE(h.ok());
  std::string file = store.SegmentFileName(h->segment_id);
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize(file, &size).ok());
  ASSERT_TRUE(env_.UnsafeTruncate(file, size - 4).ok());
  EXPECT_TRUE(store.Read(*h).status().IsCorruption());
}

TEST_F(SegmentTest, ReopenSealsPreviousSegments) {
  EntryHandle h1;
  {
    SegmentStore store(&env_, "seg", {});
    ASSERT_TRUE(store.Open().ok());
    auto h = store.Append("persisted");
    ASSERT_TRUE(h.ok());
    h1 = *h;
  }
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  EXPECT_TRUE(store.IsSealed(h1.segment_id));
  EXPECT_EQ(*store.Read(h1), "persisted");
  // New appends go to a fresh segment.
  auto h2 = store.Append("new data");
  ASSERT_TRUE(h2.ok());
  EXPECT_GT(h2->segment_id, h1.segment_id);
}

TEST_F(SegmentTest, DropSegmentOnlyWhenSealed) {
  SegmentStore store(&env_, "seg", SmallSegments());
  ASSERT_TRUE(store.Open().ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store.Append(std::string(100, 'x')).ok());
  }
  auto ids = store.SegmentIds();
  ASSERT_GT(ids.size(), 1u);
  EXPECT_TRUE(store.DropSegment(ids.back()).IsWormViolation());  // active
  EXPECT_TRUE(store.DropSegment(ids.front()).ok());              // sealed
  EXPECT_TRUE(store.DropSegment(ids.front()).IsNotFound());
}

TEST_F(SegmentTest, SegmentHashChangesOnTamper) {
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  auto h = store.Append("hash me");
  ASSERT_TRUE(h.ok());
  auto before = store.SegmentHash(h->segment_id);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      env_.UnsafeOverwrite(store.SegmentFileName(h->segment_id), 9, "Z")
          .ok());
  auto after = store.SegmentHash(h->segment_id);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*before, *after);
}

TEST_F(SegmentTest, TotalBytesGrows) {
  SegmentStore store(&env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.TotalBytes(), 0u);
  ASSERT_TRUE(store.Append("12345").ok());
  EXPECT_EQ(store.TotalBytes(), 8u + 5u);  // frame header + payload
}

TEST_F(SegmentTest, OperationsRequireOpen) {
  SegmentStore store(&env_, "seg", {});
  EXPECT_TRUE(store.Append("x").status().IsFailedPrecondition());
  EXPECT_TRUE(store.SealActive().IsFailedPrecondition());
}

}  // namespace
}  // namespace medvault::storage
