// WorkerPool tests — most importantly the re-entrant RunAll regression:
// a pooled task fanning out through the same pool used to queue its
// sub-batch and block on the batch condvar while holding the worker
// slot that sub-batch needed, deadlocking the pool as soon as every
// worker was a blocked submitter. The fix executes re-entrant RunAll
// inline on the worker thread; these tests would hang (and trip the
// ctest timeout) under the old behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "common/worker_pool.h"

namespace medvault::core {
namespace {

TEST(WorkerPoolTest, RunsEveryTaskAndWaitsForCompletion) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) tasks.push_back([&] { completed++; });
  pool.RunAll(std::move(tasks));
  // RunAll returning IS the completion barrier.
  EXPECT_EQ(completed.load(), 64);
}

TEST(WorkerPoolTest, ZeroThreadsRunsInlineInSubmissionOrder) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back([&order, i] { order.push_back(i); });
  pool.RunAll(std::move(tasks));
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPoolTest, OnWorkerThreadDistinguishesPoolThreads) {
  WorkerPool pool(2);
  WorkerPool other(1);
  EXPECT_FALSE(pool.OnWorkerThread());
  std::atomic<int> on_pool{0};
  std::atomic<int> on_other{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&] {
      if (pool.OnWorkerThread()) on_pool++;
      if (other.OnWorkerThread()) on_other++;
    });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(on_pool.load(), 4);
  EXPECT_EQ(on_other.load(), 0) << "worker claims membership in foreign pool";
}

// The deadlock regression. 2 workers, 4 outer tasks, each outer task
// fans out 4 inner tasks through the SAME pool. Pre-fix: both workers
// pick up outer tasks, queue their inner batches, and block on the
// batch condvar — with no free worker left to drain the queue, the
// pool is wedged forever. Post-fix: the inner RunAll detects it is on
// a worker thread and executes inline, so all 16 inner tasks complete.
TEST(WorkerPoolTest, ReentrantRunAllFromWorkerDoesNotDeadlock) {
  WorkerPool pool(2);
  std::atomic<int> inner_completed{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&] {
      ASSERT_TRUE(pool.OnWorkerThread());
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) inner.push_back([&] { inner_completed++; });
      pool.RunAll(std::move(inner));
    });
  }
  pool.RunAll(std::move(outer));
  EXPECT_EQ(inner_completed.load(), 16);
}

// Two levels of re-entrancy (a pooled task fans out, and ITS tasks fan
// out again) must also complete — the inline path recurses safely.
TEST(WorkerPoolTest, DoublyNestedReentrantRunAll) {
  WorkerPool pool(2);
  std::atomic<int> leaf{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 3; ++i) {
    outer.push_back([&] {
      std::vector<std::function<void()>> mid;
      for (int j = 0; j < 3; ++j) {
        mid.push_back([&] {
          std::vector<std::function<void()>> inner;
          for (int k = 0; k < 3; ++k) inner.push_back([&] { leaf++; });
          pool.RunAll(std::move(inner));
        });
      }
      pool.RunAll(std::move(mid));
    });
  }
  pool.RunAll(std::move(outer));
  EXPECT_EQ(leaf.load(), 27);
}

// Concurrent RunAll calls from independent external threads share the
// workers without crosstalk: each call returns only when its OWN batch
// is done.
TEST(WorkerPoolTest, ConcurrentExternalBatchesTrackSeparately) {
  WorkerPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kTasksPerBatch = 50;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      std::atomic<int> mine{0};
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < kTasksPerBatch; ++i) {
        tasks.push_back([&] {
          mine++;
          total++;
        });
      }
      pool.RunAll(std::move(tasks));
      EXPECT_EQ(mine.load(), kTasksPerBatch);
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kTasksPerBatch);
}

// ---------------------------------------------------------------------------
// TaskGroup: completion handle over a subset of a pool's work.
// ---------------------------------------------------------------------------

TEST(TaskGroupTest, WaitCoversExactlyItsOwnTasks) {
  WorkerPool pool(3);
  std::atomic<int> mine{0};
  std::atomic<int> theirs{0};
  std::atomic<bool> release_theirs{false};

  // A stranger's slow task on the same pool must be invisible to the
  // group: Wait() returns once the group's OWN tasks are done, even
  // while the stranger is still blocked.
  pool.Submit([&] {
    while (!release_theirs.load()) std::this_thread::yield();
    theirs++;
  });
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 16; ++i) group.Submit([&] { mine++; });
    group.Wait();
    EXPECT_EQ(mine.load(), 16);
  }
  EXPECT_EQ(theirs.load(), 0) << "group waited on a stranger's task";
  release_theirs.store(true);
  // Pool destructor drains the stranger.
}

TEST(TaskGroupTest, ZeroThreadPoolRunsInlineInSubmissionOrder) {
  WorkerPool pool(0);
  TaskGroup group(&pool);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) group.Submit([&order, i] { order.push_back(i); });
  // Inline mode: everything already ran, Wait is a no-op.
  group.Wait();
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskGroupTest, ReentrantSubmitFromWorkerRunsInlineNoDeadlock) {
  // Same hazard as re-entrant RunAll: a pooled task fanning out through
  // a group on its own pool must execute inline, or workers end up
  // blocked in Wait() holding the slots their sub-tasks need. Hangs
  // (ctest timeout) on regression.
  WorkerPool pool(2);
  std::atomic<int> leaf{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.Submit([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 3; ++j) inner.Submit([&] { leaf++; });
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaf.load(), 12);
}

TEST(TaskGroupTest, DestructorWaitsForPendingTasks) {
  WorkerPool pool(2);
  std::atomic<int> done{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) {
      group.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        done++;
      });
    }
    // No explicit Wait: the destructor is the barrier.
  }
  EXPECT_EQ(done.load(), 8);
}

}  // namespace
}  // namespace medvault::core
