// Media-fault tests: scrub localization (segment frames, record logs,
// orphans, missing artifacts), read-repair from a backup chain, the
// distinct broken-chain verdict, degraded sharded opens with
// quarantine/rejoin, and RetryEnv's bounded absorption of transient
// I/O faults.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "core/backup.h"
#include "core/scrub.h"
#include "core/shard_router.h"
#include "core/sharded_vault.h"
#include "core/vault.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"
#include "storage/retry_env.h"

namespace medvault::core {
namespace {

// ---------------------------------------------------------------------
// Raw segment-frame scanning.

std::string Frame(const std::string& payload) {
  std::string f;
  PutFixed32(&f, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&f, static_cast<uint32_t>(payload.size()));
  f += payload;
  return f;
}

TEST(ScrubSegmentDataTest, CleanFramesScanClean) {
  std::string data = Frame("alpha") + Frame("beta-payload");
  FileScrubResult out;
  Scrubber::ScrubSegmentData(Slice(data), /*is_active=*/false, &out);
  EXPECT_EQ(out.verdict, ScrubVerdict::kClean);
  EXPECT_TRUE(out.corrupt_ranges.empty());
}

TEST(ScrubSegmentDataTest, FlippedPayloadByteLocalizedToItsFrame) {
  const std::string first = Frame("alpha");
  std::string data = first + Frame("beta-payload");
  data[first.size() + 8 + 2] ^= 0x01;  // one bit in the second payload
  FileScrubResult out;
  Scrubber::ScrubSegmentData(Slice(data), /*is_active=*/false, &out);
  ASSERT_EQ(out.verdict, ScrubVerdict::kCorrupt);
  ASSERT_EQ(out.corrupt_ranges.size(), 1u);
  // The damaged range is exactly the second frame — the first survived.
  EXPECT_EQ(out.corrupt_ranges[0].offset, first.size());
  EXPECT_EQ(out.corrupt_ranges[0].length, 8 + std::string("beta-payload").size());
}

TEST(ScrubSegmentDataTest, TornTailLegalOnlyOnActiveSegment) {
  const std::string full = Frame("complete");
  std::string torn = full + Frame("never-finished").substr(0, 13);

  FileScrubResult active;
  Scrubber::ScrubSegmentData(Slice(torn), /*is_active=*/true, &active);
  EXPECT_EQ(active.verdict, ScrubVerdict::kClean);
  EXPECT_NE(active.detail.find("torn"), std::string::npos);

  // A sealed segment was closed behind a durability barrier: the same
  // tail is media damage, localized to the bytes past the last frame.
  FileScrubResult sealed;
  Scrubber::ScrubSegmentData(Slice(torn), /*is_active=*/false, &sealed);
  ASSERT_EQ(sealed.verdict, ScrubVerdict::kCorrupt);
  ASSERT_EQ(sealed.corrupt_ranges.size(), 1u);
  EXPECT_EQ(sealed.corrupt_ranges[0].offset, full.size());
}

// ---------------------------------------------------------------------
// Shared corruption helpers.

// Relative path (under `dir`) of the largest segment file.
std::string FindSegment(storage::Env* env, const std::string& dir) {
  std::vector<std::string> kids;
  EXPECT_TRUE(env->GetChildren(dir + "/segments", &kids).ok());
  std::string best;
  uint64_t best_size = 0;
  for (const std::string& name : kids) {
    uint64_t size = 0;
    if (env->GetFileSize(dir + "/segments/" + name, &size).ok() &&
        size >= best_size) {
      best = "segments/" + name;
      best_size = size;
    }
  }
  EXPECT_FALSE(best.empty());
  return best;
}

void XorByte(storage::Env* env, const std::string& path, uint64_t offset) {
  std::string data;
  ASSERT_TRUE(storage::ReadFileToString(env, path, &data).ok());
  ASSERT_LT(offset, data.size());
  const char flipped = static_cast<char>(data[offset] ^ 0x40);
  ASSERT_TRUE(env->UnsafeOverwrite(path, offset, Slice(&flipped, 1)).ok());
}

// path -> bytes for every file under `dir` (one directory level deep,
// which is all a vault has).
std::map<std::string, std::string> SnapshotDir(storage::Env* env,
                                               const std::string& dir) {
  std::map<std::string, std::string> out;
  std::vector<std::string> kids;
  if (!env->GetChildren(dir, &kids).ok()) return out;
  for (const std::string& child : kids) {
    std::string data;
    if (storage::ReadFileToString(env, dir + "/" + child, &data).ok()) {
      out[child] = std::move(data);
      continue;
    }
    std::vector<std::string> nested;
    if (env->GetChildren(dir + "/" + child, &nested).ok()) {
      for (const std::string& inner : nested) {
        std::string inner_data;
        if (storage::ReadFileToString(env, dir + "/" + child + "/" + inner,
                                      &inner_data)
                .ok()) {
          out[child + "/" + inner] = std::move(inner_data);
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Vault-level scrub + repair fixture.

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vault_ = OpenVault(&env_, "vault");
    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"pat-p", Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"aud-x", Role::kAuditor, "X"})
                    .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  std::unique_ptr<Vault> OpenVault(storage::Env* env,
                                   const std::string& dir) {
    VaultOptions options;
    options.env = env;
    options.dir = dir;
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "scrub-test-entropy";
    options.signer_height = 4;
    options.metrics = &registry_;
    auto vault = Vault::Open(options);
    EXPECT_TRUE(vault.ok()) << vault.status().ToString();
    return std::move(vault).value();
  }

  RecordId CreateSample(const std::string& content) {
    auto id = vault_->CreateRecord("dr-a", "pat-p", "text/plain", content,
                                   {"scrub"}, "hipaa-6y");
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ValueOr("");
  }

  static int CountRestoreEvents(const std::vector<AuditEvent>& trail) {
    int n = 0;
    for (const AuditEvent& e : trail) {
      if (e.action == AuditAction::kRestore) n++;
    }
    return n;
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  obs::MetricsRegistry registry_;
  std::unique_ptr<Vault> vault_;
};

TEST_F(ScrubTest, CleanVaultScrubsClean) {
  CreateSample("routine note");
  ASSERT_TRUE(vault_->SyncAll().ok());
  auto report = vault_->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_TRUE(report->structurally_clean());
  // All six core artifacts plus at least one segment were walked.
  EXPECT_GE(report->files_scanned, 7u);
  EXPECT_GT(report->bytes_scanned, 0u);
  EXPECT_EQ(report->corrupt_files, 0u);

  const Vault::ScrubStats last = vault_->LastScrub();
  EXPECT_TRUE(last.ran);
  EXPECT_TRUE(last.clean);
  EXPECT_EQ(last.files_scanned, report->files_scanned);
  EXPECT_EQ(registry_.GetCounter("vault.scrub.runs")->Value(), 1u);
  EXPECT_EQ(registry_.GetCounter("vault.scrub.dirty")->Value(), 0u);
}

TEST_F(ScrubTest, ScrubLocalizesSegmentBitFlip) {
  CreateSample(std::string(128, 'a'));
  ASSERT_TRUE(vault_->SyncAll().ok());
  const std::string seg = FindSegment(&env_, "vault");
  XorByte(&env_, "vault/" + seg, /*offset=*/8 + 3);  // payload byte

  auto report = vault_->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->structurally_clean());
  const FileScrubResult* hit = report->Find(seg);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->verdict, ScrubVerdict::kCorrupt);
  ASSERT_FALSE(hit->corrupt_ranges.empty());
  EXPECT_EQ(hit->corrupt_ranges[0].offset, 0u);  // damage is in frame 1
  // Every other artifact still reads clean — the damage was localized.
  for (const FileScrubResult& f : report->files) {
    if (f.path != seg) {
      EXPECT_NE(f.verdict, ScrubVerdict::kCorrupt) << f.path;
    }
  }
  EXPECT_EQ(registry_.GetCounter("vault.scrub.dirty")->Value(), 1u);
  EXPECT_FALSE(vault_->LastScrub().clean);
}

TEST_F(ScrubTest, OfflineScrubFlagsLogDamageOrphansAndMissing) {
  CreateSample("x");
  ASSERT_TRUE(vault_->SyncAll().ok());
  vault_.reset();  // offline: scrub must work without opening the vault

  // Mid-log bit rot in the state log, a crash-leftover temp file, and a
  // deleted provenance log.
  XorByte(&env_, "vault/state.log", /*offset=*/10);
  ASSERT_TRUE(storage::WriteStringToFile(&env_, Slice("partial"),
                                         "vault/upload.tmp", false)
                  .ok());
  ASSERT_TRUE(env_.RemoveFile("vault/provenance.log").ok());

  auto report = Scrubber::ScrubVaultDir(&env_, "vault", 42);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->structurally_clean());

  const FileScrubResult* state = report->Find("state.log");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->verdict, ScrubVerdict::kCorrupt);
  ASSERT_FALSE(state->corrupt_ranges.empty());
  EXPECT_EQ(state->corrupt_ranges[0].offset, 0u);  // first physical record

  const FileScrubResult* orphan = report->Find("upload.tmp");
  ASSERT_NE(orphan, nullptr);
  EXPECT_EQ(orphan->verdict, ScrubVerdict::kOrphan);
  EXPECT_EQ(report->orphan_files, 1u);

  const FileScrubResult* missing = report->Find("provenance.log");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->verdict, ScrubVerdict::kMissing);

  // Damaged = corrupt + missing; orphans are listed separately.
  auto damaged = report->DamagedFiles();
  EXPECT_EQ(damaged.size(), 2u);
  EXPECT_EQ(report->OrphanFiles(), std::vector<std::string>{"upload.tmp"});
}

TEST_F(ScrubTest, RepairRestoresOnlyDamagedFilesByteIdentical) {
  RecordId r1 = CreateSample("original content");
  CreateSample("second record");
  ASSERT_TRUE(vault_->SyncAll().ok());
  auto full = BackupManager::Backup(vault_.get(), "admin-r", &env_, "bk-full");
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  clock_.Advance(kMicrosPerDay);
  ASSERT_TRUE(
      vault_->CorrectRecord("dr-a", r1, "amended content", "fix", {}).ok());
  ASSERT_TRUE(vault_->SyncAll().ok());
  auto incr = BackupManager::BackupIncremental(vault_.get(), "admin-r", &env_,
                                               "bk-incr", *full);
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();
  vault_.reset();

  const std::map<std::string, std::string> before = SnapshotDir(&env_, "vault");
  const std::string seg = FindSegment(&env_, "vault");
  XorByte(&env_, "vault/" + seg, /*offset=*/8 + 5);
  ASSERT_TRUE(storage::WriteStringToFile(&env_, Slice("junk"),
                                         "vault/stale.tmp", false)
                  .ok());

  auto report = Scrubber::ScrubVaultDir(&env_, "vault", 42);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->structurally_clean());

  auto chain = BackupManager::LoadChain(&env_, {"bk-full", "bk-incr"});
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_TRUE(BackupManager::VerifyChain(&env_, *chain).ok());
  auto summary = BackupManager::Repair(&env_, *chain, &env_, "vault", *report);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->restored, std::vector<std::string>{seg});
  EXPECT_EQ(summary->removed_orphans, std::vector<std::string>{"stale.tmp"});
  EXPECT_TRUE(summary->unrepairable.empty());
  EXPECT_TRUE(summary->verified_clean);

  // Every vault file — the repaired one included — is byte-identical to
  // its pre-damage state; repair touched nothing else.
  EXPECT_EQ(SnapshotDir(&env_, "vault"), before);

  vault_ = OpenVault(&env_, "vault");
  EXPECT_TRUE(vault_->VerifyEverything().ok());
  EXPECT_EQ(vault_->ReadRecord("dr-a", r1)->plaintext, "amended content");

  // The repair lands in the audit trail as exactly one kRestore event.
  ASSERT_TRUE(
      BackupManager::AuditRepair(vault_.get(), "admin-r", *summary).ok());
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  EXPECT_EQ(CountRestoreEvents(*trail), 1);
}

TEST_F(ScrubTest, RepairReportsFilesTheChainCannotCover) {
  CreateSample("backed up");
  ASSERT_TRUE(vault_->SyncAll().ok());
  auto full = BackupManager::Backup(vault_.get(), "admin-r", &env_, "bk-full");
  ASSERT_TRUE(full.ok());

  // A segment born after the last backup is damaged: no chain link has
  // it, so repair must say so instead of silently "succeeding".
  ASSERT_TRUE(vault_->versions()->segments()->SealActive().ok());
  CreateSample(std::string(64, 'n'));
  ASSERT_TRUE(vault_->SyncAll().ok());
  vault_.reset();

  const std::string young_seg = FindSegment(&env_, "vault");
  XorByte(&env_, "vault/" + young_seg, /*offset=*/8 + 1);
  auto report = Scrubber::ScrubVaultDir(&env_, "vault", 42);
  ASSERT_TRUE(report.ok());
  const FileScrubResult* hit = report->Find(young_seg);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->verdict, ScrubVerdict::kCorrupt);

  auto chain = BackupManager::LoadChain(&env_, {"bk-full"});
  ASSERT_TRUE(chain.ok());
  auto summary = BackupManager::Repair(&env_, *chain, &env_, "vault", *report);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->unrepairable, std::vector<std::string>{young_seg});
  EXPECT_FALSE(summary->verified_clean);
}

TEST_F(ScrubTest, RepairRefusesTamperedBackupBytes) {
  CreateSample("to restore");
  ASSERT_TRUE(vault_->SyncAll().ok());
  auto full = BackupManager::Backup(vault_.get(), "admin-r", &env_, "bk-full");
  ASSERT_TRUE(full.ok());
  vault_.reset();

  const std::string seg = FindSegment(&env_, "vault");
  XorByte(&env_, "vault/" + seg, /*offset=*/8 + 2);
  // The backup copy of the same file rotted too (or was tampered with):
  // repair must refuse rather than install unverified bytes.
  XorByte(&env_, "bk-full/" + seg, /*offset=*/8 + 2);

  auto report = Scrubber::ScrubVaultDir(&env_, "vault", 42);
  ASSERT_TRUE(report.ok());
  auto chain = BackupManager::LoadChain(&env_, {"bk-full"});
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(BackupManager::Repair(&env_, *chain, &env_, "vault", *report)
                  .status()
                  .IsTamperDetected());
}

TEST_F(ScrubTest, LoadChainDetectsDeletedMiddleIncremental) {
  RecordId r1 = CreateSample("v1");
  ASSERT_TRUE(vault_->SyncAll().ok());
  auto full = BackupManager::Backup(vault_.get(), "admin-r", &env_, "c0");
  ASSERT_TRUE(full.ok());
  clock_.Advance(kMicrosPerDay);
  ASSERT_TRUE(vault_->CorrectRecord("dr-a", r1, "v2", "fix", {}).ok());
  auto i1 = BackupManager::BackupIncremental(vault_.get(), "admin-r", &env_,
                                             "c1", *full);
  ASSERT_TRUE(i1.ok());
  clock_.Advance(kMicrosPerDay);
  ASSERT_TRUE(vault_->CorrectRecord("dr-a", r1, "v3", "fix", {}).ok());
  auto i2 = BackupManager::BackupIncremental(vault_.get(), "admin-r", &env_,
                                             "c2", *i1);
  ASSERT_TRUE(i2.ok());

  // Intact chain loads and verifies.
  auto chain = BackupManager::LoadChain(&env_, {"c0", "c1", "c2"});
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(chain->size(), 3u);
  EXPECT_TRUE(BackupManager::VerifyChain(&env_, *chain).ok());

  // Regression: an operator deletes the middle incremental. Loading the
  // remaining links must fail with the *distinct* broken-chain code —
  // not a generic error a restore script might retry or misreport.
  ASSERT_TRUE(env_.RemoveFile("c1/MANIFEST").ok());
  EXPECT_TRUE(BackupManager::LoadChain(&env_, {"c0", "c1", "c2"})
                  .status()
                  .IsBackupChainBroken());
  EXPECT_TRUE(BackupManager::LoadChain(&env_, {"c0", "c2"})
                  .status()
                  .IsBackupChainBroken());
  EXPECT_TRUE(BackupManager::RestoreChain(&env_, {{"c0", *full}, {"c2", *i2}},
                                          &env_, "elsewhere")
                  .IsBackupChainBroken());
  // A chain that skips the full backup is just as broken.
  EXPECT_TRUE(BackupManager::LoadChain(&env_, {"c2"})
                  .status()
                  .IsBackupChainBroken());
}

// ---------------------------------------------------------------------
// Degraded sharded opens: quarantine, serve-the-healthy, repair, rejoin.

class DegradedShardTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;

  ShardedVaultOptions Options(OpenMode mode) {
    ShardedVaultOptions options;
    options.env = &env_;
    options.dir = "sharded";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "degraded-test";
    options.num_shards = kShards;
    options.signer_height = 4;
    options.metrics = &registry_;
    options.ingest_threads = 1;
    options.open_mode = mode;
    return options;
  }

  // Opens strict, registers principals, writes one record per patient
  // (16 patients cover all four shards), syncs, and leaves the vault in
  // vault_.
  void BuildPopulatedVault() {
    auto opened = ShardedVault::Open(Options(OpenMode::kStrict));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    vault_ = std::move(*opened);
    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"aud-x", Role::kAuditor, "X"})
                    .ok());
    for (int p = 0; p < 16; ++p) {
      const std::string pat = Patient(p);
      ASSERT_TRUE(
          vault_->RegisterPrincipal("admin-r", {pat, Role::kPatient, pat})
              .ok());
      ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", pat).ok());
      auto id = vault_->CreateRecord("dr-a", pat, "text/plain",
                                     "note for " + pat, {"ward"}, "hipaa-6y");
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids_[pat] = *id;
    }
    ASSERT_TRUE(vault_->SyncAll().ok());
  }

  static std::string Patient(int p) { return "pat-" + std::to_string(p); }

  // Some patient routed to shard `k`.
  std::string PatientOnShard(uint32_t k) const {
    for (int p = 0; p < 16; ++p) {
      if (vault_->router().ShardOf(Patient(p)) == k) return Patient(p);
    }
    ADD_FAILURE() << "no patient on shard " << k;
    return "";
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  obs::MetricsRegistry registry_;
  std::unique_ptr<ShardedVault> vault_;
  std::map<std::string, RecordId> ids_;
};

TEST_F(DegradedShardTest, QuarantineMatrix) {
  BuildPopulatedVault();
  const uint32_t sick = vault_->router().ShardOf(Patient(0));
  const std::string sick_pat = Patient(0);
  const std::string sick_dir = vault_->ShardDirPath(sick);
  const uint32_t healthy = (sick + 1) % kShards;
  const std::string healthy_pat = PatientOnShard(healthy);
  vault_.reset();

  // Mid-log bit rot in the sick shard's state log: replay hits a
  // checksum mismatch, so a strict open of the whole vault fails.
  XorByte(&env_, sick_dir + "/state.log", /*offset=*/10);
  EXPECT_FALSE(ShardedVault::Open(Options(OpenMode::kStrict)).ok());

  // Degraded open quarantines the sick shard and serves the rest.
  auto opened = ShardedVault::Open(Options(OpenMode::kDegraded));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  vault_ = std::move(*opened);

  EXPECT_TRUE(vault_->IsQuarantined(sick));
  EXPECT_FALSE(vault_->QuarantineReason(sick).empty());
  EXPECT_EQ(vault_->QuarantinedShards(), std::vector<uint32_t>{sick});
  EXPECT_EQ(vault_->shard(sick), nullptr);

  // Routed operations against the quarantined shard fail fast with the
  // quarantine verdict; the same operations on healthy shards work.
  EXPECT_TRUE(vault_->ReadRecord("dr-a", ids_[sick_pat])
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(vault_
                  ->CreateRecord("dr-a", sick_pat, "text/plain", "more",
                                 {"ward"}, "hipaa-6y")
                  .status()
                  .IsFailedPrecondition());
  EXPECT_EQ(vault_->ReadRecord("dr-a", ids_[healthy_pat])->plaintext,
            "note for " + healthy_pat);

  // A batch touching the quarantined shard is refused up front — no
  // partial cross-shard ingest into a degraded vault.
  std::vector<Vault::NewRecord> batch(2);
  batch[0].patient_id = healthy_pat;
  batch[0].content_type = "text/plain";
  batch[0].plaintext = "batch a";
  batch[0].retention_policy = "hipaa-6y";
  batch[1].patient_id = sick_pat;
  batch[1].content_type = "text/plain";
  batch[1].plaintext = "batch b";
  batch[1].retention_policy = "hipaa-6y";
  EXPECT_TRUE(vault_->CreateRecordsBatch("dr-a", batch)
                  .status()
                  .IsFailedPrecondition());

  // Fan-outs skip the quarantined shard instead of failing: search
  // returns exactly the healthy shards' hits, audit still verifies.
  auto hits = vault_->SearchKeyword("dr-a", "ward");
  ASSERT_TRUE(hits.ok());
  for (const RecordId& id : *hits) {
    uint32_t shard_of = 0;
    ASSERT_TRUE(ShardRouter::ShardOfRecordId(id, &shard_of));
    EXPECT_NE(shard_of, sick);
  }
  size_t expected_hits = 0;
  for (int p = 0; p < 16; ++p) {
    if (vault_->router().ShardOf(Patient(p)) != sick) expected_hits++;
  }
  EXPECT_EQ(hits->size(), expected_hits);
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  EXPECT_TRUE(vault_->SyncAll().ok());

  // Quarantine is visible to operators: health report + gauge.
  obs::HealthReport health = obs::CollectHealth(*vault_);
  ASSERT_EQ(health.shards.size(), kShards);
  EXPECT_TRUE(health.shards[sick].quarantined);
  EXPECT_FALSE(health.shards[sick].quarantine_reason.empty());
  EXPECT_FALSE(health.shards[healthy].quarantined);
  EXPECT_EQ(registry_.GetGauge("sharded.quarantined")->Value(), 1);

  // Rejoining without repairing the media is refused.
  EXPECT_TRUE(vault_->RejoinShard(sick).IsFailedPrecondition());
  EXPECT_TRUE(vault_->IsQuarantined(sick));
  // Rejoining a healthy shard is a no-op.
  EXPECT_TRUE(vault_->RejoinShard(healthy).ok());
}

// The acceptance scenario end to end: one shard suffers media damage
// (a flipped segment byte plus state-log rot that makes it unopenable),
// the vault opens degraded and keeps serving, scrub pinpoints the
// damage, repair restores only those files from backup, the shard
// rejoins, and the whole vault verifies — with exactly one kRestore
// audit event and the scrub/repair counters in the health report.
TEST_F(DegradedShardTest, EndToEndScrubRepairRejoin) {
  BuildPopulatedVault();
  const uint32_t sick = vault_->router().ShardOf(Patient(0));
  const std::string sick_pat = Patient(0);
  const std::string sick_dir = vault_->ShardDirPath(sick);
  const std::string healthy_pat = PatientOnShard((sick + 1) % kShards);

  // Off-site backup of the soon-to-die shard, then close.
  auto backup = BackupManager::Backup(vault_->shard(sick), "admin-r", &env_,
                                      "bk-shard");
  ASSERT_TRUE(backup.ok()) << backup.status().ToString();
  vault_.reset();

  const std::string seg = FindSegment(&env_, sick_dir);
  XorByte(&env_, sick_dir + "/" + seg, /*offset=*/8 + 3);
  XorByte(&env_, sick_dir + "/state.log", /*offset=*/10);

  // Degraded open: healthy shards serve reads while the sick one is out.
  auto opened = ShardedVault::Open(Options(OpenMode::kDegraded));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  vault_ = std::move(*opened);
  ASSERT_TRUE(vault_->IsQuarantined(sick));
  EXPECT_EQ(vault_->ReadRecord("dr-a", ids_[healthy_pat])->plaintext,
            "note for " + healthy_pat);

  // Scrub pinpoints exactly the two damaged artifacts.
  auto report = vault_->ScrubShard(sick);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->structurally_clean());
  auto damaged = report->DamagedFiles();
  ASSERT_EQ(damaged.size(), 2u);
  EXPECT_NE(report->Find(seg), nullptr);
  EXPECT_EQ(report->Find(seg)->verdict, ScrubVerdict::kCorrupt);
  EXPECT_EQ(report->Find("state.log")->verdict, ScrubVerdict::kCorrupt);

  // Repair restores only those files from the backup chain...
  auto chain = BackupManager::LoadChain(&env_, {"bk-shard"});
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  auto summary =
      BackupManager::Repair(&env_, *chain, &env_, sick_dir, *report);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->restored.size(), 2u);
  EXPECT_TRUE(summary->unrepairable.empty());
  EXPECT_TRUE(summary->verified_clean);

  // ...after which the shard rejoins the live vault and serves again.
  ASSERT_TRUE(vault_->RejoinShard(sick).ok()) << vault_->QuarantineReason(sick);
  EXPECT_FALSE(vault_->IsQuarantined(sick));
  EXPECT_EQ(vault_->ReadRecord("dr-a", ids_[sick_pat])->plaintext,
            "note for " + sick_pat);
  EXPECT_TRUE(vault_->VerifyEverything().ok());

  // Exactly one kRestore event lands in the (merged) audit trail.
  ASSERT_TRUE(
      BackupManager::AuditRepair(vault_->shard(sick), "admin-r", *summary)
          .ok());
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  int restores = 0;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kRestore) restores++;
  }
  EXPECT_EQ(restores, 1);

  // A post-repair scrub of the rejoined (now healthy) shard runs the
  // full structural + deep pass and comes back clean.
  auto after = vault_->ScrubShard(sick);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->clean()) << after->Summary();

  // The episode is visible in the health report's counters and gauges.
  obs::HealthReport health = obs::CollectHealth(*vault_);
  EXPECT_EQ(health.metrics.counters.at("sharded.rejoined"), 1u);
  EXPECT_GE(health.metrics.counters.at("vault.scrub.runs"), 1u);
  EXPECT_EQ(health.metrics.gauges.at("sharded.quarantined"), 0);
  for (const obs::ShardHealth& s : health.shards) {
    EXPECT_FALSE(s.quarantined) << s.shard;
  }
  EXPECT_TRUE(health.shards[sick].has_last_scrub);
  EXPECT_TRUE(health.shards[sick].last_scrub_clean);
}

// ---------------------------------------------------------------------
// RetryEnv: bounded exponential backoff around transient I/O faults.

class RetryEnvTest : public ::testing::Test {
 protected:
  RetryEnvTest() : fault_(&mem_) {
    storage::RetryOptions options;
    options.sleeper = [this](uint64_t micros) { sleeps_.push_back(micros); };
    retry_ = std::make_unique<storage::RetryEnv>(&fault_, options, &registry_);
  }

  storage::MemEnv mem_;
  storage::FaultInjectionEnv fault_;
  obs::MetricsRegistry registry_;
  std::vector<uint64_t> sleeps_;
  std::unique_ptr<storage::RetryEnv> retry_;
};

TEST_F(RetryEnvTest, TransientReadFaultIsAbsorbed) {
  ASSERT_TRUE(
      storage::WriteStringToFile(&mem_, Slice("hello"), "f", false).ok());
  std::unique_ptr<storage::SequentialFile> file;
  ASSERT_TRUE(retry_->NewSequentialFile("f", &file).ok());

  fault_.FailNextReads(2);
  std::string out;
  EXPECT_TRUE(file->Read(5, &out).ok());
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(retry_->read_retry_counter()->Value(), 2u);
  EXPECT_EQ(retry_->exhausted_counter()->Value(), 0u);
  // Exponential backoff: 100us then 200us.
  EXPECT_EQ(sleeps_, (std::vector<uint64_t>{100, 200}));
  // The counters live in the shared registry, so any HealthReport built
  // from it shows retry pressure.
  EXPECT_EQ(registry_.GetCounter("env.retry.reads")->Value(), 2u);
}

TEST_F(RetryEnvTest, PersistentReadFaultExhaustsTheBudget) {
  ASSERT_TRUE(
      storage::WriteStringToFile(&mem_, Slice("hello"), "f", false).ok());
  std::unique_ptr<storage::SequentialFile> file;
  ASSERT_TRUE(retry_->NewSequentialFile("f", &file).ok());

  fault_.FailReads(true);  // dying media: every read fails
  std::string out;
  EXPECT_TRUE(file->Read(5, &out).IsIoError());
  // 4 attempts total: 3 retries, then the bound is hit and we give up.
  EXPECT_EQ(retry_->read_retry_counter()->Value(), 3u);
  EXPECT_EQ(retry_->exhausted_counter()->Value(), 1u);
  EXPECT_EQ(sleeps_, (std::vector<uint64_t>{100, 200, 400}));

  // The media recovers: the same handle works again, no state wedged.
  fault_.FailReads(false);
  EXPECT_TRUE(file->Read(5, &out).ok());
  EXPECT_EQ(out, "hello");
}

TEST_F(RetryEnvTest, TransientWriteAndSyncFaultsAreAbsorbed) {
  std::unique_ptr<storage::WritableFile> file;
  ASSERT_TRUE(retry_->NewWritableFile("w", &file).ok());

  fault_.FailNextWrites(1);
  EXPECT_TRUE(file->Append(Slice("payload")).ok());
  EXPECT_EQ(retry_->write_retry_counter()->Value(), 1u);

  fault_.FailNextSyncs(1);
  EXPECT_TRUE(file->Sync().ok());
  EXPECT_EQ(retry_->sync_retry_counter()->Value(), 1u);
  EXPECT_EQ(retry_->exhausted_counter()->Value(), 0u);

  // The retried append landed exactly once.
  std::string data;
  ASSERT_TRUE(storage::ReadFileToString(&mem_, "w", &data).ok());
  EXPECT_EQ(data, "payload");
}

TEST_F(RetryEnvTest, DeterministicVerdictsAreNotRetried) {
  std::unique_ptr<storage::SequentialFile> file;
  // NotFound is a verdict, not a blip: no retries, no sleeps.
  EXPECT_TRUE(retry_->NewSequentialFile("absent", &file).IsNotFound());
  EXPECT_TRUE(sleeps_.empty());
  EXPECT_EQ(retry_->exhausted_counter()->Value(), 0u);
}

}  // namespace
}  // namespace medvault::core
