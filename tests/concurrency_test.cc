// Concurrency tests: the Vault's reader/writer lock must keep
// concurrent clinical traffic linearizable — no torn records, no lost
// audit events, full verifiability afterwards — while actually letting
// read-only operations run in parallel (readers share the lock;
// mutations are exclusive).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/vault.h"
#include "storage/env.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "concurrency-entropy";
    options.signer_height = 6;
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok());
    vault_ = std::move(vault).value();

    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    for (int d = 0; d < 4; d++) {
      std::string dr = "dr-" + std::to_string(d);
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("admin-r",
                                          {dr, Role::kPhysician, dr})
                      .ok());
    }
    for (int p = 0; p < 4; p++) {
      std::string pat = "pat-" + std::to_string(p);
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("admin-r",
                                          {pat, Role::kPatient, pat})
                      .ok());
      ASSERT_TRUE(
          vault_->AssignCare("admin-r", "dr-" + std::to_string(p), pat)
              .ok());
    }
    ASSERT_TRUE(
        vault_
            ->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
            .ok());
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> vault_;
};

TEST_F(ConcurrencyTest, ParallelWritersProduceConsistentState) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<RecordId>> created(kThreads);

  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      std::string dr = "dr-" + std::to_string(t);
      std::string pat = "pat-" + std::to_string(t);
      for (int i = 0; i < kPerThread; i++) {
        auto id = vault_->CreateRecord(
            dr, pat, "text/plain",
            "thread " + std::to_string(t) + " note " + std::to_string(i),
            {"concurrent"}, "hipaa-6y");
        if (!id.ok()) {
          failures++;
          continue;
        }
        created[t].push_back(*id);
        clock_.Advance(kMicrosPerSecond);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // Every record landed exactly once with unique ids.
  std::set<RecordId> all;
  for (const auto& ids : created) {
    for (const RecordId& id : ids) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  // Everything readable, verifiable, and fully audited.
  for (int t = 0; t < kThreads; t++) {
    for (const RecordId& id : created[t]) {
      EXPECT_TRUE(vault_->ReadRecord("dr-" + std::to_string(t), id).ok())
          << id;
    }
  }
  EXPECT_TRUE(vault_->VerifyEverything().ok());
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  int creates = 0;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kCreate) creates++;
  }
  EXPECT_EQ(creates, kThreads * kPerThread);
}

TEST_F(ConcurrencyTest, MixedReadersWritersCorrectorsSearchers) {
  // Seed records.
  std::vector<RecordId> seeded;
  for (int t = 0; t < 4; t++) {
    auto id = vault_->CreateRecord("dr-" + std::to_string(t),
                                   "pat-" + std::to_string(t),
                                   "text/plain", "seed", {"mixed"},
                                   "hipaa-6y");
    ASSERT_TRUE(id.ok());
    seeded.push_back(*id);
  }

  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      std::string dr = "dr-" + std::to_string(t);
      for (int i = 0; i < 30; i++) {
        switch (i % 3) {
          case 0: {
            auto read = vault_->ReadRecord(dr, seeded[t]);
            if (!read.ok()) hard_failures++;
            break;
          }
          case 1: {
            auto corrected = vault_->CorrectRecord(
                dr, seeded[t], "correction " + std::to_string(i),
                "routine", {"mixed"});
            if (!corrected.ok()) hard_failures++;
            break;
          }
          case 2: {
            auto hits = vault_->SearchKeyword(dr, "mixed");
            if (!hits.ok()) hard_failures++;
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_TRUE(vault_->VerifyEverything().ok());

  // Each record's version chain is contiguous (10 corrections + seed).
  for (int t = 0; t < 4; t++) {
    auto history = vault_->RecordHistory("dr-" + std::to_string(t),
                                         seeded[t]);
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), 11u);
    for (size_t v = 0; v < history->size(); v++) {
      EXPECT_EQ((*history)[v].version, v + 1);
    }
  }
}

TEST_F(ConcurrencyTest, CheckpointsInterleaveWithTraffic) {
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread checkpointer([&] {
    for (int i = 0; i < 8; i++) {
      if (!vault_->CheckpointAudit().ok()) failures++;
    }
    stop = true;
  });
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      auto id = vault_->CreateRecord("dr-0", "pat-0", "text/plain",
                                     "note " + std::to_string(i++),
                                     {}, "hipaa-6y");
      if (!id.ok()) failures++;
    }
  });
  checkpointer.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

TEST_F(ConcurrencyTest, ReadersAndWriterLoseNoAuditEvents) {
  // One record per reader thread, then three readers hammer their own
  // record while a writer creates new ones. Every successful operation
  // must leave exactly one audit event — audit appends ride the shared
  // lock, so a lost entry here means the internal audit mutex is broken.
  std::vector<RecordId> seeded;
  for (int t = 1; t < 4; t++) {
    auto id = vault_->CreateRecord("dr-" + std::to_string(t),
                                   "pat-" + std::to_string(t),
                                   "text/plain", "seed", {}, "hipaa-6y");
    ASSERT_TRUE(id.ok());
    seeded.push_back(*id);
  }

  constexpr int kReadsPerThread = 40;
  constexpr int kWrites = 20;
  std::atomic<int> good_reads{0};
  std::atomic<int> good_creates{0};
  std::vector<std::thread> threads;
  for (int t = 1; t < 4; t++) {
    threads.emplace_back([&, t] {
      std::string dr = "dr-" + std::to_string(t);
      for (int i = 0; i < kReadsPerThread; i++) {
        if (vault_->ReadRecord(dr, seeded[t - 1]).ok()) good_reads++;
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kWrites; i++) {
      auto id = vault_->CreateRecord("dr-0", "pat-0", "text/plain",
                                     "note " + std::to_string(i), {},
                                     "hipaa-6y");
      if (id.ok()) good_creates++;
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(good_reads.load(), 3 * kReadsPerThread);
  EXPECT_EQ(good_creates.load(), kWrites);

  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  int reads = 0;
  int creates = 0;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kRead) reads++;
    if (e.action == AuditAction::kCreate) creates++;
  }
  EXPECT_EQ(reads, good_reads.load());
  EXPECT_EQ(creates, good_creates.load() + 3);  // + the seed records
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

// Env decorator that stalls every random-access read and tracks how many
// are stalled at once. Segment reads happen inside the Vault's
// shared-lock section, so two reads observed in flight together prove
// readers really run in parallel — under an exclusive lock the gauge
// could never exceed one.
class SlowReadEnv : public storage::Env {
 public:
  explicit SlowReadEnv(storage::Env* base) : base_(base) {}

  int max_in_flight() const { return max_in_flight_.load(); }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<storage::RandomAccessFile>* file) override {
    std::unique_ptr<storage::RandomAccessFile> inner;
    MEDVAULT_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &inner));
    *file = std::make_unique<SlowFile>(std::move(inner), this);
    return Status::OK();
  }

  Status NewSequentialFile(
      const std::string& fname,
      std::unique_ptr<storage::SequentialFile>* file) override {
    return base_->NewSequentialFile(fname, file);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<storage::WritableFile>* file)
      override {
    return base_->NewWritableFile(fname, file);
  }
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<storage::WritableFile>* file)
      override {
    return base_->NewAppendableFile(fname, file);
  }
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<storage::RandomRWFile>* file)
      override {
    return base_->NewRandomRWFile(fname, file);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override {
    return base_->UnsafeOverwrite(fname, offset, data);
  }
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override {
    return base_->UnsafeTruncate(fname, size);
  }

 private:
  class SlowFile : public storage::RandomAccessFile {
   public:
    SlowFile(std::unique_ptr<storage::RandomAccessFile> inner,
             SlowReadEnv* env)
        : inner_(std::move(inner)), env_(env) {}

    Status Read(uint64_t offset, size_t n,
                std::string* result) const override {
      int now = env_->in_flight_.fetch_add(1) + 1;
      int seen = env_->max_in_flight_.load();
      while (seen < now &&
             !env_->max_in_flight_.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      Status s = inner_->Read(offset, n, result);
      env_->in_flight_.fetch_sub(1);
      return s;
    }

   private:
    std::unique_ptr<storage::RandomAccessFile> inner_;
    SlowReadEnv* env_;
  };

  storage::Env* base_;
  std::atomic<int> in_flight_{0};
  std::atomic<int> max_in_flight_{0};
};

TEST(ParallelReadTest, ReadersOverlapInsideTheVault) {
  storage::MemEnv base;
  SlowReadEnv env(&base);
  ManualClock clock{1000000};
  VaultOptions options;
  options.env = &env;
  options.dir = "vault";
  options.clock = &clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "parallel-read-entropy";
  options.signer_height = 4;
  auto opened = Vault::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Vault> vault = std::move(opened).value();

  ASSERT_TRUE(
      vault->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
          .ok());
  ASSERT_TRUE(vault
                  ->RegisterPrincipal("admin-r",
                                      {"dr-a", Role::kPhysician, "Dr A"})
                  .ok());
  ASSERT_TRUE(vault
                  ->RegisterPrincipal("admin-r",
                                      {"pat-p", Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", "pat-p").ok());
  auto id = vault->CreateRecord("dr-a", "pat-p", "text/plain",
                                "shared read target", {}, "short-1y");
  ASSERT_TRUE(id.ok());

  constexpr int kThreads = 4;
  constexpr int kReadsPerThread = 6;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      ready++;
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kReadsPerThread; i++) {
        if (!vault->ReadRecord("dr-a", *id).ok()) failures++;
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go = true;
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // With every segment read stalled 5ms and four readers racing from a
  // common start signal, max-in-flight staying at 1 means the vault
  // serialized them.
  EXPECT_GE(env.max_in_flight(), 2);
}

}  // namespace
}  // namespace medvault::core
