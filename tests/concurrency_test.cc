// Concurrency tests: the Vault's coarse lock must keep concurrent
// clinical traffic linearizable — no torn records, no lost audit
// events, and full verifiability afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "concurrency-entropy";
    options.signer_height = 6;
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok());
    vault_ = std::move(vault).value();

    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    for (int d = 0; d < 4; d++) {
      std::string dr = "dr-" + std::to_string(d);
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("admin-r",
                                          {dr, Role::kPhysician, dr})
                      .ok());
    }
    for (int p = 0; p < 4; p++) {
      std::string pat = "pat-" + std::to_string(p);
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("admin-r",
                                          {pat, Role::kPatient, pat})
                      .ok());
      ASSERT_TRUE(
          vault_->AssignCare("admin-r", "dr-" + std::to_string(p), pat)
              .ok());
    }
    ASSERT_TRUE(
        vault_
            ->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
            .ok());
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> vault_;
};

TEST_F(ConcurrencyTest, ParallelWritersProduceConsistentState) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<RecordId>> created(kThreads);

  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      std::string dr = "dr-" + std::to_string(t);
      std::string pat = "pat-" + std::to_string(t);
      for (int i = 0; i < kPerThread; i++) {
        auto id = vault_->CreateRecord(
            dr, pat, "text/plain",
            "thread " + std::to_string(t) + " note " + std::to_string(i),
            {"concurrent"}, "hipaa-6y");
        if (!id.ok()) {
          failures++;
          continue;
        }
        created[t].push_back(*id);
        clock_.Advance(kMicrosPerSecond);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // Every record landed exactly once with unique ids.
  std::set<RecordId> all;
  for (const auto& ids : created) {
    for (const RecordId& id : ids) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  // Everything readable, verifiable, and fully audited.
  for (int t = 0; t < kThreads; t++) {
    for (const RecordId& id : created[t]) {
      EXPECT_TRUE(vault_->ReadRecord("dr-" + std::to_string(t), id).ok())
          << id;
    }
  }
  EXPECT_TRUE(vault_->VerifyEverything().ok());
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  int creates = 0;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kCreate) creates++;
  }
  EXPECT_EQ(creates, kThreads * kPerThread);
}

TEST_F(ConcurrencyTest, MixedReadersWritersCorrectorsSearchers) {
  // Seed records.
  std::vector<RecordId> seeded;
  for (int t = 0; t < 4; t++) {
    auto id = vault_->CreateRecord("dr-" + std::to_string(t),
                                   "pat-" + std::to_string(t),
                                   "text/plain", "seed", {"mixed"},
                                   "hipaa-6y");
    ASSERT_TRUE(id.ok());
    seeded.push_back(*id);
  }

  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      std::string dr = "dr-" + std::to_string(t);
      for (int i = 0; i < 30; i++) {
        switch (i % 3) {
          case 0: {
            auto read = vault_->ReadRecord(dr, seeded[t]);
            if (!read.ok()) hard_failures++;
            break;
          }
          case 1: {
            auto corrected = vault_->CorrectRecord(
                dr, seeded[t], "correction " + std::to_string(i),
                "routine", {"mixed"});
            if (!corrected.ok()) hard_failures++;
            break;
          }
          case 2: {
            auto hits = vault_->SearchKeyword(dr, "mixed");
            if (!hits.ok()) hard_failures++;
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_TRUE(vault_->VerifyEverything().ok());

  // Each record's version chain is contiguous (10 corrections + seed).
  for (int t = 0; t < 4; t++) {
    auto history = vault_->RecordHistory("dr-" + std::to_string(t),
                                         seeded[t]);
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), 11u);
    for (size_t v = 0; v < history->size(); v++) {
      EXPECT_EQ((*history)[v].version, v + 1);
    }
  }
}

TEST_F(ConcurrencyTest, CheckpointsInterleaveWithTraffic) {
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread checkpointer([&] {
    for (int i = 0; i < 8; i++) {
      if (!vault_->CheckpointAudit().ok()) failures++;
    }
    stop = true;
  });
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      auto id = vault_->CreateRecord("dr-0", "pat-0", "text/plain",
                                     "note " + std::to_string(i++),
                                     {}, "hipaa-6y");
      if (!id.ok()) failures++;
    }
  });
  checkpointer.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

}  // namespace
}  // namespace medvault::core
