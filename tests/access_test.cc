// Access-control tests: role policy matrix, treating-relationship
// scoping, break-glass semantics, minimum-necessary for admins.

#include <gtest/gtest.h>

#include "core/access.h"

namespace medvault::core {
namespace {

class AccessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ac_.RegisterPrincipal({"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(
        ac_.RegisterPrincipal({"nurse-n", Role::kNurse, "Nurse N"}).ok());
    ASSERT_TRUE(
        ac_.RegisterPrincipal({"clerk-c", Role::kClerk, "Clerk C"}).ok());
    ASSERT_TRUE(
        ac_.RegisterPrincipal({"aud-x", Role::kAuditor, "Auditor X"}).ok());
    ASSERT_TRUE(
        ac_.RegisterPrincipal({"pat-p", Role::kPatient, "Patient P"}).ok());
    ASSERT_TRUE(
        ac_.RegisterPrincipal({"pat-q", Role::kPatient, "Patient Q"}).ok());
    ASSERT_TRUE(
        ac_.RegisterPrincipal({"admin-r", Role::kAdmin, "Admin R"}).ok());
    ASSERT_TRUE(ac_.AssignCare("dr-a", "pat-p").ok());
    ASSERT_TRUE(ac_.AssignCare("nurse-n", "pat-p").ok());
  }

  Status Check(const std::string& actor, Operation op,
               const std::string& patient = "") {
    return ac_.CheckAccess(actor, op, patient, now_);
  }

  AccessController ac_;
  Timestamp now_ = 1000000;
};

TEST_F(AccessTest, RegistrationValidation) {
  EXPECT_TRUE(
      ac_.RegisterPrincipal({"", Role::kClerk, ""}).IsInvalidArgument());
  EXPECT_TRUE(ac_.RegisterPrincipal({"dr-a", Role::kClerk, "dup"})
                  .IsAlreadyExists());
  auto p = ac_.GetPrincipal("dr-a");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->role, Role::kPhysician);
  EXPECT_TRUE(ac_.GetPrincipal("ghost").status().IsNotFound());
}

TEST_F(AccessTest, UnknownActorIsNotFound) {
  EXPECT_TRUE(Check("ghost", Operation::kReadRecord, "pat-p").IsNotFound());
}

TEST_F(AccessTest, PhysicianScopedByCareRelation) {
  EXPECT_TRUE(Check("dr-a", Operation::kReadRecord, "pat-p").ok());
  EXPECT_TRUE(Check("dr-a", Operation::kCorrectRecord, "pat-p").ok());
  EXPECT_TRUE(Check("dr-a", Operation::kCreateRecord, "pat-p").ok());
  // Not their patient:
  EXPECT_TRUE(
      Check("dr-a", Operation::kReadRecord, "pat-q").IsPermissionDenied());
  EXPECT_TRUE(Check("dr-a", Operation::kCorrectRecord, "pat-q")
                  .IsPermissionDenied());
}

TEST_F(AccessTest, NurseReadsButDoesNotCorrect) {
  EXPECT_TRUE(Check("nurse-n", Operation::kReadRecord, "pat-p").ok());
  EXPECT_TRUE(Check("nurse-n", Operation::kCorrectRecord, "pat-p")
                  .IsPermissionDenied());
}

TEST_F(AccessTest, ClerkCreatesOnly) {
  EXPECT_TRUE(Check("clerk-c", Operation::kCreateRecord, "pat-q").ok());
  EXPECT_TRUE(
      Check("clerk-c", Operation::kReadRecord, "pat-q").IsPermissionDenied());
  EXPECT_TRUE(
      Check("clerk-c", Operation::kSearch).IsPermissionDenied());
}

TEST_F(AccessTest, PatientReadsOwnRecordsOnly) {
  EXPECT_TRUE(Check("pat-p", Operation::kReadRecord, "pat-p").ok());
  EXPECT_TRUE(
      Check("pat-p", Operation::kReadRecord, "pat-q").IsPermissionDenied());
  // Right to request amendment of own records:
  EXPECT_TRUE(Check("pat-p", Operation::kCorrectRecord, "pat-p").ok());
  EXPECT_TRUE(Check("pat-p", Operation::kCorrectRecord, "pat-q")
                  .IsPermissionDenied());
}

TEST_F(AccessTest, AuditorReadsTrailsNotRecords) {
  EXPECT_TRUE(Check("aud-x", Operation::kReadAudit).ok());
  EXPECT_TRUE(
      Check("aud-x", Operation::kReadRecord, "pat-p").IsPermissionDenied());
}

TEST_F(AccessTest, AdminMinimumNecessary) {
  // Admins run the system but may not read clinical content.
  EXPECT_TRUE(Check("admin-r", Operation::kDispose, "pat-p").ok());
  EXPECT_TRUE(Check("admin-r", Operation::kMigrate).ok());
  EXPECT_TRUE(Check("admin-r", Operation::kBackup).ok());
  EXPECT_TRUE(Check("admin-r", Operation::kManagePrincipals).ok());
  EXPECT_TRUE(Check("admin-r", Operation::kReadAudit).ok());
  EXPECT_TRUE(
      Check("admin-r", Operation::kReadRecord, "pat-p").IsPermissionDenied());
}

TEST_F(AccessTest, OnlyAdminsDisposeOrMigrate) {
  for (const char* actor : {"dr-a", "nurse-n", "clerk-c", "pat-p", "aud-x"}) {
    EXPECT_TRUE(Check(actor, Operation::kDispose, "pat-p")
                    .IsPermissionDenied())
        << actor;
    EXPECT_TRUE(Check(actor, Operation::kMigrate).IsPermissionDenied())
        << actor;
  }
}

TEST_F(AccessTest, CareRelationLifecycle) {
  EXPECT_FALSE(ac_.InCare("dr-a", "pat-q"));
  ASSERT_TRUE(ac_.AssignCare("dr-a", "pat-q").ok());
  EXPECT_TRUE(ac_.InCare("dr-a", "pat-q"));
  EXPECT_TRUE(Check("dr-a", Operation::kReadRecord, "pat-q").ok());
  ASSERT_TRUE(ac_.RevokeCare("dr-a", "pat-q").ok());
  EXPECT_TRUE(
      Check("dr-a", Operation::kReadRecord, "pat-q").IsPermissionDenied());
  EXPECT_TRUE(ac_.RevokeCare("dr-a", "pat-q").IsNotFound());
}

TEST_F(AccessTest, OnlyCliniciansGetCareRelations) {
  EXPECT_TRUE(ac_.AssignCare("clerk-c", "pat-p").IsInvalidArgument());
  EXPECT_TRUE(ac_.AssignCare("admin-r", "pat-p").IsInvalidArgument());
}

TEST_F(AccessTest, BreakGlassGrantsTemporaryAccess) {
  ASSERT_TRUE(
      Check("dr-a", Operation::kReadRecord, "pat-q").IsPermissionDenied());
  auto grant = ac_.BreakGlass("dr-a", "pat-q", "ER: patient unconscious",
                              now_, now_ + 3600 * kMicrosPerSecond);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(ac_.ActiveGrantCount(now_), 1u);
  EXPECT_TRUE(Check("dr-a", Operation::kReadRecord, "pat-q").ok());
  EXPECT_TRUE(Check("dr-a", Operation::kCreateRecord, "pat-q").ok());

  // Expiry ends the grant.
  now_ += 2 * 3600 * kMicrosPerSecond;
  EXPECT_TRUE(
      Check("dr-a", Operation::kReadRecord, "pat-q").IsPermissionDenied());
  EXPECT_EQ(ac_.ActiveGrantCount(now_), 0u);
}

TEST_F(AccessTest, BreakGlassRequiresJustificationAndClinician) {
  EXPECT_TRUE(ac_.BreakGlass("dr-a", "pat-q", "", now_, now_ + 1000)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ac_.BreakGlass("clerk-c", "pat-q", "why", now_, now_ + 1000)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(ac_.BreakGlass("dr-a", "pat-q", "why", now_, now_)
                  .status()
                  .IsInvalidArgument());  // already expired
}

TEST_F(AccessTest, BreakGlassDoesNotLeakToOtherClinicians) {
  ASSERT_TRUE(ac_.BreakGlass("dr-a", "pat-q", "ER", now_, now_ + 1000000)
                  .ok());
  EXPECT_TRUE(
      Check("nurse-n", Operation::kReadRecord, "pat-q").IsPermissionDenied());
}

TEST_F(AccessTest, BreakGlassExpiryBoundaryIsExclusive) {
  const Timestamp expires = now_ + 1000;
  ASSERT_TRUE(ac_.BreakGlass("dr-a", "pat-q", "ER", now_, expires).ok());
  // Active strictly before expiry...
  now_ = expires - 1;
  EXPECT_TRUE(Check("dr-a", Operation::kReadRecord, "pat-q").ok());
  EXPECT_EQ(ac_.ActiveGrantCount(now_), 1u);
  // ...refused at exactly expires_at. Pins `<` (never `<=`): a grant
  // exercised at its own expiry instant has already lapsed.
  now_ = expires;
  EXPECT_TRUE(
      Check("dr-a", Operation::kReadRecord, "pat-q").IsPermissionDenied());
  EXPECT_EQ(ac_.ActiveGrantCount(now_), 0u);
}

TEST_F(AccessTest, ConsentDelegatesReadOnlyWithNamedBasis) {
  ConsentRegistry consents;
  consents.Configure(std::string(32, 'K'), "cg");
  ac_.AttachConsentRegistry(&consents);
  // pat-q delegates to dr-a, who has no care relation with them.
  auto g = consents.Grant("pat-q", "dr-a", "", "second opinion", now_,
                          now_ + 1000);
  ASSERT_TRUE(g.ok());

  AccessBasis basis;
  ASSERT_TRUE(ac_.CheckAccess("dr-a", Operation::kReadRecord, "pat-q", "r-1",
                              now_, &basis)
                  .ok());
  EXPECT_EQ(basis.kind, AccessBasis::Kind::kConsent);
  EXPECT_EQ(basis.grant_id, g->grant_id);
  // Consent never authorizes writes.
  EXPECT_TRUE(ac_.CheckAccess("dr-a", Operation::kCorrectRecord, "pat-q",
                              "r-1", now_, nullptr)
                  .IsPermissionDenied());
  // Reads on a stronger basis are not attributed to the consent grant.
  basis = AccessBasis{};
  ASSERT_TRUE(ac_.CheckAccess("dr-a", Operation::kReadRecord, "pat-p", "r-2",
                              now_, &basis)
                  .ok());
  EXPECT_EQ(basis.kind, AccessBasis::Kind::kCare);
  // Same exclusive expiry boundary as break-glass.
  EXPECT_TRUE(ac_.CheckAccess("dr-a", Operation::kReadRecord, "pat-q", "r-1",
                              now_ + 999, nullptr)
                  .ok());
  EXPECT_TRUE(ac_.CheckAccess("dr-a", Operation::kReadRecord, "pat-q", "r-1",
                              now_ + 1000, nullptr)
                  .IsPermissionDenied());
}

TEST_F(AccessTest, DenialMessagesNameRoleAndOperation) {
  Status s = Check("clerk-c", Operation::kReadRecord, "pat-p");
  EXPECT_NE(s.message().find("clerk"), std::string::npos);
  EXPECT_NE(s.message().find("read-record"), std::string::npos);
}

}  // namespace
}  // namespace medvault::core
