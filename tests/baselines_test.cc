// Baseline store tests: shared behaviour through the RecordStore
// interface across all five models, plus each model's characteristic
// strengths and (faithful) weaknesses.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/encrypted_db_store.h"
#include "baselines/object_store.h"
#include "baselines/record_store.h"
#include "baselines/relational_store.h"
#include "baselines/vault_store.h"
#include "baselines/worm_store.h"
#include "sim/adversary.h"
#include "storage/mem_env.h"

namespace medvault::baselines {
namespace {

enum class Model { kRelational, kEncrypted, kObject, kWorm, kVault };

const char* ModelName(Model model) {
  switch (model) {
    case Model::kRelational: return "Relational";
    case Model::kEncrypted: return "Encrypted";
    case Model::kObject: return "Object";
    case Model::kWorm: return "Worm";
    case Model::kVault: return "Vault";
  }
  return "?";
}

class BaselineStoreTest : public ::testing::TestWithParam<Model> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case Model::kRelational:
        store_ = std::make_unique<RelationalStore>(&env_, "store");
        break;
      case Model::kEncrypted:
        store_ = std::make_unique<EncryptedDbStore>(&env_, "store",
                                                    std::string(32, 'D'));
        break;
      case Model::kObject:
        store_ = std::make_unique<ObjectStore>(&env_, "store");
        break;
      case Model::kWorm:
        store_ = std::make_unique<WormStore>(&env_, "store");
        break;
      case Model::kVault:
        store_ = std::make_unique<VaultStore>(&env_, "store", &clock_);
        break;
    }
    ASSERT_TRUE(store_->Open().ok());
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<RecordStore> store_;
};

TEST_P(BaselineStoreTest, PutGetRoundTrip) {
  auto id = store_->Put("clinical note content", {"note"});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto content = store_->Get(*id);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "clinical note content");
}

TEST_P(BaselineStoreTest, SearchFindsByKeyword) {
  auto id1 = store_->Put("record one", {"cancer", "oncology"});
  auto id2 = store_->Put("record two", {"diabetes"});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  auto hits = store_->Search("cancer");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], *id1);
  auto none = store_->Search("nonexistent");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_P(BaselineStoreTest, IntegrityVerifiesWhenClean) {
  ASSERT_TRUE(store_->Put("content", {"kw"}).ok());
  EXPECT_TRUE(store_->VerifyIntegrity().ok());
}

TEST_P(BaselineStoreTest, DataFilesExist) {
  ASSERT_TRUE(store_->Put("content", {"kw"}).ok());
  auto files = store_->DataFiles();
  EXPECT_FALSE(files.empty());
  for (const std::string& f : files) {
    EXPECT_TRUE(env_.FileExists(f)) << f;
  }
}

TEST_P(BaselineStoreTest, UpdateSemanticsMatchModel) {
  auto id = store_->Put("original", {"kw"});
  ASSERT_TRUE(id.ok());
  Status s = store_->Update(*id, "corrected", "fix");
  switch (GetParam()) {
    case Model::kRelational:
    case Model::kEncrypted:
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(*store_->Get(*id), "corrected");
      // But history is gone:
      EXPECT_TRUE(store_->GetVersion(*id, 1).status().IsNotSupported());
      break;
    case Model::kObject:
      EXPECT_TRUE(s.IsNotSupported());
      break;
    case Model::kWorm:
      EXPECT_TRUE(s.IsWormViolation());
      EXPECT_EQ(*store_->Get(*id), "original");
      break;
    case Model::kVault:
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(*store_->Get(*id), "corrected");
      // History preserved:
      EXPECT_EQ(*store_->GetVersion(*id, 1), "original");
      break;
  }
}

TEST_P(BaselineStoreTest, SecureDeleteSemanticsMatchModel) {
  auto id = store_->Put("delete me", {"kw"});
  ASSERT_TRUE(id.ok());
  if (GetParam() == Model::kVault) clock_.AdvanceYears(2);  // retention
  Status s = store_->SecureDelete(*id);
  if (GetParam() == Model::kWorm) {
    EXPECT_TRUE(s.IsWormViolation());
    EXPECT_TRUE(store_->Get(*id).ok());  // still there, by design
  } else {
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_FALSE(store_->Get(*id).ok());
  }
}

TEST_P(BaselineStoreTest, InsiderTamperDetectionMatchesModel) {
  // ~2KB of records, then the insider flips bytes in the data files.
  std::vector<std::string> ids;
  for (int i = 0; i < 8; i++) {
    auto id = store_->Put(std::string(256, 'a' + i), {"kw"});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  sim::InsiderAdversary insider(&env_, 42);
  auto applied = insider.TamperRandomBytes(store_->DataFiles(), 40);
  ASSERT_TRUE(applied.ok());
  ASSERT_GT(*applied, 0);

  Status verify = store_->VerifyIntegrity();
  bool reads_clean = true;
  for (const std::string& id : ids) {
    auto content = store_->Get(id);
    if (!content.ok() || content->find_first_not_of(
                             std::string(1, (*content)[0])) !=
                             std::string::npos) {
      // garbled or failed
    }
    if (!content.ok()) reads_clean = false;
  }

  switch (GetParam()) {
    case Model::kRelational:
    case Model::kEncrypted:
      // The paper's critique: tampering passes unnoticed (unless the
      // flips hit an index page checksum, reads just return garbage).
      // VerifyIntegrity has no cryptographic basis, so a "clean" result
      // after real tampering is the expected *failure mode*. We assert
      // only that it does not crash; the compliance matrix records the
      // MISSED detection.
      (void)reads_clean;
      break;
    case Model::kObject:
    case Model::kWorm:
    case Model::kVault:
      // These models must notice.
      EXPECT_FALSE(verify.ok()) << ModelName(GetParam())
                                << " missed the tampering";
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, BaselineStoreTest,
                         ::testing::Values(Model::kRelational,
                                           Model::kEncrypted, Model::kObject,
                                           Model::kWorm, Model::kVault),
                         [](const auto& info) {
                           return ModelName(info.param);
                         });

// ---- Model-specific behaviour ------------------------------------------------

TEST(RelationalStoreTest, PlaintextVisibleOnDisk) {
  storage::MemEnv env;
  RelationalStore store(&env, "db");
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Put("VISIBLESECRET", {"cancer"}).ok());
  sim::InsiderAdversary insider(&env, 1);
  EXPECT_TRUE(*insider.ScanForKeyword(store.DataFiles(), "VISIBLESECRET"));
  EXPECT_TRUE(*insider.ScanForKeyword(store.DataFiles(), "cancer"));
}

TEST(RelationalStoreTest, SilentCorruptionOnTamper) {
  storage::MemEnv env;
  RelationalStore store(&env, "db");
  ASSERT_TRUE(store.Open().ok());
  auto id = store.Put(std::string(128, 'a'), {});
  ASSERT_TRUE(id.ok());
  // Flip a content byte in the heap.
  ASSERT_TRUE(env.UnsafeOverwrite("db/heap.dat", 10, "Z").ok());
  auto content = store.Get(*id);
  ASSERT_TRUE(content.ok());        // read "succeeds"...
  EXPECT_NE(*content, std::string(128, 'a'));  // ...with wrong data
  EXPECT_TRUE(store.VerifyIntegrity().ok());   // ...and no alarm (§4)
}

TEST(RelationalStoreTest, PersistsAcrossReopen) {
  storage::MemEnv env;
  std::string id;
  {
    RelationalStore store(&env, "db");
    ASSERT_TRUE(store.Open().ok());
    auto r = store.Put("persist me", {"kw"});
    ASSERT_TRUE(r.ok());
    id = *r;
  }
  RelationalStore store(&env, "db");
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(*store.Get(id), "persist me");
  // Ids continue without collision.
  auto id2 = store.Put("another", {});
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id2, id);
}

TEST(EncryptedDbStoreTest, CiphertextAtRestButPlaintextIndex) {
  storage::MemEnv env;
  EncryptedDbStore store(&env, "db", std::string(32, 'D'));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Put("HIDDENSECRET", {"cancer"}).ok());
  sim::InsiderAdversary insider(&env, 1);
  // Record content is encrypted...
  EXPECT_FALSE(*insider.ScanForKeyword(store.DataFiles(), "HIDDENSECRET"));
  // ...but the keyword index leaks terms (the commercial shortcut).
  EXPECT_TRUE(*insider.ScanForKeyword(store.DataFiles(), "cancer"));
}

TEST(EncryptedDbStoreTest, TamperGarblesSilently) {
  storage::MemEnv env;
  EncryptedDbStore store(&env, "db", std::string(32, 'D'));
  ASSERT_TRUE(store.Open().ok());
  auto id = store.Put(std::string(64, 'p'), {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(env.UnsafeOverwrite("db/heap.dat", 12, "!").ok());
  auto content = store.Get(*id);
  ASSERT_TRUE(content.ok());  // CTR without MAC: no detection
  EXPECT_NE(*content, std::string(64, 'p'));
}

TEST(EncryptedDbStoreTest, UpdateReEncryptsWithNewGeneration) {
  storage::MemEnv env;
  EncryptedDbStore store(&env, "db", std::string(32, 'D'));
  ASSERT_TRUE(store.Open().ok());
  auto id = store.Put("generation zero", {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Update(*id, "generation one", "fix").ok());
  EXPECT_EQ(*store.Get(*id), "generation one");
  ASSERT_TRUE(store.Update(*id, "generation two", "fix").ok());
  EXPECT_EQ(*store.Get(*id), "generation two");
}

TEST(ObjectStoreTest, ContentAddressing) {
  storage::MemEnv env;
  ObjectStore store(&env, "objs");
  ASSERT_TRUE(store.Open().ok());
  auto id1 = store.Put("same content", {});
  auto id2 = store.Put("same content", {});
  auto id3 = store.Put("different", {});
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, *id2);  // dedup by hash
  EXPECT_NE(*id1, *id3);
}

TEST(ObjectStoreTest, DetectsTamperByRehashing) {
  storage::MemEnv env;
  ObjectStore store(&env, "objs");
  ASSERT_TRUE(store.Open().ok());
  auto id = store.Put("integrity assured", {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(env.UnsafeOverwrite("objs/obj-" + *id, 0, "X").ok());
  EXPECT_TRUE(store.VerifyIntegrity().IsTamperDetected());
}

TEST(WormStoreTest, RecordsSurviveAndVerify) {
  storage::MemEnv env;
  std::string id;
  {
    WormStore store(&env, "worm");
    ASSERT_TRUE(store.Open().ok());
    auto r = store.Put("permanent record", {"kw"});
    ASSERT_TRUE(r.ok());
    id = *r;
  }
  WormStore store(&env, "worm");
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(*store.Get(id), "permanent record");
  EXPECT_TRUE(store.VerifyIntegrity().ok());
}

TEST(WormStoreTest, GetDetectsTamper) {
  storage::MemEnv env;
  WormStore store(&env, "worm");
  ASSERT_TRUE(store.Open().ok());
  auto id = store.Put(std::string(100, 'w'), {});
  ASSERT_TRUE(id.ok());
  auto files = store.DataFiles();
  ASSERT_TRUE(env.UnsafeOverwrite(files[0], 20, "X").ok());
  EXPECT_TRUE(store.Get(*id).status().IsTamperDetected());
}

TEST(SmartAdversaryTest, CrcFixingTamperStillCaughtByHashesAndAead) {
  // An insider who knows the frame format rewrites a payload byte AND
  // fixes the CRC. Checksums alone are now silent; only cryptographic
  // commitments (WORM catalog hash, MedVault AEAD) catch it.
  {
    storage::MemEnv env;
    WormStore store(&env, "worm");
    ASSERT_TRUE(store.Open().ok());
    auto id = store.Put(std::string(100, 'w'), {});
    ASSERT_TRUE(id.ok());
    sim::InsiderAdversary insider(&env, 1);
    ASSERT_TRUE(insider
                    .SmartTamperSegmentEntry(store.DataFiles()[0], 0, 10,
                                             'X')
                    .ok());
    // The CRC now passes, so only the catalog's SHA-256 can notice:
    EXPECT_TRUE(store.Get(*id).status().IsTamperDetected());
    EXPECT_TRUE(store.VerifyIntegrity().IsTamperDetected());
  }
  {
    storage::MemEnv env;
    ManualClock clock(1000000);
    VaultStore store(&env, "store", &clock);
    ASSERT_TRUE(store.Open().ok());
    auto id = store.Put(std::string(100, 'm'), {});
    ASSERT_TRUE(id.ok());
    sim::InsiderAdversary insider(&env, 1);
    ASSERT_TRUE(insider
                    .SmartTamperSegmentEntry(store.DataFiles()[0], 0, 60,
                                             'X')
                    .ok());
    EXPECT_TRUE(store.VerifyIntegrity().IsTamperDetected());
    EXPECT_FALSE(store.Get(*id).ok());
  }
}

TEST(TokenizeKeywordsTest, SplitsAndNormalizes) {
  auto terms = TokenizeKeywords("Cancer, diabetes; ACUTE-onset x2!");
  ASSERT_EQ(terms.size(), 4u);
  EXPECT_EQ(terms[0], "cancer");
  EXPECT_EQ(terms[1], "diabetes");
  EXPECT_EQ(terms[2], "acute");
  EXPECT_EQ(terms[3], "onset");  // "x2" dropped (len < 3)
}

TEST(TokenizeKeywordsTest, RespectsMaxTerms) {
  auto terms = TokenizeKeywords("aaa bbb ccc ddd eee", 3);
  EXPECT_EQ(terms.size(), 3u);
}

}  // namespace
}  // namespace medvault::baselines
