// Secure index tests: blinded search, privacy of on-disk bytes, secure
// deletion of postings via crypto-shredding, persistence.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/keystore.h"
#include "core/secure_index.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class SecureIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keystore_ = std::make_unique<KeyStore>(&env_, "keys.db",
                                           std::string(32, 'M'), "seed");
    ASSERT_TRUE(keystore_->Open().ok());
    OpenIndex();
  }

  void OpenIndex() {
    index_ = std::make_unique<SecureIndex>(&env_, "index.log",
                                           std::string(32, 'I'),
                                           keystore_.get());
    ASSERT_TRUE(index_->Open().ok());
  }

  void AddRecord(const std::string& id,
                 const std::vector<std::string>& terms) {
    ASSERT_TRUE(keystore_->CreateKey(id).ok());
    ASSERT_TRUE(index_->AddPostings(id, terms).ok());
  }

  storage::MemEnv env_;
  std::unique_ptr<KeyStore> keystore_;
  std::unique_ptr<SecureIndex> index_;
};

TEST_F(SecureIndexTest, SearchFindsIndexedRecords) {
  AddRecord("r-1", {"cancer", "chemo"});
  AddRecord("r-2", {"diabetes"});
  AddRecord("r-3", {"cancer"});

  auto hits = index_->Search("cancer");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_NE(std::find(hits->begin(), hits->end(), "r-1"), hits->end());
  EXPECT_NE(std::find(hits->begin(), hits->end(), "r-3"), hits->end());

  hits = index_->Search("diabetes");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], "r-2");
}

TEST_F(SecureIndexTest, SearchIsCaseInsensitive) {
  AddRecord("r-1", {"Cancer"});
  auto hits = index_->Search("CANCER");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(SecureIndexTest, UnknownTermReturnsEmpty) {
  AddRecord("r-1", {"cancer"});
  auto hits = index_->Search("nonexistent");
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(SecureIndexTest, DuplicatePostingsDeduplicatedInResults) {
  AddRecord("r-1", {"cancer", "cancer"});
  ASSERT_TRUE(index_->AddPostings("r-1", {"cancer"}).ok());  // re-index
  auto hits = index_->Search("cancer");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(index_->TotalPostingCount(), 3u);
}

TEST_F(SecureIndexTest, RawIndexBytesLeakNoKeywordsOrIds) {
  AddRecord("r-1", {"cancer", "hiv", "oncology"});
  std::string raw;
  ASSERT_TRUE(storage::ReadFileToString(&env_, "index.log", &raw).ok());
  EXPECT_EQ(raw.find("cancer"), std::string::npos);
  EXPECT_EQ(raw.find("hiv"), std::string::npos);
  EXPECT_EQ(raw.find("oncology"), std::string::npos);
  EXPECT_EQ(raw.find("r-1"), std::string::npos);
}

TEST_F(SecureIndexTest, CryptoShreddingKillsPostings) {
  AddRecord("r-1", {"cancer"});
  AddRecord("r-2", {"cancer"});
  EXPECT_EQ(index_->LivePostingCount(), 2u);

  ASSERT_TRUE(keystore_->DestroyKey("r-1").ok());
  auto hits = index_->Search("cancer");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], "r-2");
  EXPECT_EQ(index_->LivePostingCount(), 1u);
  EXPECT_EQ(index_->DeadPostingCount(), 1u);
}

TEST_F(SecureIndexTest, AddPostingsRequiresLiveKey) {
  ASSERT_TRUE(keystore_->CreateKey("r-1").ok());
  ASSERT_TRUE(keystore_->DestroyKey("r-1").ok());
  EXPECT_TRUE(
      index_->AddPostings("r-1", {"term"}).IsKeyDestroyed());
  EXPECT_TRUE(index_->AddPostings("ghost", {"term"}).IsNotFound());
}

TEST_F(SecureIndexTest, PersistsAcrossReopen) {
  AddRecord("r-1", {"cancer", "chemo"});
  index_.reset();
  OpenIndex();
  auto hits = index_->Search("chemo");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], "r-1");
}

TEST_F(SecureIndexTest, ShreddingBeforeReopenStillKillsPostings) {
  AddRecord("r-1", {"cancer"});
  ASSERT_TRUE(keystore_->DestroyKey("r-1").ok());
  index_.reset();
  OpenIndex();
  auto hits = index_->Search("cancer");
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  EXPECT_EQ(index_->DeadPostingCount(), 1u);
}

TEST_F(SecureIndexTest, TermCountLeaksOnlyCardinality) {
  AddRecord("r-1", {"a1", "b2", "c3"});
  AddRecord("r-2", {"a1"});
  EXPECT_EQ(index_->TermCount(), 3u);
  EXPECT_EQ(index_->TotalPostingCount(), 4u);
}

TEST_F(SecureIndexTest, DifferentIndexMasterKeysAreDisjoint) {
  AddRecord("r-1", {"cancer"});
  // An index with a different blinding key cannot find the postings.
  SecureIndex other(&env_, "index.log", std::string(32, 'Z'),
                    keystore_.get());
  ASSERT_TRUE(other.Open().ok());
  auto hits = other.Search("cancer");
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

}  // namespace
}  // namespace medvault::core
