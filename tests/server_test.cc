// HTTP front-door tests: the REST surface must add *nothing* to the
// trust story — every endpoint rides the vault's own access control
// and audit (401 without a session, 403 from RBAC, the same audit
// events as the embedded API), admission control sheds overload with
// prompt 503s instead of hanging, and break-glass grants made over
// HTTP survive a server restart exactly like embedded ones (the
// state-log persistence bugfix, observed end to end).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_vault.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/mem_env.h"

namespace medvault::server {
namespace {

using core::Role;
using core::ShardedVault;
using core::ShardedVaultOptions;
using obs::json::Value;

constexpr char kSecret[] = "server-test-secret";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { OpenVault(); }

  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    vault_.reset();
  }

  ShardedVaultOptions VaultOpts() {
    ShardedVaultOptions options;
    options.env = &env_;
    options.dir = "served";
    options.clock = &clock_;
    options.master_key = std::string(32, 'S');
    options.entropy = "server-test-entropy";
    options.num_shards = 2;
    options.signer_height = 6;
    options.metrics = &registry_;
    return options;
  }

  void OpenVault() {
    auto opened = ShardedVault::Open(VaultOpts());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    vault_ = std::move(*opened);
  }

  void Bootstrap() {
    auto ok = [](const Status& s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
    };
    ok(vault_->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}));
    ok(vault_->RegisterPrincipal("admin", {"clerk", Role::kClerk, "C"}));
    ok(vault_->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}));
    ok(vault_->RegisterPrincipal("admin", {"dr2", Role::kPhysician, "E"}));
    ok(vault_->RegisterPrincipal("admin", {"aud", Role::kAuditor, "X"}));
    ok(vault_->RegisterPrincipal("admin", {"pat", Role::kPatient, "P"}));
    ok(vault_->RegisterPrincipal("admin", {"lone", Role::kPatient, "L"}));
    ok(vault_->AssignCare("admin", "dr", "pat"));
    // "lone" deliberately has NO treating clinician: reaching their
    // records requires break-glass.
    ok(vault_->SyncAll());
  }

  ServerOptions BaseServerOpts() {
    ServerOptions options;
    options.port = 0;  // ephemeral
    options.worker_threads = 3;
    options.api_secret = kSecret;
    options.session_entropy = "server-test-session-entropy";
    options.clock = &clock_;
    options.idle_timeout_micros = 10ull * 1000 * 1000;
    return options;
  }

  void StartServer(const ServerOptions& options) {
    auto started = MedVaultServer::Start(vault_.get(), options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(*started);
  }

  void StartServer() { StartServer(BaseServerOpts()); }

  /// Stops the server, closes and reopens the vault from the same
  /// MemEnv (state-log replay), and starts a fresh server on it —
  /// a full process restart as far as persistence is concerned.
  void RestartEverything() {
    server_->Stop();
    server_.reset();
    vault_.reset();
    OpenVault();
    StartServer();
  }

  static std::string Obj(std::initializer_list<
                         std::pair<std::string, Value>> fields) {
    Value::Object o;
    for (const auto& [k, v] : fields) o[k] = v;
    return Value(std::move(o)).Dump();
  }

  static Value Parsed(const ClientResponse& response) {
    auto v = Value::Parse(response.body);
    EXPECT_TRUE(v.ok()) << response.body;
    return v.ok() ? *v : Value();
  }

  std::string Login(HttpClient* client, const std::string& principal) {
    auto r = client->Do("POST", "/v1/login",
                        Obj({{"principal", Value(principal)},
                             {"secret", Value(kSecret)}}));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    EXPECT_EQ(r->status, 200) << r->body;
    Value v = Parsed(*r);
    return v.is_object() ? v.as_object().at("token").as_string() : "";
  }

  HttpClient MakeClient() {
    HttpClient client;
    EXPECT_TRUE(client.Connect(server_->port()).ok());
    return client;
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  obs::MetricsRegistry registry_;
  std::unique_ptr<ShardedVault> vault_;
  std::unique_ptr<MedVaultServer> server_;
};

TEST_F(ServerTest, AuthRequiredOnEveryEndpoint) {
  Bootstrap();
  StartServer();
  HttpClient client = MakeClient();

  struct Endpoint {
    const char* method;
    const char* target;
  };
  const Endpoint kProtected[] = {
      {"POST", "/v1/logout"},
      {"POST", "/v1/records"},
      {"GET", "/v1/records/s0-r-1"},
      {"POST", "/v1/records/s0-r-1/correct"},
      {"GET", "/v1/records/s0-r-1/history"},
      {"POST", "/v1/records/s0-r-1/dispose"},
      {"GET", "/v1/records/s0-r-1/audit"},
      {"POST", "/v1/search"},
      {"GET", "/v1/audit"},
      {"POST", "/v1/audit/checkpoint"},
      {"POST", "/v1/break-glass"},
      {"POST", "/v1/consent"},
      {"GET", "/v1/consent"},
      {"POST", "/v1/consent/revoke"},
  };
  for (const Endpoint& e : kProtected) {
    auto bare = client.Do(e.method, e.target, "{}");
    ASSERT_TRUE(bare.ok()) << bare.status().ToString();
    EXPECT_EQ(bare->status, 401) << e.method << " " << e.target;
    auto forged = client.Do(e.method, e.target, "{}", "not-a-real-token");
    ASSERT_TRUE(forged.ok());
    EXPECT_EQ(forged->status, 401) << e.method << " " << e.target;
  }

  // Health is the one deliberate exception (load balancers probe it).
  auto health = client.Do("GET", "/v1/health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_TRUE(Parsed(*health).is_object());

  // Wrong secret and unknown principal both fail identically.
  auto bad_secret = client.Do(
      "POST", "/v1/login",
      Obj({{"principal", Value("dr")}, {"secret", Value("nope")}}));
  ASSERT_TRUE(bad_secret.ok());
  EXPECT_EQ(bad_secret->status, 403);
  auto bad_user = client.Do(
      "POST", "/v1/login",
      Obj({{"principal", Value("ghost")}, {"secret", Value(kSecret)}}));
  ASSERT_TRUE(bad_user.ok());
  EXPECT_EQ(bad_user->status, 403);
}

TEST_F(ServerTest, RecordLifecycleOverHttp) {
  Bootstrap();
  StartServer();
  HttpClient client = MakeClient();
  const std::string dr = Login(&client, "dr");
  ASSERT_FALSE(dr.empty());

  // Create.
  auto created = client.Do(
      "POST", "/v1/records",
      Obj({{"patient_id", Value("pat")},
           {"content", Value("bp 120/80, routine visit")},
           {"keywords", Value(Value::Array{Value("bp"), Value("routine")})},
           {"retention_policy", Value("hipaa-6y")}}),
      dr);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created->status, 201) << created->body;
  const std::string id =
      Parsed(*created).as_object().at("record_id").as_string();

  // Read.
  auto read = client.Do("GET", "/v1/records/" + id, "", dr);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->status, 200) << read->body;
  Value body = Parsed(*read);
  EXPECT_EQ(body.as_object().at("content").as_string(),
            "bp 120/80, routine visit");
  EXPECT_EQ(body.as_object().at("version").as_uint(), 1u);

  // Correct, then read both versions.
  auto corrected = client.Do(
      "POST", "/v1/records/" + id + "/correct",
      Obj({{"content", Value("bp 130/85, transcription corrected")},
           {"reason", Value("transcription error")},
           {"keywords", Value(Value::Array{Value("bp")})}}),
      dr);
  ASSERT_TRUE(corrected.ok());
  ASSERT_EQ(corrected->status, 200) << corrected->body;
  EXPECT_EQ(Parsed(*corrected).as_object().at("version").as_uint(), 2u);

  auto v1 = client.Do("GET", "/v1/records/" + id + "?version=1", "", dr);
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ(v1->status, 200);
  EXPECT_EQ(Parsed(*v1).as_object().at("content").as_string(),
            "bp 120/80, routine visit");

  auto history = client.Do("GET", "/v1/records/" + id + "/history", "", dr);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->status, 200);
  EXPECT_EQ(Parsed(*history).as_object().at("versions").as_array().size(),
            2u);

  // Search.
  auto hits = client.Do("POST", "/v1/search",
                        Obj({{"terms", Value(Value::Array{Value("bp")})}}),
                        dr);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->status, 200);
  Value hit_body = Parsed(*hits);
  const Value::Array& ids = hit_body.as_object().at("record_ids").as_array();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0].as_string(), id);

  // RBAC through the server: a physician may not read audit trails or
  // dispose; the auditor reads the trail; disposal before retention
  // expiry is a 409 even for the admin.
  auto denied_audit = client.Do("GET", "/v1/audit", "", dr);
  ASSERT_TRUE(denied_audit.ok());
  EXPECT_EQ(denied_audit->status, 403);
  auto denied_dispose =
      client.Do("POST", "/v1/records/" + id + "/dispose", "", dr);
  ASSERT_TRUE(denied_dispose.ok());
  EXPECT_EQ(denied_dispose->status, 403);

  const std::string aud = Login(&client, "aud");
  auto trail = client.Do("GET", "/v1/records/" + id + "/audit", "", aud);
  ASSERT_TRUE(trail.ok());
  ASSERT_EQ(trail->status, 200);
  EXPECT_GE(Parsed(*trail).as_object().at("events").as_array().size(), 2u);

  const std::string admin = Login(&client, "admin");
  auto early = client.Do("POST", "/v1/records/" + id + "/dispose", "", admin);
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->status, 409) << early->body;  // retention violation

  // Missing records are 404, crypto-shredded ones 410.
  auto missing = client.Do("GET", "/v1/records/s0-r-999", "", dr);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  // Jumping past retention also jumps past the session TTL; all three
  // tokens are now dead and everyone logs in again.
  clock_.AdvanceYears(7);
  const std::string admin2 = Login(&client, "admin");
  const std::string dr2 = Login(&client, "dr");
  const std::string aud2 = Login(&client, "aud");
  auto disposed =
      client.Do("POST", "/v1/records/" + id + "/dispose", "", admin2);
  ASSERT_TRUE(disposed.ok());
  ASSERT_EQ(disposed->status, 200) << disposed->body;
  EXPECT_FALSE(
      Parsed(*disposed).as_object().at("signature").as_string().empty());
  auto shredded = client.Do("GET", "/v1/records/" + id, "", dr2);
  ASSERT_TRUE(shredded.ok());
  EXPECT_EQ(shredded->status, 410);

  // Checkpoint: auditor signs one checkpoint per shard.
  auto checkpoint = client.Do("POST", "/v1/audit/checkpoint", "", aud2);
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_EQ(checkpoint->status, 200) << checkpoint->body;
  EXPECT_EQ(
      Parsed(*checkpoint).as_object().at("checkpoints").as_array().size(),
      2u);

  // Logout kills the session.
  auto out = client.Do("POST", "/v1/logout", "", dr2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->status, 200);
  auto after = client.Do("GET", "/v1/records/" + id, "", dr2);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 401);
}

TEST_F(ServerTest, MalformedAndOversizedInputsRejected) {
  Bootstrap();
  StartServer();
  HttpClient client = MakeClient();
  const std::string dr = Login(&client, "dr");

  // Body that is not JSON at all, and JSON that is not an object.
  auto garbage = client.Do("POST", "/v1/search", "][not json", dr);
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400);
  auto scalar = client.Do("POST", "/v1/search", "42", dr);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar->status, 400);
  auto missing_field = client.Do("POST", "/v1/break-glass", "{}", dr);
  ASSERT_TRUE(missing_field.ok());
  EXPECT_EQ(missing_field->status, 400);

  // Unparsable request line -> 400 and the connection is closed.
  {
    HttpClient raw = MakeClient();
    ASSERT_TRUE(raw.SendRaw("THIS IS NOT HTTP\r\n\r\n").ok());
    auto r = raw.ReadResponse();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 400);
  }

  // Declared body over the cap -> 413 without buffering the body.
  {
    HttpClient raw = MakeClient();
    ASSERT_TRUE(raw.SendRaw("POST /v1/search HTTP/1.1\r\n"
                            "Content-Length: 99999999\r\n\r\n")
                    .ok());
    auto r = raw.ReadResponse();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 413);
  }

  // Header block over the cap -> 431.
  {
    HttpClient raw = MakeClient();
    std::string huge = "GET /v1/health HTTP/1.1\r\n";
    huge += "X-Filler: " + std::string(64 * 1024, 'x') + "\r\n\r\n";
    ASSERT_TRUE(raw.SendRaw(huge).ok());
    auto r = raw.ReadResponse();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 431);
  }

  // Unknown endpoint and wrong method map deterministically.
  auto nowhere = client.Do("GET", "/v2/nope", "", dr);
  ASSERT_TRUE(nowhere.ok());
  EXPECT_EQ(nowhere->status, 404);
  auto wrong_method = client.Do("GET", "/v1/search", "", dr);
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
}

TEST_F(ServerTest, OverloadShedsWith503InsteadOfHanging) {
  Bootstrap();
  ServerOptions options = BaseServerOpts();
  options.worker_threads = 1;     // one connection in service
  options.admission.max_queue = 1;  // one connection waiting
  StartServer(options);

  // Park connection A in the single worker: send half a request and
  // stop. The worker blocks reading the rest.
  HttpClient a = MakeClient();
  ASSERT_TRUE(a.SendRaw("GET /v1/health HTTP/1.1\r\nConnection: close\r\n")
                  .ok());
  // Let the worker dequeue A before filling the queue behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // B fills the one queue slot.
  HttpClient b = MakeClient();
  ASSERT_TRUE(b.SendRaw("GET /v1/health HTTP/1.1\r\nConnection: close\r\n")
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // C must be shed promptly by the acceptor — 503 with Retry-After,
  // not a hang behind the busy worker.
  HttpClient c = MakeClient();
  auto shed_start = std::chrono::steady_clock::now();
  auto shed = c.Do("GET", "/v1/health");
  auto shed_elapsed = std::chrono::steady_clock::now() - shed_start;
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 503);
  EXPECT_EQ(shed->headers.count("retry-after"), 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                shed_elapsed)
                .count(),
            2000);

  // Unblock A; both parked connections then complete normally.
  ASSERT_TRUE(a.SendRaw("\r\n").ok());
  auto ra = a.ReadResponse();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  EXPECT_EQ(ra->status, 200);
  ASSERT_TRUE(b.SendRaw("\r\n").ok());
  auto rb = b.ReadResponse();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(rb->status, 200);

  // The shed shows up in telemetry.
  auto snapshot = registry_.TakeSnapshot();
  EXPECT_GE(snapshot.counters["server.shed"], 1u);
  EXPECT_GE(snapshot.counters["server.accepted"], 2u);
}

TEST_F(ServerTest, BreakGlassAuditedOnceAndSurvivesRestart) {
  Bootstrap();
  // Seed a record for the unassigned patient (clerks may create).
  auto sealed = vault_->CreateRecord("clerk", "lone", "text/plain",
                                     "sealed emergency chart", {"sealed"},
                                     "hipaa-6y");
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  ASSERT_TRUE(vault_->SyncAll().ok());
  const std::string record_id = *sealed;
  StartServer();

  HttpClient client = MakeClient();
  std::string dr2 = Login(&client, "dr2");

  // Without a grant: denied (and the denial is itself audited).
  auto denied = client.Do("GET", "/v1/records/" + record_id, "", dr2);
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->status, 403);

  // Break glass over HTTP: two-hour emergency access.
  const int64_t duration = 2ll * 3600 * 1000 * 1000;
  auto grant = client.Do(
      "POST", "/v1/break-glass",
      Obj({{"patient_id", Value("lone")},
           {"justification", Value("unconscious in ER, no consent possible")},
           {"duration_micros", Value(duration)}}),
      dr2);
  ASSERT_TRUE(grant.ok()) << grant.status().ToString();
  ASSERT_EQ(grant->status, 200) << grant->body;
  const std::string grant_id =
      Parsed(*grant).as_object().at("grant_id").as_string();
  EXPECT_FALSE(grant_id.empty());

  // Exactly one kBreakGlass event in the merged audit trail.
  std::string aud = Login(&client, "aud");
  auto CountBreakGlass = [&](const std::string& token) {
    auto trail = client.Do("GET", "/v1/audit", "", token);
    EXPECT_TRUE(trail.ok());
    EXPECT_EQ(trail->status, 200);
    size_t n = 0;
    Value trail_body = Parsed(*trail);
    for (const Value& e : trail_body.as_object().at("events").as_array()) {
      if (e.as_object().at("action").as_string() == "break-glass") n++;
    }
    return n;
  };
  EXPECT_EQ(CountBreakGlass(aud), 1u);

  // The grant works...
  auto read = client.Do("GET", "/v1/records/" + record_id, "", dr2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->status, 200) << read->body;

  // ...and SURVIVES a full restart: this is the state-log persistence
  // fix observed end to end. Before it, the grant existed only in
  // memory — the audit trail claimed emergency access was active while
  // a crash had silently revoked it.
  RestartEverything();
  HttpClient client2 = MakeClient();
  dr2 = Login(&client2, "dr2");
  auto after = client2.Do("GET", "/v1/records/" + record_id, "", dr2);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200) << after->body;

  // Still exactly one break-glass audit event (replay must not re-audit
  // the grant), and exactly one active grant.
  client = std::move(client2);
  aud = Login(&client, "aud");
  EXPECT_EQ(CountBreakGlass(aud), 1u);
  size_t active = 0;
  for (uint32_t k = 0; k < vault_->num_shards(); ++k) {
    active += vault_->shard(k)->access()->ActiveGrantCount(clock_.Now());
  }
  EXPECT_EQ(active, 1u);

  // The restart preserved the ORIGINAL expiry: advance past it and the
  // emergency access lapses — and the grant table is pruned back to
  // empty (expired grants must not accumulate over a 30-year horizon).
  clock_.Advance(duration + 1);
  auto expired = client.Do("GET", "/v1/records/" + record_id, "",
                           Login(&client, "dr2"));
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->status, 403);
  active = 0;
  for (uint32_t k = 0; k < vault_->num_shards(); ++k) {
    active += vault_->shard(k)->access()->ActiveGrantCount(clock_.Now());
  }
  EXPECT_EQ(active, 0u);
}

TEST_F(ServerTest, ExpiredGrantsDoNotAccumulateAndIdsNeverRecycle) {
  Bootstrap();

  // Issue a pile of short grants directly against the vault, expire
  // them, and check the table actually shrinks (the pruning fix: the
  // old code only ever inserted).
  for (int i = 0; i < 8; ++i) {
    auto g = vault_->BreakGlass("dr2", "lone", "episode " + std::to_string(i),
                                1000000);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    clock_.Advance(2000000);  // each grant dies before the next
  }
  size_t active = 0;
  for (uint32_t k = 0; k < vault_->num_shards(); ++k) {
    active += vault_->shard(k)->access()->ActiveGrantCount(clock_.Now());
  }
  EXPECT_EQ(active, 0u);

  // Reopen: replay restores nothing (all expired) but must keep the id
  // counter ahead of every replayed grant — an id is never issued twice
  // even across restarts, or two different emergencies would be
  // indistinguishable in the audit record.
  ASSERT_TRUE(vault_->SyncAll().ok());
  vault_.reset();
  OpenVault();
  active = 0;
  for (uint32_t k = 0; k < vault_->num_shards(); ++k) {
    active += vault_->shard(k)->access()->ActiveGrantCount(clock_.Now());
  }
  EXPECT_EQ(active, 0u);
  auto fresh = vault_->BreakGlass("dr2", "lone", "fresh episode", 1000000);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(*fresh, "bg-9");  // 8 replayed ids stay burned
}

TEST_F(ServerTest, ConsentLifecycleOverHttpSurvivesRestart) {
  Bootstrap();
  // dr treats pat; dr2 has no care relation with pat at all.
  auto created = vault_->CreateRecord("dr", "pat", "text/plain",
                                      "shared consult notes", {"consult"},
                                      "hipaa-6y");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE(vault_->SyncAll().ok());
  const std::string record_id = *created;
  StartServer();

  HttpClient client = MakeClient();
  std::string dr2 = Login(&client, "dr2");
  const std::string pat = Login(&client, "pat");

  // Without consent: RBAC refuses the stranger.
  auto denied = client.Do("GET", "/v1/records/" + record_id, "", dr2);
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->status, 403);

  // Only the patient may delegate — the treating physician cannot
  // re-share the chart.
  const int64_t duration = 2ll * 3600 * 1000 * 1000;
  auto reshare = client.Do(
      "POST", "/v1/consent",
      Obj({{"grantee", Value("dr2")},
           {"record_id", Value(record_id)},
           {"purpose", Value("specialist referral")},
           {"duration_micros", Value(duration)}}),
      Login(&client, "dr"));
  ASSERT_TRUE(reshare.ok());
  EXPECT_EQ(reshare->status, 403) << reshare->body;

  // The patient grants a record-scoped consent: 201 with the grant id.
  auto granted = client.Do(
      "POST", "/v1/consent",
      Obj({{"grantee", Value("dr2")},
           {"record_id", Value(record_id)},
           {"purpose", Value("specialist referral")},
           {"duration_micros", Value(duration)}}),
      pat);
  ASSERT_TRUE(granted.ok()) << granted.status().ToString();
  ASSERT_EQ(granted->status, 201) << granted->body;
  Value grant_body = Parsed(*granted);
  const std::string g1 = grant_body.as_object().at("grant_id").as_string();
  EXPECT_FALSE(g1.empty());
  EXPECT_EQ(grant_body.as_object().at("scope").as_string(), "record");

  // The grantee now reads, and the patient sees the grant listed.
  auto read = client.Do("GET", "/v1/records/" + record_id, "", dr2);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->status, 200) << read->body;
  auto listed = client.Do("GET", "/v1/consent", "", pat);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->status, 200) << listed->body;
  {
    Value list_body = Parsed(*listed);
    const Value::Array& grants =
        list_body.as_object().at("grants").as_array();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].as_object().at("grant_id").as_string(), g1);
    EXPECT_EQ(grants[0].as_object().at("grantee").as_string(), "dr2");
  }

  // The consent read is attributed to its basis in the audit trail.
  const std::string aud = Login(&client, "aud");
  auto trail = client.Do("GET", "/v1/records/" + record_id + "/audit", "",
                         aud);
  ASSERT_TRUE(trail.ok());
  ASSERT_EQ(trail->status, 200);
  bool saw_consent_read = false;
  Value trail_body = Parsed(*trail);
  for (const Value& e : trail_body.as_object().at("events").as_array()) {
    if (e.as_object().at("actor").as_string() == "dr2" &&
        e.as_object().at("details").as_string().find("via=consent") !=
            std::string::npos) {
      saw_consent_read = true;
    }
  }
  EXPECT_TRUE(saw_consent_read);

  // Revocation over HTTP cuts access on the very next request.
  auto revoked = client.Do("POST", "/v1/consent/revoke",
                           Obj({{"grant_id", Value(g1)}}), pat);
  ASSERT_TRUE(revoked.ok());
  ASSERT_EQ(revoked->status, 200) << revoked->body;
  auto after_revoke = client.Do("GET", "/v1/records/" + record_id, "", dr2);
  ASSERT_TRUE(after_revoke.ok());
  EXPECT_EQ(after_revoke->status, 403);

  // A patient-wide grant re-opens the door (covers future records too).
  auto broad = client.Do(
      "POST", "/v1/consent",
      Obj({{"grantee", Value("dr2")},
           {"purpose", Value("care transfer")},
           {"duration_micros", Value(duration)}}),
      pat);
  ASSERT_TRUE(broad.ok());
  ASSERT_EQ(broad->status, 201) << broad->body;
  const std::string g2 =
      Parsed(*broad).as_object().at("grant_id").as_string();
  EXPECT_EQ(Parsed(*broad).as_object().at("scope").as_string(), "patient");

  // Restart: the surviving grant still works, the revocation still
  // holds, and the listing shows exactly the live grant.
  RestartEverything();
  HttpClient client2 = MakeClient();
  dr2 = Login(&client2, "dr2");
  auto after_restart =
      client2.Do("GET", "/v1/records/" + record_id, "", dr2);
  ASSERT_TRUE(after_restart.ok());
  EXPECT_EQ(after_restart->status, 200) << after_restart->body;
  auto relisted =
      client2.Do("GET", "/v1/consent", "", Login(&client2, "pat"));
  ASSERT_TRUE(relisted.ok());
  ASSERT_EQ(relisted->status, 200) << relisted->body;
  {
    Value relist_body = Parsed(*relisted);
    const Value::Array& grants =
        relist_body.as_object().at("grants").as_array();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].as_object().at("grant_id").as_string(), g2);
    EXPECT_EQ(grants[0].as_object().at("scope").as_string(), "patient");
  }

  // The restart preserved the original expiry: past it, access lapses.
  clock_.Advance(duration + 1);
  auto lapsed = client2.Do("GET", "/v1/records/" + record_id, "",
                           Login(&client2, "dr2"));
  ASSERT_TRUE(lapsed.ok());
  EXPECT_EQ(lapsed->status, 403);
}

TEST_F(ServerTest, SmuggledFramingRejectedBeforeDispatch) {
  Bootstrap();
  StartServer();

  // Two Content-Length headers, even agreeing ones: a front proxy and
  // this server could pick different copies, so the request never
  // reaches routing.
  {
    HttpClient raw = MakeClient();
    ASSERT_TRUE(raw.SendRaw("POST /v1/search HTTP/1.1\r\n"
                            "Content-Length: 5\r\n"
                            "Content-Length: 5\r\n\r\nhello")
                    .ok());
    auto r = raw.ReadResponse();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 400);
  }
  // Conflicting copies, same refusal.
  {
    HttpClient raw = MakeClient();
    ASSERT_TRUE(raw.SendRaw("POST /v1/search HTTP/1.1\r\n"
                            "Content-Length: 5\r\n"
                            "Content-Length: 6\r\n\r\nhello!")
                    .ok());
    auto r = raw.ReadResponse();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 400);
  }
  // Transfer-Encoding alongside Content-Length — the classic CL.TE /
  // TE.CL desync pair — is refused outright.
  {
    HttpClient raw = MakeClient();
    ASSERT_TRUE(raw.SendRaw("POST /v1/search HTTP/1.1\r\n"
                            "Transfer-Encoding: chunked\r\n"
                            "Content-Length: 5\r\n\r\nhello")
                    .ok());
    auto r = raw.ReadResponse();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 400);
  }
  {
    HttpClient raw = MakeClient();
    ASSERT_TRUE(raw.SendRaw("POST /v1/search HTTP/1.1\r\n"
                            "Content-Length: 5\r\n"
                            "Transfer-Encoding: chunked\r\n\r\nhello")
                    .ok());
    auto r = raw.ReadResponse();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 400);
  }

  // A single well-formed Content-Length still works on a fresh
  // connection — the hardening rejects duplicates, not bodies.
  HttpClient client = MakeClient();
  const std::string dr = Login(&client, "dr");
  auto fine = client.Do("POST", "/v1/search",
                        Obj({{"terms", Value(Value::Array{Value("x")})}}),
                        dr);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(fine->status, 200) << fine->body;
}

TEST_F(ServerTest, LogoutLeavesNoDistinguishableTrace) {
  Bootstrap();
  StartServer();
  HttpClient client = MakeClient();
  const std::string dr = Login(&client, "dr");

  // The token works, then logout invalidates it on the very next
  // request — no grace window.
  auto live = client.Do("GET", "/v1/health", "", dr);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->status, 200);
  auto out = client.Do("POST", "/v1/logout", "", dr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->status, 200);

  // A replayed logged-out token and a token the server never issued
  // must be indistinguishable: same status, same body, same challenge.
  auto replayed = client.Do("GET", "/v1/audit", "", dr);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->status, 401);
  auto forged = client.Do("GET", "/v1/audit", "",
                          "0123456789abcdef0123456789abcdef");
  ASSERT_TRUE(forged.ok());
  EXPECT_EQ(forged->status, 401);
  EXPECT_EQ(replayed->body, forged->body);
  EXPECT_EQ(replayed->headers.count("www-authenticate"),
            forged->headers.count("www-authenticate"));

  // Logging out twice does not reveal whether the token ever existed.
  auto relogout = client.Do("POST", "/v1/logout", "", dr);
  ASSERT_TRUE(relogout.ok());
  EXPECT_EQ(relogout->status, 401);
  EXPECT_EQ(relogout->body, forged->body);
}

TEST_F(ServerTest, KeepAliveServesPipelinedSequentialRequests) {
  Bootstrap();
  StartServer();
  HttpClient client = MakeClient();
  const std::string dr = Login(&client, "dr");
  // Several requests on one connection — all on the same socket, all
  // answered in order.
  for (int i = 0; i < 5; ++i) {
    auto health = client.Do("GET", "/v1/health", "", dr);
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_EQ(health->status, 200);
  }
  auto snapshot = registry_.TakeSnapshot();
  // One connection, many requests: request count outruns accepts.
  EXPECT_GE(snapshot.counters["server.requests"], 6u);
  auto hist = snapshot.histograms.find("server.req.health");
  ASSERT_NE(hist, snapshot.histograms.end());
  EXPECT_GE(hist->second.count, 5u);
}

}  // namespace
}  // namespace medvault::server
