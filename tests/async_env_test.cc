// Batch I/O contract tests: the completion-based SubmitWrites /
// SubmitSyncs API on the default (inline) backend, the AsyncEnv
// concurrent backend, and every decorator that must pass batches
// through with its own semantics intact — InstrumentedEnv (distinct
// batched counters), RetryEnv (transient faults absorbed inside a
// wave), FaultInjectionEnv (a power cut lands *between* coalesced
// completions, never inside one).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/async_env.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/instrumented_env.h"
#include "storage/mem_env.h"
#include "storage/posix_env.h"
#include "storage/retry_env.h"

namespace medvault::storage {
namespace {

std::string ReadAll(Env* env, const std::string& fname) {
  std::string data;
  Status s = ReadFileToString(env, fname, &data);
  EXPECT_TRUE(s.ok()) << fname << ": " << s.ToString();
  return data;
}

// ---------------------------------------------------------------------------
// BatchCompletion
// ---------------------------------------------------------------------------

TEST(BatchCompletionTest, AggregateReturnsFirstErrorInSlotOrder) {
  BatchCompletion done(3);
  done.Fulfill(2, Status::Corruption("slot two"));
  done.Fulfill(0, Status::OK());
  done.Fulfill(1, Status::IoError("slot one"));
  done.Wait();
  // Slot order, not fulfillment order: slot 1's error wins.
  EXPECT_TRUE(done.Aggregate().IsIoError()) << done.Aggregate().ToString();
  EXPECT_TRUE(done.status(0).ok());
  EXPECT_TRUE(done.status(1).IsIoError());
  EXPECT_TRUE(done.status(2).IsCorruption());
}

TEST(BatchCompletionTest, WaitBlocksUntilEverySlotFulfilled) {
  BatchCompletion done(2);
  std::atomic<bool> finished{false};
  std::thread waiter([&] {
    done.Wait();
    finished.store(true);
  });
  done.Fulfill(0, Status::OK());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(finished.load());
  done.Fulfill(1, Status::OK());
  waiter.join();
  EXPECT_TRUE(finished.load());
  EXPECT_TRUE(done.Aggregate().ok());
}

// ---------------------------------------------------------------------------
// Default (inline, sequential) backend — every Env gets this for free.
// ---------------------------------------------------------------------------

TEST(DefaultBatchTest, SubmitWritesAppendsInSlotOrder) {
  MemEnv env;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("f", &file).ok());

  std::vector<WriteRequest> requests(3);
  requests[0] = {file.get(), "one-"};
  requests[1] = {file.get(), "two-"};
  requests[2] = {file.get(), "three"};
  BatchCompletion done(requests.size());
  env.SubmitWrites(requests.data(), requests.size(), &done);
  done.Wait();
  ASSERT_TRUE(done.Aggregate().ok());
  ASSERT_TRUE(file->Close().ok());

  EXPECT_EQ(ReadAll(&env, "f"), "one-two-three");
}

TEST(DefaultBatchTest, SyncFilesBatchSkipsNullEntriesAndSyncs) {
  MemEnv env;
  env.SetCrashTrackingEnabled(true);
  std::unique_ptr<WritableFile> a, b;
  ASSERT_TRUE(env.NewWritableFile("a", &a).ok());
  ASSERT_TRUE(env.NewWritableFile("b", &b).ok());
  ASSERT_TRUE(a->Append(Slice("alpha")).ok());
  ASSERT_TRUE(b->Append(Slice("beta")).ok());

  std::vector<WritableFile*> wave = {a.get(), nullptr, b.get(), nullptr};
  ASSERT_TRUE(SyncFilesBatch(&env, wave).ok());

  // Both files survive a power cut that drops unsynced bytes — the
  // batch really was a durability barrier for each non-null entry.
  env.CrashAndRecover(CrashMode::kDropUnsynced);
  EXPECT_EQ(ReadAll(&env, "a"), "alpha");
  EXPECT_EQ(ReadAll(&env, "b"), "beta");
}

// ---------------------------------------------------------------------------
// AsyncEnv
// ---------------------------------------------------------------------------

TEST(AsyncEnvTest, BackendNameMatchesBuildConfiguration) {
  MemEnv base;
  AsyncEnv env(&base);
  if (AsyncEnv::IoUringCompiledIn()) {
    EXPECT_STREQ(env.backend_name(), "io_uring");
  } else {
    EXPECT_STREQ(env.backend_name(), "thread-pool");
  }
  AsyncEnv::Options no_uring;
  no_uring.try_io_uring = false;
  AsyncEnv fallback(&base, no_uring);
  EXPECT_STREQ(fallback.backend_name(), "thread-pool");
  EXPECT_GT(env.thread_count(), 0u);
}

TEST(AsyncEnvTest, ForwardsOrdinaryOpsToBase) {
  MemEnv base;
  AsyncEnv env(&base);
  ASSERT_TRUE(env.CreateDirIfMissing("d").ok());
  ASSERT_TRUE(WriteStringToFile(&env, Slice("payload"), "d/f", true).ok());
  EXPECT_TRUE(env.FileExists("d/f"));
  EXPECT_TRUE(base.FileExists("d/f"));  // same namespace: it decorates
  uint64_t size = 0;
  ASSERT_TRUE(env.GetFileSize("d/f", &size).ok());
  EXPECT_EQ(size, 7u);
  EXPECT_EQ(ReadAll(&env, "d/f"), "payload");
  ASSERT_TRUE(env.RenameFile("d/f", "d/g").ok());
  EXPECT_FALSE(env.FileExists("d/f"));
  ASSERT_TRUE(env.RemoveFile("d/g").ok());
}

TEST(AsyncEnvTest, PerFileWriteOrderPreservedAcrossConcurrentGroups) {
  MemEnv base;
  AsyncEnv env(&base);
  std::unique_ptr<WritableFile> a, b;
  ASSERT_TRUE(env.NewWritableFile("a", &a).ok());
  ASSERT_TRUE(env.NewWritableFile("b", &b).ok());

  // Interleave two files' requests in one batch: each file's slots must
  // land in slot order even though the two groups may run concurrently.
  std::vector<WriteRequest> requests(6);
  requests[0] = {a.get(), "a0."};
  requests[1] = {b.get(), "b0."};
  requests[2] = {a.get(), "a1."};
  requests[3] = {b.get(), "b1."};
  requests[4] = {a.get(), "a2"};
  requests[5] = {b.get(), "b2"};
  BatchCompletion done(requests.size());
  env.SubmitWrites(requests.data(), requests.size(), &done);
  done.Wait();
  ASSERT_TRUE(done.Aggregate().ok());
  ASSERT_TRUE(a->Close().ok());
  ASSERT_TRUE(b->Close().ok());

  EXPECT_EQ(ReadAll(&env, "a"), "a0.a1.a2");
  EXPECT_EQ(ReadAll(&env, "b"), "b0.b1.b2");
}

// The point of the whole exercise: one wave of N syncs must overlap, not
// queue. Each probe file's Sync blocks until `kWave` syncs have entered;
// a sequential backend would run them one at a time and every entrant
// would time out waiting for the rest. Bounded waits make a regression a
// clean failure, not a hang.
class RendezvousSync {
 public:
  explicit RendezvousSync(size_t wave) : wave_(wave) {}

  Status Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (++entered_ >= wave_) {
      cv_.notify_all();
      return Status::OK();
    }
    if (!cv_.wait_for(lock, std::chrono::seconds(10),
                      [&] { return entered_ >= wave_; })) {
      return Status::IoError("sync wave never became concurrent");
    }
    return Status::OK();
  }

 private:
  const size_t wave_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t entered_ = 0;
};

class ProbeFile : public WritableFile {
 public:
  explicit ProbeFile(RendezvousSync* rendezvous) : rendezvous_(rendezvous) {}
  Status Append(const Slice&) override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return rendezvous_->Enter(); }
  Status Close() override { return Status::OK(); }

 private:
  RendezvousSync* rendezvous_;
};

TEST(AsyncEnvTest, SyncWaveRunsConcurrently) {
  constexpr size_t kWave = 4;
  MemEnv base;
  AsyncEnv::Options options;
  options.threads = kWave;
  AsyncEnv env(&base, options);

  RendezvousSync rendezvous(kWave);
  std::vector<std::unique_ptr<ProbeFile>> probes;
  std::vector<WritableFile*> wave;
  for (size_t i = 0; i < kWave; i++) {
    probes.push_back(std::make_unique<ProbeFile>(&rendezvous));
    wave.push_back(probes.back().get());
  }
  Status s = SyncFilesBatch(&env, wave);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(AsyncEnvTest, OverlappedSyncLatencyBeatsSequential) {
  // Wall-clock cross-check of the rendezvous test, on the real MemEnv
  // path: four 30ms simulated-media syncs in one wave must finish well
  // under the 120ms a sequential backend needs. The bound (3x one
  // sync) is loose enough for a noisy CI box.
  constexpr uint64_t kDelayMicros = 30000;
  MemEnv base;
  base.SetSyncDelayMicros(kDelayMicros);
  AsyncEnv::Options options;
  options.threads = 4;
  AsyncEnv env(&base, options);

  std::vector<std::unique_ptr<WritableFile>> files(4);
  std::vector<WritableFile*> wave;
  for (size_t i = 0; i < files.size(); i++) {
    ASSERT_TRUE(env.NewWritableFile("f" + std::to_string(i), &files[i]).ok());
    ASSERT_TRUE(files[i]->Append(Slice("x")).ok());
    wave.push_back(files[i].get());
  }

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(SyncFilesBatch(&env, wave).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), static_cast<int64_t>(3 * kDelayMicros))
      << "sync wave did not overlap";
}

TEST(AsyncEnvTest, BatchErrorsSurfaceInTheRightSlot) {
  MemEnv base;
  AsyncEnv env(&base);
  std::unique_ptr<WritableFile> good;
  ASSERT_TRUE(env.NewWritableFile("good", &good).ok());
  ASSERT_TRUE(good->Append(Slice("fine")).ok());

  RendezvousSync rendezvous(1);
  ProbeFile ok_probe(&rendezvous);
  class FailingFile : public WritableFile {
   public:
    Status Append(const Slice&) override { return Status::OK(); }
    Status Flush() override { return Status::OK(); }
    Status Sync() override { return Status::IoError("dead platter"); }
    Status Close() override { return Status::OK(); }
  } failing;

  WritableFile* wave[3] = {good.get(), &failing, &ok_probe};
  BatchCompletion done(3);
  env.SubmitSyncs(wave, 3, &done);
  done.Wait();
  EXPECT_TRUE(done.status(0).ok());
  EXPECT_TRUE(done.status(1).IsIoError());
  EXPECT_TRUE(done.status(2).ok());
  EXPECT_TRUE(done.Aggregate().IsIoError());
}

// ---------------------------------------------------------------------------
// Decorator pass-through
// ---------------------------------------------------------------------------

TEST(InstrumentedBatchTest, BatchedSyncsCountedDistinctlyNotDoubly) {
  MemEnv base;
  IoStats stats;
  InstrumentedEnv env(&base, &stats);
  std::unique_ptr<WritableFile> a, b;
  ASSERT_TRUE(env.NewWritableFile("a", &a).ok());
  ASSERT_TRUE(env.NewWritableFile("b", &b).ok());
  ASSERT_TRUE(a->Append(Slice("a")).ok());
  ASSERT_TRUE(b->Append(Slice("b")).ok());

  std::vector<WritableFile*> wave = {a.get(), b.get()};
  ASSERT_TRUE(SyncFilesBatch(&env, wave).ok());

  IoStatsSnapshot snap = stats.TakeSnapshot();
  // Each barrier is one sync (the file wrappers count per-op as usual)
  // AND one batched sync (the batch API tallies the submission) — the
  // two series stay separable without double-counting either.
  EXPECT_EQ(snap.syncs, 2u);
  EXPECT_EQ(snap.batched_syncs, 2u);

  std::vector<WriteRequest> requests(2);
  requests[0] = {a.get(), "more"};
  requests[1] = {b.get(), "more"};
  BatchCompletion done(2);
  env.SubmitWrites(requests.data(), 2, &done);
  done.Wait();
  ASSERT_TRUE(done.Aggregate().ok());
  snap = stats.TakeSnapshot();
  EXPECT_EQ(snap.batched_writes, 2u);
  EXPECT_EQ(snap.writes, 4u);  // 2 setup appends + 2 batched appends
}

TEST(RetryBatchTest, TransientSyncFaultInsideWaveIsAbsorbed) {
  MemEnv mem;
  FaultInjectionEnv fault(&mem);
  obs::MetricsRegistry metrics;
  RetryOptions retry_options;
  retry_options.sleeper = [](uint64_t) {};  // instant retries
  RetryEnv env(&fault, retry_options, &metrics);

  std::unique_ptr<WritableFile> a, b;
  ASSERT_TRUE(env.NewWritableFile("a", &a).ok());
  ASSERT_TRUE(env.NewWritableFile("b", &b).ok());
  ASSERT_TRUE(a->Append(Slice("a")).ok());
  ASSERT_TRUE(b->Append(Slice("b")).ok());

  // One transient sync fault somewhere in the wave: the retrying file
  // wrapper absorbs it, so the batch as a whole still succeeds.
  fault.FailNextSyncs(1);
  std::vector<WritableFile*> wave = {a.get(), b.get()};
  ASSERT_TRUE(SyncFilesBatch(&env, wave).ok());
  EXPECT_EQ(metrics.GetCounter("env.retry.syncs")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("env.retry.exhausted")->Value(), 0u);
}

TEST(FaultBatchTest, PowerCutLandsBetweenCoalescedCompletions) {
  // The batch API on FaultInjectionEnv must keep every coalesced
  // completion an individually numbered crash boundary: a planned
  // crash mid-batch persists the slots before the boundary and drops
  // the slots after it — never a torn half-batch.
  MemEnv mem;
  mem.SetCrashTrackingEnabled(true);
  FaultInjectionEnv fault(&mem);

  std::unique_ptr<WritableFile> a, b;
  ASSERT_TRUE(fault.NewWritableFile("a", &a).ok());
  ASSERT_TRUE(fault.NewWritableFile("b", &b).ok());
  ASSERT_TRUE(a->Append(Slice("alpha")).ok());  // boundary 0
  ASSERT_TRUE(b->Append(Slice("beta")).ok());   // boundary 1

  // Batched sync of both: boundaries 2 (a) and 3 (b). Cut power at 3 —
  // a's barrier completed, b's never did.
  fault.PlanCrash(3);
  std::vector<WritableFile*> wave = {a.get(), b.get()};
  BatchCompletion done(2);
  fault.SubmitSyncs(wave.data(), 2, &done);
  done.Wait();
  EXPECT_TRUE(done.status(0).ok());
  EXPECT_TRUE(done.status(1).IsIoError());
  EXPECT_TRUE(fault.crashed());

  mem.CrashAndRecover(CrashMode::kDropUnsynced);
  EXPECT_EQ(ReadAll(&mem, "a"), "alpha");
  std::string b_data;
  Status read_b = ReadFileToString(&mem, "b", &b_data);
  EXPECT_TRUE(!read_b.ok() || b_data.empty())
      << "unsynced slot survived the cut: \"" << b_data << "\"";
}

// ---------------------------------------------------------------------------
// File descriptors
// ---------------------------------------------------------------------------

TEST(FileDescriptorTest, PosixExposesMemAndDecoratorsHide) {
  char tmpl[] = "/tmp/medvault-async-env-XXXXXX";
  std::string dir = mkdtemp(tmpl);

  std::unique_ptr<WritableFile> posix_file;
  ASSERT_TRUE(
      PosixEnv::Default()->NewWritableFile(dir + "/f", &posix_file).ok());
  EXPECT_GE(posix_file->FileDescriptor(), 0);
  ASSERT_TRUE(posix_file->Close().ok());
  ASSERT_TRUE(PosixEnv::Default()->RemoveFile(dir + "/f").ok());
  rmdir(dir.c_str());

  MemEnv mem;
  std::unique_ptr<WritableFile> mem_file;
  ASSERT_TRUE(mem.NewWritableFile("m", &mem_file).ok());
  EXPECT_EQ(mem_file->FileDescriptor(), -1);

  // Decorators deliberately do not forward the descriptor: a wrapped
  // file must take the portable path so interposition is preserved.
  IoStats stats;
  InstrumentedEnv instrumented(PosixEnv::Default(), &stats);
  char tmpl2[] = "/tmp/medvault-async-env-XXXXXX";
  std::string dir2 = mkdtemp(tmpl2);
  std::unique_ptr<WritableFile> wrapped;
  ASSERT_TRUE(instrumented.NewWritableFile(dir2 + "/g", &wrapped).ok());
  EXPECT_EQ(wrapped->FileDescriptor(), -1);
  ASSERT_TRUE(wrapped->Close().ok());
  ASSERT_TRUE(instrumented.RemoveFile(dir2 + "/g").ok());
  rmdir(dir2.c_str());
}

}  // namespace
}  // namespace medvault::storage
