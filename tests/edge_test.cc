// Edge-case sweeps: exhaustive log-truncation behaviour, and negative
// paths of the Vault API not exercised elsewhere.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/vault.h"
#include "storage/log_reader.h"
#include "storage/log_writer.h"
#include "storage/mem_env.h"

namespace medvault {
namespace {

// ---- Exhaustive truncation sweep ------------------------------------------
//
// For EVERY possible truncation point of a log file, the reader must
// (a) never crash, (b) never emit a record that wasn't written, and
// (c) yield a strict prefix of the written records (torn tails drop).

TEST(LogTruncationSweep, EveryPrefixIsSafe) {
  storage::MemEnv env;
  std::vector<std::string> written;
  {
    std::unique_ptr<storage::WritableFile> file;
    ASSERT_TRUE(env.NewWritableFile("log", &file).ok());
    storage::log::Writer writer(std::move(file));
    for (int i = 0; i < 6; i++) {
      std::string record = "record-" + std::to_string(i) +
                           std::string(40 + i * 13, 'a' + i);
      written.push_back(record);
      ASSERT_TRUE(writer.AddRecord(record).ok());
    }
  }
  uint64_t full_size = 0;
  ASSERT_TRUE(env.GetFileSize("log", &full_size).ok());
  std::string full;
  ASSERT_TRUE(storage::ReadFileToString(&env, "log", &full).ok());

  for (uint64_t cut = 0; cut <= full_size; cut++) {
    ASSERT_TRUE(storage::WriteStringToFile(&env, full.substr(0, cut),
                                           "log-cut", false)
                    .ok());
    std::unique_ptr<storage::SequentialFile> src;
    ASSERT_TRUE(env.NewSequentialFile("log-cut", &src).ok());
    storage::log::Reader reader(std::move(src));
    std::string record;
    size_t count = 0;
    while (reader.ReadRecord(&record)) {
      ASSERT_LT(count, written.size()) << "cut=" << cut;
      EXPECT_EQ(record, written[count]) << "cut=" << cut;
      count++;
    }
    // Truncation (prefix of valid bytes) must read as clean EOF — the
    // reader cannot distinguish a torn tail from a crash, by design.
    EXPECT_TRUE(reader.status().ok()) << "cut=" << cut << ": "
                                      << reader.status().ToString();
    EXPECT_LE(count, written.size());
  }
}

// ---- Vault negative paths ------------------------------------------------

class VaultEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "edge-entropy";
    options.signer_height = 4;
    auto vault = core::Vault::Open(options);
    ASSERT_TRUE(vault.ok());
    vault_ = std::move(vault).value();
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal(
                        "boot", {"admin-r", core::Role::kAdmin, "Root"})
                    .ok());
    ASSERT_TRUE(
        vault_
            ->RegisterPrincipal(
                "admin-r", {"dr-a", core::Role::kPhysician, "Dr A"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal(
                        "admin-r", {"pat-p", core::Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<core::Vault> vault_;
};

TEST_F(VaultEdgeTest, UnknownRecordEverywhere) {
  EXPECT_TRUE(vault_->ReadRecord("dr-a", "r-999").status().IsNotFound());
  EXPECT_TRUE(
      vault_->RecordHistory("dr-a", "r-999").status().IsNotFound());
  EXPECT_TRUE(
      vault_->DisposeRecord("admin-r", "r-999").status().IsNotFound());
  EXPECT_TRUE(vault_->GetRecordMeta("r-999").status().IsNotFound());
  EXPECT_TRUE(vault_->PlaceLegalHold("admin-r", "r-999", "x").IsNotFound());
  EXPECT_TRUE(vault_->VerifyRecord("r-999").IsNotFound());
}

TEST_F(VaultEdgeTest, RotateMasterKeyGuarded) {
  EXPECT_TRUE(vault_->RotateMasterKey("dr-a", std::string(32, 'N'))
                  .IsPermissionDenied());
  EXPECT_TRUE(
      vault_->RotateMasterKey("admin-r", "short").IsInvalidArgument());
  EXPECT_TRUE(vault_->RotateMasterKey("admin-r", std::string(32, 'N')).ok());
}

TEST_F(VaultEdgeTest, CorrectingDisposedRecordRefused) {
  auto id = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "x", {},
                                 "short-1y");
  ASSERT_TRUE(id.ok());
  clock_.AdvanceYears(2);
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *id).ok());
  EXPECT_TRUE(vault_->CorrectRecord("dr-a", *id, "y", "fix", {})
                  .status()
                  .IsKeyDestroyed());
}

TEST_F(VaultEdgeTest, EmptyContentAndManyKeywords) {
  std::vector<std::string> keywords;
  for (int i = 0; i < 50; i++) keywords.push_back("kw" + std::to_string(i));
  auto id = vault_->CreateRecord("dr-a", "pat-p", "text/plain", Slice(),
                                 keywords, "hipaa-6y");
  ASSERT_TRUE(id.ok());
  auto read = vault_->ReadRecord("dr-a", *id);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->plaintext.empty());
  auto hits = vault_->SearchKeyword("dr-a", "kw49");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(VaultEdgeTest, LargeRecordRoundTrip) {
  std::string big(2 * 1024 * 1024, 'L');  // spans multiple segments
  auto id = vault_->CreateRecord("dr-a", "pat-p", "application/dicom",
                                 big, {"imaging"}, "hipaa-6y");
  ASSERT_TRUE(id.ok());
  auto read = vault_->ReadRecord("dr-a", *id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->plaintext, big);
  EXPECT_TRUE(vault_->VerifyRecord(*id).ok());
}

TEST_F(VaultEdgeTest, BreakGlassForUnknownPrincipals) {
  EXPECT_TRUE(vault_->BreakGlass("ghost", "pat-p", "why", 1000)
                  .status()
                  .IsNotFound());
  // Unknown patient: grant is creatable (patients may not be registered
  // yet in an emergency) but gives access to nothing that exists.
  auto grant = vault_->BreakGlass("dr-a", "pat-unknown", "ER", 1000000);
  EXPECT_TRUE(grant.ok());
}

TEST_F(VaultEdgeTest, TwoVaultsOnOneEnvStayIsolated) {
  core::VaultOptions options;
  options.env = &env_;
  options.dir = "vault2";
  options.clock = &clock_;
  options.master_key = std::string(32, 'Z');
  options.entropy = "edge-entropy-2";
  options.signer_height = 4;
  auto second = core::Vault::Open(options);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE((*second)
                  ->RegisterPrincipal(
                      "boot", {"admin-2", core::Role::kAdmin, "A2"})
                  .ok());
  auto id = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "mine",
                                 {}, "hipaa-6y");
  ASSERT_TRUE(id.ok());
  // The second vault knows nothing about the first's records or actors.
  EXPECT_TRUE((*second)->GetRecordMeta(*id).status().IsNotFound());
  EXPECT_TRUE((*second)->ReadRecord("dr-a", *id).status().IsNotFound());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
  EXPECT_TRUE((*second)->VerifyEverything().ok());
}

}  // namespace
}  // namespace medvault
