// Cross-shard concurrency stress: eight client threads drive a mixed
// create/read/correct/dispose workload against a four-shard vault with
// the shared authenticated cache enabled. The point is not throughput —
// it is that under real contention (per-shard locks, shared cache,
// ingest pool all active at once) no operation tears, no audit event is
// lost, no disposed plaintext resurfaces, and the whole thing still
// verifies end-to-end. tools/smoke.sh re-runs this under ASan and TSan
// (label "stress"), which is where cache/purge races would surface.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class ShardStressTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;
  static constexpr int kThreads = 8;

  void SetUp() override {
    ShardedVaultOptions options;
    options.env = &env_;
    options.dir = "stress";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "stress-entropy";
    options.num_shards = kShards;
    options.signer_height = 6;
    auto opened = ShardedVault::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    vault_ = std::move(*opened);

    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"aud-x", Role::kAuditor, "X"})
                    .ok());
    for (int t = 0; t < kThreads; ++t) {
      std::string dr = "dr-" + std::to_string(t);
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("admin-r",
                                          {dr, Role::kPhysician, dr})
                      .ok());
      std::string pat = "pat-" + std::to_string(t);
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("admin-r",
                                          {pat, Role::kPatient, pat})
                      .ok());
      ASSERT_TRUE(vault_->AssignCare("admin-r", dr, pat).ok());
    }
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<ShardedVault> vault_;
};

TEST_F(ShardStressTest, MixedWorkloadStaysLinearizableAndVerifiable) {
  // Each thread owns one patient (so its records may land on any shard
  // but are private to it) and loops a create / read / correct / dispose
  // mix. Before each disposal the thread jumps the (atomic, monotonic)
  // clock past the short policy's horizon, so records genuinely get
  // crypto-shredded mid-run while siblings are still being read through
  // the shared cache.
  constexpr int kOpsPerThread = 60;
  std::atomic<int> failures{0};
  std::atomic<int> disposed_reads_ok{0};
  std::atomic<int> creates_done{0};
  std::atomic<int> disposals_done{0};
  std::vector<std::vector<RecordId>> owned(kThreads);
  std::vector<std::thread> threads;

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string dr = "dr-" + std::to_string(t);
      const std::string pat = "pat-" + std::to_string(t);
      std::vector<RecordId> live;
      std::set<RecordId> dead;
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (i % 4) {
          case 0: {  // create (backdated policy: immediately disposable)
            auto id = vault_->CreateRecord(
                dr, pat, "text/plain",
                "t" + std::to_string(t) + " op " + std::to_string(i),
                {"stress"}, "short-1y");
            if (id.ok()) {
              live.push_back(*id);
              owned[t].push_back(*id);
              creates_done++;
            } else {
              failures++;
            }
            break;
          }
          case 1: {  // read a live record (cache hit path under race)
            if (live.empty()) break;
            auto read = vault_->ReadRecord(dr, live.back());
            if (!read.ok()) failures++;
            break;
          }
          case 2: {  // correct a live record (purges its cache entries)
            if (live.empty()) break;
            auto corrected = vault_->CorrectRecord(
                dr, live.front(), "amended " + std::to_string(i),
                "routine", {"stress"});
            if (!corrected.ok()) failures++;
            break;
          }
          case 3: {  // dispose the oldest live record, then re-read it
            if (live.size() < 2) break;
            RecordId victim = live.front();
            live.erase(live.begin());
            // Any record created before this instant is now expired.
            clock_.Advance(400LL * 24 * 3600 * kMicrosPerSecond);
            auto cert = vault_->DisposeRecord("admin-r", victim);
            if (!cert.ok()) {
              failures++;
              break;
            }
            disposals_done++;
            dead.insert(victim);
            if (vault_->ReadRecord(dr, victim).ok()) disposed_reads_ok++;
            break;
          }
        }
      }
      // Terminal sweep: everything this thread disposed must stay dead.
      for (const RecordId& id : dead) {
        if (vault_->ReadRecord(dr, id).ok()) disposed_reads_ok++;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(disposed_reads_ok.load(), 0)
      << "crypto-shredded record served after disposal";
  EXPECT_GT(disposals_done.load(), 0) << "workload never exercised disposal";

  // Global invariants after the storm: unique ids, clean audit chains,
  // full cryptographic verification on every shard.
  std::set<RecordId> all;
  for (const auto& ids : owned) {
    for (const RecordId& id : ids) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(static_cast<int>(all.size()), creates_done.load());
  EXPECT_TRUE(vault_->SyncAll().ok());
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  EXPECT_TRUE(vault_->VerifyEverything().ok());

  // Audit completeness: one kCreate per successful create, one
  // kDispose per successful disposal, across the merged trail.
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  int creates = 0;
  int disposals = 0;
  for (const AuditEvent& event : *trail) {
    if (event.action == AuditAction::kCreate) creates++;
    if (event.action == AuditAction::kDispose) disposals++;
  }
  EXPECT_EQ(creates, creates_done.load());
  EXPECT_EQ(disposals, disposals_done.load());
}

TEST_F(ShardStressTest, ParallelBatchIngestFromManyThreads) {
  // All eight threads push batches through the shared ingest pool at
  // once; the pool must keep per-call completion separate (a thread
  // must never return before ITS batch landed) and ids must stay
  // globally unique.
  constexpr int kBatches = 6;
  constexpr int kBatchSize = 10;
  std::atomic<int> failures{0};
  std::vector<std::vector<RecordId>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string dr = "dr-" + std::to_string(t);
      const std::string pat = "pat-" + std::to_string(t);
      for (int b = 0; b < kBatches; ++b) {
        std::vector<Vault::NewRecord> batch;
        for (int i = 0; i < kBatchSize; ++i) {
          Vault::NewRecord record;
          record.patient_id = pat;
          record.content_type = "text/plain";
          record.plaintext = "t" + std::to_string(t) + " b" +
                             std::to_string(b) + " i" + std::to_string(i);
          record.retention_policy = "hipaa-6y";
          batch.push_back(std::move(record));
        }
        auto ids = vault_->CreateRecordsBatch(dr, batch);
        if (!ids.ok() || ids->size() != batch.size()) {
          failures++;
          continue;
        }
        got[t].insert(got[t].end(), ids->begin(), ids->end());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  std::set<RecordId> all;
  for (int t = 0; t < kThreads; ++t) {
    for (const RecordId& id : got[t]) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(all.size(),
            static_cast<size_t>(kThreads * kBatches * kBatchSize));
  EXPECT_TRUE(vault_->SyncAll().ok());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

}  // namespace
}  // namespace medvault::core
