// Verifiable migration tests: exact copies, dual-signed receipts,
// custody continuity, disposed-record carry-over, failure modes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/migration.h"
#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = OpenVault(&env_a_, "vault-a", "hospital-a", "entropy-a");
    target_ = OpenVault(&env_b_, "vault-b", "hospital-b", "entropy-b");
    RegisterCast(source_.get());
    RegisterCast(target_.get());
  }

  std::unique_ptr<Vault> OpenVault(storage::Env* env, const std::string& dir,
                                   const std::string& system,
                                   const std::string& entropy) {
    VaultOptions options;
    options.env = env;
    options.dir = dir;
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = entropy;
    options.signer_height = 4;
    options.system_id = system;
    auto vault = Vault::Open(options);
    EXPECT_TRUE(vault.ok()) << vault.status().ToString();
    return std::move(vault).value();
  }

  void RegisterCast(Vault* vault) {
    ASSERT_TRUE(
        vault->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal(
                        "admin-r", {"aud-x", Role::kAuditor, "Auditor"})
                    .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin-r",
                                        {"pat-p", Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  RecordId CreateSample(const std::string& content) {
    auto id = source_->CreateRecord("dr-a", "pat-p", "text/plain", content,
                                    {"cardiology"}, "osha-30y");
    EXPECT_TRUE(id.ok());
    return id.ValueOr("");
  }

  storage::MemEnv env_a_, env_b_;
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> source_, target_;
};

TEST_F(MigrationTest, MigratesRecordsWithContentAndHistory) {
  RecordId r1 = CreateSample("record one");
  RecordId r2 = CreateSample("record two");
  ASSERT_TRUE(
      source_->CorrectRecord("dr-a", r1, "record one v2", "fix", {}).ok());

  auto receipt = Migrator::Migrate(source_.get(), target_.get(), "admin-r");
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_EQ(receipt->record_count, 2u);
  EXPECT_EQ(receipt->version_count, 3u);
  EXPECT_EQ(receipt->source_system, "hospital-a");
  EXPECT_EQ(receipt->target_system, "hospital-b");

  // Target serves the records with full history.
  EXPECT_EQ(target_->ReadRecord("dr-a", r1)->plaintext, "record one v2");
  EXPECT_EQ(target_->ReadRecordVersion("dr-a", r1, 1)->plaintext,
            "record one");
  EXPECT_EQ(target_->ReadRecord("dr-a", r2)->plaintext, "record two");
  EXPECT_TRUE(target_->VerifyEverything().ok());
}

TEST_F(MigrationTest, ReceiptVerifiesAndBindsContent) {
  CreateSample("content");
  auto receipt = Migrator::Migrate(source_.get(), target_.get(), "admin-r");
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(
      Migrator::VerifyReceipt(*receipt, source_.get(), target_.get()).ok());

  // Round-trip the receipt through its encoding.
  auto decoded = MigrationReceipt::Decode(receipt->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(
      Migrator::VerifyReceipt(*decoded, source_.get(), target_.get()).ok());

  // Forged receipts fail.
  MigrationReceipt forged = *receipt;
  forged.record_count++;
  EXPECT_FALSE(
      Migrator::VerifyReceipt(forged, source_.get(), target_.get()).ok());
}

TEST_F(MigrationTest, ReceiptDetectsPostMigrationTamper) {
  CreateSample(std::string(300, 'm'));
  auto receipt = Migrator::Migrate(source_.get(), target_.get(), "admin-r");
  ASSERT_TRUE(receipt.ok());

  // Insider corrupts the migrated bytes at the target.
  auto ids = target_->versions()->segments()->SegmentIds();
  std::string file =
      target_->versions()->segments()->SegmentFileName(ids.front());
  uint64_t size = 0;
  ASSERT_TRUE(env_b_.GetFileSize(file, &size).ok());
  ASSERT_TRUE(env_b_.UnsafeOverwrite(file, size / 2, "X").ok());

  EXPECT_FALSE(
      Migrator::VerifyReceipt(*receipt, source_.get(), target_.get()).ok());
}

TEST_F(MigrationTest, CustodyChainContinuesAcrossSystems) {
  RecordId r1 = CreateSample("with custody");
  ASSERT_TRUE(
      Migrator::Migrate(source_.get(), target_.get(), "admin-r").ok());

  auto chain = target_->GetCustodyChain("aud-x", r1);
  ASSERT_TRUE(chain.ok());
  ASSERT_GE(chain->size(), 3u);
  EXPECT_EQ(chain->front().type, CustodyEventType::kCreated);
  EXPECT_EQ(chain->front().system_id, "hospital-a");
  EXPECT_EQ(chain->back().type, CustodyEventType::kMigratedIn);
  EXPECT_EQ(chain->back().system_id, "hospital-b");
  EXPECT_TRUE(target_->provenance()->VerifyChain(r1).ok());

  // Source records the hand-off too.
  auto source_chain = source_->GetCustodyChain("aud-x", r1);
  ASSERT_TRUE(source_chain.ok());
  EXPECT_EQ(source_chain->back().type, CustodyEventType::kMigratedOut);
}

TEST_F(MigrationTest, DisposedRecordsCarryTombstones) {
  RecordId r1 = CreateSample("to be disposed");
  RecordId r2 = CreateSample("to survive");
  clock_.AdvanceYears(31);
  ASSERT_TRUE(source_->DisposeRecord("admin-r", r1).ok());

  auto receipt = Migrator::Migrate(source_.get(), target_.get(), "admin-r");
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_EQ(receipt->record_count, 2u);

  // The disposed record stays disposed at the target; the live one reads.
  EXPECT_TRUE(target_->ReadRecord("dr-a", r1).status().IsKeyDestroyed());
  EXPECT_EQ(target_->ReadRecord("dr-a", r2)->plaintext, "to survive");
  EXPECT_TRUE(target_->VerifyEverything().ok());
}

TEST_F(MigrationTest, RequiresMigratePermissionOnBothSides) {
  CreateSample("x");
  EXPECT_TRUE(Migrator::Migrate(source_.get(), target_.get(), "dr-a")
                  .status()
                  .IsPermissionDenied());
  // An admin known only to the source is rejected by the target.
  ASSERT_TRUE(source_
                  ->RegisterPrincipal("admin-r",
                                      {"admin-only-a", Role::kAdmin, "A"})
                  .ok());
  EXPECT_TRUE(Migrator::Migrate(source_.get(), target_.get(), "admin-only-a")
                  .status()
                  .IsNotFound());
}

TEST_F(MigrationTest, RetentionClockUnchangedByMigration) {
  RecordId r1 = CreateSample("keep retention");
  auto before = source_->GetRecordMeta(r1);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      Migrator::Migrate(source_.get(), target_.get(), "admin-r").ok());
  auto after = target_->GetRecordMeta(r1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->retention_until, before->retention_until);
  EXPECT_EQ(after->retention_policy, before->retention_policy);

  // Disposal at the target still blocked until the original expiry.
  EXPECT_TRUE(target_->DisposeRecord("admin-r", r1)
                  .status()
                  .IsRetentionViolation());
  clock_.AdvanceYears(31);
  EXPECT_TRUE(target_->DisposeRecord("admin-r", r1).ok());
}

TEST_F(MigrationTest, SecondMigrationChainsOnward) {
  // 30-year horizon: records outlive systems; migrate A -> B -> C.
  RecordId r1 = CreateSample("long liver");
  ASSERT_TRUE(
      Migrator::Migrate(source_.get(), target_.get(), "admin-r").ok());

  storage::MemEnv env_c;
  auto third = OpenVault(&env_c, "vault-c", "hospital-c", "entropy-c");
  RegisterCast(third.get());
  auto receipt = Migrator::Migrate(target_.get(), third.get(), "admin-r");
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();

  EXPECT_EQ(third->ReadRecord("dr-a", r1)->plaintext, "long liver");
  auto chain = third->GetCustodyChain("aud-x", r1);
  ASSERT_TRUE(chain.ok());
  // created @A, migrated-out @A, migrated-in @B, migrated-out @B,
  // migrated-in @C.
  EXPECT_GE(chain->size(), 5u);
  EXPECT_TRUE(third->provenance()->VerifyChain(r1).ok());
}

}  // namespace
}  // namespace medvault::core
