// Vault facade tests: full record lifecycle under access control, audit
// coverage of every operation, break-glass, disposal with certificates,
// search scoping, persistence, master-key rotation.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class VaultTest : public ::testing::Test {
 protected:
  void SetUp() override { OpenVault(); }

  void OpenVault() {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "vault-test-entropy";
    options.signer_height = 4;  // 16 signatures; cheap keygen for tests
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok()) << vault.status().ToString();
    vault_ = std::move(vault).value();
  }

  void RegisterCast() {
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("boot",
                                        {"admin-r", Role::kAdmin, "Root"})
                    .ok());
    ASSERT_TRUE(
        vault_
            ->RegisterPrincipal("admin-r",
                                {"dr-a", Role::kPhysician, "Dr A"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"nurse-n", Role::kNurse, "Nurse"})
                    .ok());
    ASSERT_TRUE(
        vault_
            ->RegisterPrincipal("admin-r",
                                {"aud-x", Role::kAuditor, "Auditor"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"pat-p", Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  Result<RecordId> CreateSample(const std::string& content = "note v1") {
    return vault_->CreateRecord("dr-a", "pat-p", "text/plain", content,
                                {"cancer", "oncology"}, "short-1y");
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> vault_;
};

TEST_F(VaultTest, OpenValidatesOptions) {
  VaultOptions bad;
  EXPECT_FALSE(Vault::Open(bad).ok());
  bad.env = &env_;
  bad.clock = &clock_;
  bad.dir = "v2";
  bad.master_key = "short";
  bad.entropy = "e";
  EXPECT_TRUE(Vault::Open(bad).status().IsInvalidArgument());
  bad.master_key = std::string(32, 'M');
  bad.signer_height = 1;
  EXPECT_TRUE(Vault::Open(bad).status().IsInvalidArgument());
}

TEST_F(VaultTest, BootstrapThenAdminOnlyRegistration) {
  // First registrations are open (bootstrap)...
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("whoever",
                                      {"admin-r", Role::kAdmin, "Root"})
                  .ok());
  // ...after an admin exists, only admins may register.
  EXPECT_TRUE(vault_
                  ->RegisterPrincipal("whoever",
                                      {"x", Role::kClerk, "X"})
                  .IsNotFound());  // unknown actor
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("admin-r",
                                      {"clerk-c", Role::kClerk, "C"})
                  .ok());
  EXPECT_TRUE(vault_
                  ->RegisterPrincipal("clerk-c",
                                      {"y", Role::kClerk, "Y"})
                  .IsPermissionDenied());
}

TEST_F(VaultTest, CreateReadCorrectLifecycle) {
  RegisterCast();
  auto id = CreateSample("initial note");
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto read = vault_->ReadRecord("dr-a", *id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->plaintext, "initial note");
  EXPECT_EQ(read->header.version, 1u);

  clock_.Advance(kMicrosPerDay);
  auto corrected = vault_->CorrectRecord("dr-a", *id, "corrected note",
                                         "wrong dosage", {"cancer"});
  ASSERT_TRUE(corrected.ok());
  EXPECT_EQ(corrected->version, 2u);

  EXPECT_EQ(vault_->ReadRecord("dr-a", *id)->plaintext, "corrected note");
  EXPECT_EQ(vault_->ReadRecordVersion("dr-a", *id, 1)->plaintext,
            "initial note");

  auto history = vault_->RecordHistory("dr-a", *id);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 2u);
  EXPECT_EQ((*history)[1].reason, "wrong dosage");
}

TEST_F(VaultTest, CorrectionsRequireReason) {
  RegisterCast();
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(vault_->CorrectRecord("dr-a", *id, "new", "", {})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(VaultTest, PatientReadsAndAmendsOwnRecord) {
  RegisterCast();
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(vault_->ReadRecord("pat-p", *id).ok());
  EXPECT_TRUE(vault_
                  ->CorrectRecord("pat-p", *id, "my own correction",
                                  "patient amendment", {})
                  .ok());
}

TEST_F(VaultTest, UnauthorizedAccessDeniedAndAudited) {
  RegisterCast();
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());

  // Nurse has no care relation with pat-p.
  EXPECT_TRUE(
      vault_->ReadRecord("nurse-n", *id).status().IsPermissionDenied());
  // Auditor cannot read clinical content.
  EXPECT_TRUE(
      vault_->ReadRecord("aud-x", *id).status().IsPermissionDenied());

  // Both denials are in the audit trail.
  auto trail = vault_->ReadAuditTrail("aud-x", *id);
  ASSERT_TRUE(trail.ok());
  int denials = 0;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kAccessDenied) denials++;
  }
  EXPECT_EQ(denials, 2);
}

TEST_F(VaultTest, EveryOperationIsAudited) {
  RegisterCast();
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-a", *id).ok());
  ASSERT_TRUE(
      vault_->CorrectRecord("dr-a", *id, "v2", "fix", {"cancer"}).ok());
  ASSERT_TRUE(vault_->SearchKeyword("dr-a", "cancer").ok());

  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  bool saw_create = false, saw_read = false, saw_correct = false,
       saw_search = false, saw_policy = false;
  for (const AuditEvent& e : *trail) {
    switch (e.action) {
      case AuditAction::kCreate: saw_create = true; break;
      case AuditAction::kRead: saw_read = true; break;
      case AuditAction::kCorrect: saw_correct = true; break;
      case AuditAction::kSearch: saw_search = true; break;
      case AuditAction::kPolicyChange: saw_policy = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_create);
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_correct);
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_policy);  // principal registrations
}

TEST_F(VaultTest, SearchTermNeverAppearsInAuditLog) {
  RegisterCast();
  ASSERT_TRUE(CreateSample().ok());
  ASSERT_TRUE(vault_->SearchKeyword("dr-a", "cancer").ok());
  std::string raw;
  ASSERT_TRUE(
      storage::ReadFileToString(&env_, "vault/audit.log", &raw).ok());
  EXPECT_EQ(raw.find("cancer"), std::string::npos);
}

TEST_F(VaultTest, SearchScopedToAccessibleRecords) {
  RegisterCast();
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("admin-r",
                                      {"pat-q", Role::kPatient, "Q"})
                  .ok());
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("admin-r",
                                      {"dr-b", Role::kPhysician, "Dr B"})
                  .ok());
  ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-b", "pat-q").ok());

  // dr-a's patient and dr-b's patient both have cancer records.
  ASSERT_TRUE(CreateSample().ok());
  ASSERT_TRUE(vault_
                  ->CreateRecord("dr-b", "pat-q", "text/plain", "note q",
                                 {"cancer"}, "short-1y")
                  .ok());

  auto hits_a = vault_->SearchKeyword("dr-a", "cancer");
  ASSERT_TRUE(hits_a.ok());
  EXPECT_EQ(hits_a->size(), 1u);  // only their own patient's record

  auto hits_b = vault_->SearchKeyword("dr-b", "cancer");
  ASSERT_TRUE(hits_b.ok());
  EXPECT_EQ(hits_b->size(), 1u);
  EXPECT_NE((*hits_a)[0], (*hits_b)[0]);
}

TEST_F(VaultTest, BreakGlassGrantsAccessAndIsAudited) {
  RegisterCast();
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("admin-r",
                                      {"pat-q", Role::kPatient, "Q"})
                  .ok());
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("admin-r",
                                      {"dr-b", Role::kPhysician, "Dr B"})
                  .ok());
  ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-b", "pat-q").ok());
  auto id = vault_->CreateRecord("dr-b", "pat-q", "text/plain",
                                 "emergency info", {}, "short-1y");
  ASSERT_TRUE(id.ok());

  EXPECT_TRUE(
      vault_->ReadRecord("dr-a", *id).status().IsPermissionDenied());
  auto grant = vault_->BreakGlass("dr-a", "pat-q",
                                  "patient unconscious in ER",
                                  3600 * kMicrosPerSecond);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(vault_->ReadRecord("dr-a", *id)->plaintext, "emergency info");

  // Expiry re-locks.
  clock_.Advance(2 * 3600 * kMicrosPerSecond);
  EXPECT_TRUE(
      vault_->ReadRecord("dr-a", *id).status().IsPermissionDenied());

  // Audited with justification.
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  bool found = false;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kBreakGlass &&
        e.details.find("unconscious") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(VaultTest, DisposalBlockedDuringRetention) {
  RegisterCast();
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(vault_->DisposeRecord("admin-r", *id)
                  .status()
                  .IsRetentionViolation());
  // Record still readable.
  EXPECT_TRUE(vault_->ReadRecord("dr-a", *id).ok());
}

TEST_F(VaultTest, DisposalAfterRetentionShredsAndCertifies) {
  RegisterCast();
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  clock_.AdvanceYears(2);  // past short-1y

  auto cert = vault_->DisposeRecord("admin-r", *id);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_EQ(cert->record_id, *id);
  EXPECT_TRUE(RetentionManager::VerifyCertificate(
                  *cert, vault_->SignerPublicKey(),
                  vault_->SignerPublicSeed(), vault_->SignerHeight())
                  .ok());

  // Content is gone (key destroyed), searches no longer return it.
  EXPECT_TRUE(vault_->ReadRecord("dr-a", *id).status().IsKeyDestroyed());
  auto hits = vault_->SearchKeyword("dr-a", "cancer");
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  // Disposal is idempotent-hostile.
  EXPECT_FALSE(vault_->DisposeRecord("admin-r", *id).ok());
  // But integrity of remaining state still verifies.
  EXPECT_TRUE(vault_->VerifyEverything().ok());
  // Custody chain ends with a disposed event.
  auto chain = vault_->GetCustodyChain("aud-x", *id);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->back().type, CustodyEventType::kDisposed);
}

TEST_F(VaultTest, OnlyAdminDisposes) {
  RegisterCast();
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  clock_.AdvanceYears(2);
  EXPECT_TRUE(
      vault_->DisposeRecord("dr-a", *id).status().IsPermissionDenied());
}

TEST_F(VaultTest, UnknownRetentionPolicyRejected) {
  RegisterCast();
  auto id = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "x", {},
                                 "no-such-policy");
  EXPECT_TRUE(id.status().IsNotFound());
}

TEST_F(VaultTest, AuditCheckpointAndVerification) {
  RegisterCast();
  ASSERT_TRUE(CreateSample().ok());
  auto cp = vault_->CheckpointAudit();
  ASSERT_TRUE(cp.ok());
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  ASSERT_TRUE(CreateSample().ok());
  EXPECT_TRUE(vault_->VerifyAuditAgainstTrusted(*cp).ok());
}

TEST_F(VaultTest, InsiderTamperOfSegmentsDetected) {
  RegisterCast();
  auto id = CreateSample(std::string(500, 'z'));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(vault_->VerifyEverything().ok());

  auto ids = vault_->versions()->segments()->SegmentIds();
  std::string file =
      vault_->versions()->segments()->SegmentFileName(ids.front());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize(file, &size).ok());
  ASSERT_TRUE(env_.UnsafeOverwrite(file, size / 2, "!").ok());

  EXPECT_TRUE(vault_->VerifyRecord(*id).IsTamperDetected());
  EXPECT_TRUE(vault_->VerifyEverything().IsTamperDetected());
}

TEST_F(VaultTest, InsiderTamperOfAuditLogDetected) {
  RegisterCast();
  ASSERT_TRUE(CreateSample().ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("vault/audit.log", &size).ok());
  ASSERT_TRUE(env_.UnsafeOverwrite("vault/audit.log", size / 2, "!").ok());
  EXPECT_TRUE(vault_->VerifyAudit().IsTamperDetected());
}

TEST_F(VaultTest, StateSurvivesReopen) {
  RegisterCast();
  auto id = CreateSample("persistent note");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      vault_->CorrectRecord("dr-a", *id, "v2", "fix", {"cancer"}).ok());
  ASSERT_TRUE(vault_->CheckpointAudit().ok());
  std::string root = vault_->ContentRoot();
  uint64_t audit_size = vault_->audit()->size();
  vault_.reset();

  OpenVault();
  // Principals, care relations, records, audit all restored.
  EXPECT_EQ(vault_->ReadRecord("dr-a", *id)->plaintext, "v2");
  EXPECT_EQ(vault_->ContentRoot(), root);
  EXPECT_GE(vault_->audit()->size(), audit_size);
  EXPECT_TRUE(vault_->VerifyEverything().ok());

  // Record ids do not collide with pre-reopen ones.
  auto id2 = CreateSample("after reopen");
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id2, *id);
}

TEST_F(VaultTest, SignerStateSurvivesReopen) {
  RegisterCast();
  ASSERT_TRUE(CreateSample().ok());
  auto cp1 = vault_->CheckpointAudit();
  ASSERT_TRUE(cp1.ok());
  uint64_t used = vault_->signer()->SignaturesUsed();
  vault_.reset();

  OpenVault();
  // Reopened signer must not reuse consumed one-time leaves.
  EXPECT_GE(vault_->signer()->SignaturesUsed(), used);
  auto cp2 = vault_->CheckpointAudit();
  ASSERT_TRUE(cp2.ok());
  EXPECT_TRUE(vault_->VerifyAudit().ok());
}

TEST_F(VaultTest, MasterKeyRotationKeepsEverythingReadable) {
  RegisterCast();
  auto id = CreateSample("rotate around me");
  ASSERT_TRUE(id.ok());
  std::string new_master(32, 'N');
  ASSERT_TRUE(vault_->RotateMasterKey("admin-r", new_master).ok());
  EXPECT_EQ(vault_->ReadRecord("dr-a", *id)->plaintext, "rotate around me");
  vault_.reset();

  // Reopen requires the new master key.
  VaultOptions options;
  options.env = &env_;
  options.dir = "vault";
  options.clock = &clock_;
  options.master_key = new_master;
  options.entropy = "vault-test-entropy";
  options.signer_height = 4;
  auto reopened = Vault::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->ReadRecord("dr-a", *id)->plaintext,
            "rotate around me");
  // Search (blinded with entropy-derived key) still works.
  auto hits = (*reopened)->SearchKeyword("dr-a", "cancer");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

// ---- Two-person disposal ---------------------------------------------------

class DualDisposalTest : public VaultTest {
 protected:
  void SetUp() override {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault-dual";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "dual-disposal-entropy";
    options.signer_height = 4;
    options.require_dual_disposal = true;
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok());
    vault_ = std::move(vault).value();

    RegisterCast();
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"admin-s", Role::kAdmin, "Second"})
                    .ok());
  }
};

TEST_F(DualDisposalTest, SingleAdminPathIsDisabled) {
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  clock_.AdvanceYears(2);
  EXPECT_TRUE(
      vault_->DisposeRecord("admin-r", *id).status().IsFailedPrecondition());
  EXPECT_TRUE(vault_->ReadRecord("dr-a", *id).ok());
}

TEST_F(DualDisposalTest, RequestPlusApprovalDisposes) {
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  clock_.AdvanceYears(2);

  auto request = vault_->RequestDisposal("admin-r", *id);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  // Record still intact until approval.
  EXPECT_TRUE(vault_->ReadRecord("dr-a", *id).ok());

  auto cert = vault_->ApproveDisposal("admin-s", *request);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_EQ(cert->authorizer, "admin-r+admin-s");
  EXPECT_TRUE(RetentionManager::VerifyCertificate(
                  *cert, vault_->SignerPublicKey(),
                  vault_->SignerPublicSeed(), vault_->SignerHeight())
                  .ok());
  EXPECT_TRUE(vault_->ReadRecord("dr-a", *id).status().IsKeyDestroyed());
  // A request is single-use.
  EXPECT_TRUE(vault_->ApproveDisposal("admin-s", *request)
                  .status()
                  .IsNotFound());
}

TEST_F(DualDisposalTest, SelfApprovalRefusedAndAudited) {
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  clock_.AdvanceYears(2);
  auto request = vault_->RequestDisposal("admin-r", *id);
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(vault_->ApproveDisposal("admin-r", *request)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(vault_->ReadRecord("dr-a", *id).ok());

  auto trail = vault_->ReadAuditTrail("aud-x", *id);
  ASSERT_TRUE(trail.ok());
  bool refusal_logged = false;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kAccessDenied &&
        e.details.find("self-approval") != std::string::npos) {
      refusal_logged = true;
    }
  }
  EXPECT_TRUE(refusal_logged);
  // The second admin can still complete it.
  EXPECT_TRUE(vault_->ApproveDisposal("admin-s", *request).ok());
}

TEST_F(DualDisposalTest, RequestAndApprovalBothGatedByRetentionAndRole) {
  auto id = CreateSample();
  ASSERT_TRUE(id.ok());
  // Too early to even request.
  EXPECT_TRUE(vault_->RequestDisposal("admin-r", *id)
                  .status()
                  .IsRetentionViolation());
  clock_.AdvanceYears(2);
  // Non-admins can neither request nor approve.
  EXPECT_TRUE(vault_->RequestDisposal("dr-a", *id)
                  .status()
                  .IsPermissionDenied());
  auto request = vault_->RequestDisposal("admin-r", *id);
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(vault_->ApproveDisposal("dr-a", *request)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(
      vault_->ApproveDisposal("admin-s", "dr-999").status().IsNotFound());
}

TEST_F(VaultTest, PlaintextNeverOnDisk) {
  RegisterCast();
  ASSERT_TRUE(CreateSample("EXTREMELYSECRETPHRASE").ok());
  // Scan every vault file for the plaintext.
  for (const std::string& sub : {"", "/segments"}) {
    std::vector<std::string> children;
    ASSERT_TRUE(env_.GetChildren("vault" + sub, &children).ok());
    for (const std::string& name : children) {
      std::string contents;
      if (!storage::ReadFileToString(&env_, "vault" + sub + "/" + name,
                                     &contents)
               .ok()) {
        continue;
      }
      EXPECT_EQ(contents.find("EXTREMELYSECRETPHRASE"), std::string::npos)
          << "plaintext leaked into " << name;
    }
  }
}

TEST_F(VaultTest, CreateRecordsBatchBehavesLikeLoopedCreates) {
  RegisterCast();
  std::vector<Vault::NewRecord> batch;
  for (int i = 0; i < 5; i++) {
    Vault::NewRecord r;
    r.patient_id = "pat-p";
    r.content_type = "text/plain";
    r.plaintext = "batch note " + std::to_string(i);
    r.keywords = {"batched", "note-" + std::to_string(i)};
    r.retention_policy = "short-1y";
    batch.push_back(std::move(r));
  }
  auto ids = vault_->CreateRecordsBatch("dr-a", batch);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), 5u);

  // Each record readable with its own plaintext, searchable, audited.
  for (int i = 0; i < 5; i++) {
    auto read = vault_->ReadRecord("dr-a", (*ids)[i]);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->plaintext, "batch note " + std::to_string(i));
  }
  auto hits = vault_->SearchKeyword("dr-a", "batched");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  int creates = 0;
  for (const AuditEvent& e : *trail) {
    if (e.action == AuditAction::kCreate) creates++;
  }
  EXPECT_EQ(creates, 5);
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

TEST_F(VaultTest, CreateRecordsBatchValidatesWholeBatchFirst) {
  RegisterCast();
  Vault::NewRecord good;
  good.patient_id = "pat-p";
  good.content_type = "text/plain";
  good.plaintext = "fine";
  good.retention_policy = "short-1y";
  Vault::NewRecord bad = good;
  bad.retention_policy = "no-such-policy";

  // The bad entry is last, but nothing from the batch may be created.
  size_t before = vault_->ListRecordIds().size();
  auto rejected = vault_->CreateRecordsBatch("dr-a", {good, good, bad});
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(vault_->ListRecordIds().size(), before);
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

}  // namespace
}  // namespace medvault::core
