// Audit-transparency tests: the machinery that lets parties OUTSIDE
// the vault's trust boundary hold it honest. The stale-root proof
// contract (a proof for an old event must verify against the
// checkpoint the verifier actually pinned, not whatever the tree grew
// to since), witnessed checkpoints with sticky tamper evidence on
// forks, forged-proof rejection, the O(per-patient) disclosure
// accounting checked against a brute-force full-log-scan oracle, and
// the public /v1/transparency/* endpoints verified end to end over
// HTTP with nothing but the JSON responses.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hex.h"
#include "core/sharded_vault.h"
#include "core/transparency.h"
#include "crypto/merkle.h"
#include "crypto/xmss.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

using obs::json::Value;
using server::ClientResponse;
using server::HttpClient;
using server::MedVaultServer;
using server::ServerOptions;

constexpr char kSecret[] = "transparency-test-secret";

class TransparencyTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    service_.reset();
    vault_.reset();
  }

  ShardedVaultOptions VaultOpts(uint32_t shards) {
    ShardedVaultOptions options;
    options.env = &env_;
    options.dir = "transparent";
    options.clock = &clock_;
    options.master_key = std::string(32, 'T');
    options.entropy = "transparency-test-entropy";
    options.num_shards = shards;
    options.signer_height = 8;
    options.metrics = &registry_;
    return options;
  }

  void OpenVault(uint32_t shards = 1) {
    auto opened = ShardedVault::Open(VaultOpts(shards));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    vault_ = std::move(*opened);
    num_shards_ = shards;
  }

  void Bootstrap() {
    auto ok = [](const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); };
    ok(vault_->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}));
    ok(vault_->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}));
    ok(vault_->RegisterPrincipal("admin", {"dr2", Role::kPhysician, "E"}));
    ok(vault_->RegisterPrincipal("admin", {"aud", Role::kAuditor, "X"}));
    ok(vault_->RegisterPrincipal("admin", {"pat", Role::kPatient, "P"}));
    ok(vault_->RegisterPrincipal("admin", {"lone", Role::kPatient, "L"}));
    ok(vault_->AssignCare("admin", "dr", "pat"));
    ok(vault_->AssignCare("admin", "dr2", "lone"));
  }

  void MakeService(uint64_t interval = 4) {
    ShardedTransparencyService::Options options;
    options.checkpoint_interval = interval;
    options.witness_height = 6;
    service_ =
        std::make_unique<ShardedTransparencyService>(vault_.get(), options);
  }

  RecordId Create(const std::string& patient, const std::string& text) {
    auto id = vault_->CreateRecord("dr", patient, "text/plain", text, {},
                                   "hipaa-6y");
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? *id : "";
  }

  /// (shard, seq) of the first event matching action+record — lets
  /// tests aim proof requests without assuming the shard layout.
  std::pair<uint32_t, uint64_t> FindEvent(AuditAction action,
                                          const RecordId& record_id) {
    for (uint32_t k = 0; k < num_shards_; ++k) {
      Vault* shard = vault_->shard(k);
      if (shard == nullptr) continue;
      for (const AuditEvent& e : shard->audit()->SnapshotEvents()) {
        if (e.action == action && e.record_id == record_id) return {k, e.seq};
      }
    }
    ADD_FAILURE() << "no event for record " << record_id;
    return {0, 0};
  }

  // ---- HTTP plumbing (mirrors server_test) ---------------------------

  void StartServer() {
    ServerOptions options;
    options.port = 0;
    options.worker_threads = 3;
    options.api_secret = kSecret;
    options.session_entropy = "transparency-session-entropy";
    options.clock = &clock_;
    options.transparency = service_.get();
    auto started = MedVaultServer::Start(vault_.get(), options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(*started);
  }

  static Value Parsed(const ClientResponse& response) {
    auto v = Value::Parse(response.body);
    EXPECT_TRUE(v.ok()) << response.body;
    return v.ok() ? *v : Value();
  }

  std::string Login(HttpClient* client, const std::string& principal) {
    Value::Object o;
    o["principal"] = Value(principal);
    o["secret"] = Value(std::string(kSecret));
    auto r = client->Do("POST", "/v1/login", Value(std::move(o)).Dump());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    EXPECT_EQ(r->status, 200) << r->body;
    Value v = Parsed(*r);
    return v.is_object() ? v.as_object().at("token").as_string() : "";
  }

  HttpClient MakeClient() {
    HttpClient client;
    EXPECT_TRUE(client.Connect(server_->port()).ok());
    return client;
  }

  static std::string Unhex(const Value& v) {
    auto bytes = HexDecode(v.as_string());
    EXPECT_TRUE(bytes.ok()) << v.as_string();
    return bytes.ok() ? *bytes : "";
  }

  /// Rebuilds a core EventProof from a /v1/transparency/proof response
  /// — the client-side half of the protocol, using only the JSON.
  static EventProof ProofFromJson(const Value::Object& o) {
    EventProof proof;
    proof.tree_size = o.at("tree_size").as_uint();
    for (const Value& node : o.at("path").as_array()) {
      proof.path.push_back(Unhex(node));
    }
    const Value::Object& e = o.at("event").as_object();
    proof.event.seq = e.at("seq").as_uint();
    proof.event.timestamp = e.at("timestamp").as_int();
    proof.event.actor = e.at("actor").as_string();
    proof.event.record_id = e.at("record_id").as_string();
    proof.event.details = e.at("details").as_string();
    proof.event.prev_hash = Unhex(e.at("prev_hash"));
    const std::string action = e.at("action").as_string();
    bool mapped = false;
    for (int a = 1; a <= 15; ++a) {
      if (AuditActionName(static_cast<AuditAction>(a)) == action) {
        proof.event.action = static_cast<AuditAction>(a);
        mapped = true;
        break;
      }
    }
    EXPECT_TRUE(mapped) << "unknown action name " << action;
    return proof;
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  obs::MetricsRegistry registry_;
  std::unique_ptr<ShardedVault> vault_;
  std::unique_ptr<ShardedTransparencyService> service_;
  std::unique_ptr<MedVaultServer> server_;
  uint32_t num_shards_ = 1;
};

// ---- The stale-root proof contract (the headline bugfix) -----------------
//
// Regression: ProveEvent used to prove only against the CURRENT tree
// head, so a verifier who pinned a published checkpoint and came back
// after the log grew could never verify anything — the proof's root no
// longer matched the signed root they held. ProveEventAt(seq, n) must
// produce a proof for any event under ANY published size n > seq.
TEST_F(TransparencyTest, ProofVerifiesAgainstPinnedStaleCheckpoint) {
  OpenVault(1);
  Bootstrap();
  MakeService();

  RecordId early = Create("pat", "episode-1");
  auto pinned = service_->LatestCosigned(0);
  ASSERT_FALSE(pinned.ok());  // nothing published yet
  auto published = service_->log(0);
  ASSERT_TRUE(published.ok());
  auto cp1 = (*published)->PublishCheckpoint();
  ASSERT_TRUE(cp1.ok()) << cp1.status().ToString();
  const SignedCheckpoint pin = cp1->checkpoint;
  ASSERT_GT(pin.tree_size, 0u);

  // The log grows well past the pinned checkpoint.
  for (int i = 0; i < 6; ++i) Create("pat", "episode-" + std::to_string(i));
  auto cp2 = (*published)->PublishCheckpoint();
  ASSERT_TRUE(cp2.ok());
  const SignedCheckpoint head = cp2->checkpoint;
  ASSERT_GT(head.tree_size, pin.tree_size);

  auto [shard, seq] = FindEvent(AuditAction::kCreate, early);
  ASSERT_LT(seq, pin.tree_size);

  // Old event, old pinned root: must verify.
  auto stale = service_->ProveEventAt(shard, seq, pin.tree_size);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ(stale->tree_size, pin.tree_size);
  EXPECT_TRUE(AuditLog::VerifyEventProof(*stale, pin.root).ok());

  // Same event under the newer checkpoint: also fine.
  auto fresh = service_->ProveEventAt(shard, seq, head.tree_size);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(AuditLog::VerifyEventProof(*fresh, head.root).ok());

  // The bug being regressed: a head proof does NOT verify against the
  // pinned root (and the stale proof does not verify against head).
  EXPECT_FALSE(AuditLog::VerifyEventProof(*fresh, pin.root).ok());
  EXPECT_FALSE(AuditLog::VerifyEventProof(*stale, head.root).ok());

  // Consistency proof links the two published checkpoints.
  auto link = service_->ConsistencyBetween(0, pin.tree_size, head.tree_size);
  ASSERT_TRUE(link.ok()) << link.status().ToString();
  EXPECT_TRUE(crypto::MerkleTree::VerifyConsistency(
                  pin.tree_size, pin.root, head.tree_size, head.root,
                  link->proof)
                  .ok());

  // Contract edges: unpublished size, unknown seq, event newer than
  // the checkpoint — distinct, deterministic errors (the HTTP layer
  // maps them to 404/404/400, never 500).
  EXPECT_TRUE(
      service_->ProveEventAt(0, seq, pin.tree_size + 1).status().IsNotFound());
  EXPECT_TRUE(service_->ProveEventAt(0, 1u << 20, head.tree_size)
                  .status()
                  .IsNotFound());
  uint64_t late_seq = head.tree_size - 1;
  if (late_seq >= pin.tree_size) {
    EXPECT_TRUE(service_->ProveEventAt(0, late_seq, pin.tree_size)
                    .status()
                    .IsInvalidArgument());
  }
}

// ---- Witnessed checkpoints -----------------------------------------------

TEST_F(TransparencyTest, WitnessCosignsAndCosignatureVerifies) {
  OpenVault(1);
  Bootstrap();
  MakeService();
  ASSERT_TRUE(service_
                  ->AddWitness("w1", std::string(32, 'a'),
                               std::string(32, 'b'))
                  .ok());
  Create("pat", "note");
  ASSERT_TRUE(service_->PublishAll().ok());
  auto cosigned = service_->LatestCosigned(0);
  ASSERT_TRUE(cosigned.ok()) << cosigned.status().ToString();
  ASSERT_EQ(cosigned->cosignatures.size(), 1u);
  EXPECT_EQ(cosigned->cosignatures[0].witness_id, "w1");

  // Growth: the witness verifies consistency from its last-seen
  // checkpoint before countersigning again.
  for (int i = 0; i < 5; ++i) Create("pat", "note-" + std::to_string(i));
  ASSERT_TRUE(service_->PublishAll().ok());
  auto later = service_->LatestCosigned(0);
  ASSERT_TRUE(later.ok());
  ASSERT_EQ(later->cosignatures.size(), 1u);
  EXPECT_GT(later->checkpoint.tree_size, cosigned->checkpoint.tree_size);

  auto stats = service_->CollectStats();
  EXPECT_EQ(stats.checkpoints_published, 2u);
  EXPECT_EQ(stats.cosigns, 2u);
  EXPECT_EQ(stats.refusals, 0u);
  EXPECT_EQ(stats.tampered_witnesses, 0u);
}

TEST_F(TransparencyTest, WitnessVerifiesEndToEndWithOwnKey) {
  OpenVault(1);
  Bootstrap();
  Vault* shard = vault_->shard(0);
  TransparencyLog log(shard, {});
  Witness::Options wopts;
  wopts.id = "external";
  wopts.secret_seed = std::string(32, 'w');
  wopts.public_seed = std::string(32, 'p');
  wopts.height = 6;
  Witness witness(wopts, LogIdentity{shard->SignerPublicKey(),
                                     shard->SignerPublicSeed(),
                                     shard->SignerHeight()});
  log.RegisterWitness(&witness);

  Create("pat", "note");
  auto cosigned = log.PublishCheckpoint();
  ASSERT_TRUE(cosigned.ok()) << cosigned.status().ToString();
  ASSERT_EQ(cosigned->cosignatures.size(), 1u);

  // Anyone holding the witness's public identity can check the
  // countersignature offline.
  EXPECT_TRUE(Witness::VerifyCosignature(
                  cosigned->checkpoint, cosigned->cosignatures[0],
                  witness.public_key(), witness.public_seed(),
                  witness.height())
                  .ok());
  // ...and it does not verify for a different checkpoint (binding).
  SignedCheckpoint other = cosigned->checkpoint;
  other.tree_size += 1;
  EXPECT_FALSE(Witness::VerifyCosignature(
                   other, cosigned->cosignatures[0], witness.public_key(),
                   witness.public_seed(), witness.height())
                   .ok());
}

TEST_F(TransparencyTest, WitnessRefusesForkAndStaysTainted) {
  // A standalone "log" signer lets the test present the witness with a
  // fork: two signed checkpoints that are NOT consistent extensions.
  crypto::XmssSigner log_signer(std::string(32, 'L'), std::string(32, 'M'), 6);
  Witness::Options wopts;
  wopts.id = "w-fork";
  wopts.secret_seed = std::string(32, 'w');
  wopts.public_seed = std::string(32, 'p');
  wopts.height = 6;
  Witness witness(wopts, LogIdentity{log_signer.public_key(),
                                     log_signer.public_seed(), 6});

  auto sign = [&](uint64_t size, const std::string& root) {
    SignedCheckpoint cp;
    cp.tree_size = size;
    cp.root = root;
    cp.timestamp = 42;
    auto sig = log_signer.Sign(cp.SignedPayload());
    EXPECT_TRUE(sig.ok());
    cp.signature = sig->Encode();
    return cp;
  };

  // First checkpoint: anything extends the empty tree, no proof needed.
  SignedCheckpoint cp1 = sign(1, std::string(32, 'A'));
  ASSERT_TRUE(witness.Cosign(cp1, {}).ok());
  EXPECT_EQ(witness.last_size(), 1u);

  // Fork: a larger checkpoint with no valid consistency proof from the
  // witness's last-seen root. Refusal must be tamper evidence.
  SignedCheckpoint cp2 = sign(2, std::string(32, 'B'));
  auto refused = witness.Cosign(cp2, {});
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsTamperDetected())
      << refused.status().ToString();
  EXPECT_TRUE(witness.tampered());
  EXPECT_FALSE(witness.tamper_evidence().empty());

  // Sticky: even re-presenting the previously accepted checkpoint
  // (trivially consistent with itself) is refused from now on.
  auto still_refused = witness.Cosign(cp1, {});
  EXPECT_TRUE(still_refused.status().IsTamperDetected());
  EXPECT_TRUE(witness.tampered());

  // A shrinking log is likewise a fork.
  Witness fresh(wopts, LogIdentity{log_signer.public_key(),
                                   log_signer.public_seed(), 6});
  ASSERT_TRUE(fresh.Cosign(sign(4, std::string(32, 'C')), {}).ok());
  EXPECT_TRUE(
      fresh.Cosign(sign(2, std::string(32, 'D')), {}).status()
          .IsTamperDetected());

  // And a checkpoint whose log signature is bogus never reaches the
  // consistency check at all.
  Witness fresh2(wopts, LogIdentity{log_signer.public_key(),
                                    log_signer.public_seed(), 6});
  SignedCheckpoint forged = sign(1, std::string(32, 'E'));
  forged.root[0] ^= 1;  // signature no longer covers this root
  EXPECT_TRUE(fresh2.Cosign(forged, {}).status().IsTamperDetected());
}

TEST_F(TransparencyTest, ForgedProofsAreRejected) {
  OpenVault(1);
  Bootstrap();
  MakeService();
  RecordId id = Create("pat", "target");
  auto log = service_->log(0);
  ASSERT_TRUE(log.ok());
  auto cp = (*log)->PublishCheckpoint();
  ASSERT_TRUE(cp.ok());
  auto [shard, seq] = FindEvent(AuditAction::kCreate, id);
  auto proof = service_->ProveEventAt(shard, seq, cp->checkpoint.tree_size);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(AuditLog::VerifyEventProof(*proof, cp->checkpoint.root).ok());

  // Tampered event contents.
  EventProof bad_event = *proof;
  bad_event.event.details += " [redacted]";
  EXPECT_FALSE(
      AuditLog::VerifyEventProof(bad_event, cp->checkpoint.root).ok());

  // Tampered path node.
  if (!proof->path.empty()) {
    EventProof bad_path = *proof;
    bad_path.path[0][0] ^= 1;
    EXPECT_FALSE(
        AuditLog::VerifyEventProof(bad_path, cp->checkpoint.root).ok());
  }

  // Proof replayed for a different position.
  EventProof bad_seq = *proof;
  bad_seq.event.seq += 1;
  EXPECT_FALSE(AuditLog::VerifyEventProof(bad_seq, cp->checkpoint.root).ok());

  // Right proof, wrong root.
  std::string wrong_root = cp->checkpoint.root;
  wrong_root[0] ^= 1;
  EXPECT_FALSE(AuditLog::VerifyEventProof(*proof, wrong_root).ok());
}

// ---- Persistence ---------------------------------------------------------

TEST_F(TransparencyTest, PublishedCheckpointsSurviveReopen) {
  OpenVault(1);
  Bootstrap();
  MakeService();
  RecordId id = Create("pat", "durable");
  auto log = service_->log(0);
  ASSERT_TRUE(log.ok());
  auto cp1 = (*log)->PublishCheckpoint();
  ASSERT_TRUE(cp1.ok());
  for (int i = 0; i < 3; ++i) Create("pat", "more-" + std::to_string(i));
  auto cp2 = (*log)->PublishCheckpoint();
  ASSERT_TRUE(cp2.ok());
  const SignedCheckpoint pin1 = cp1->checkpoint;
  const SignedCheckpoint pin2 = cp2->checkpoint;
  auto [shard, seq] = FindEvent(AuditAction::kCreate, id);
  ASSERT_TRUE(vault_->SyncAll().ok());

  // Full restart: close everything, replay from the same MemEnv.
  service_.reset();
  vault_.reset();
  OpenVault(1);
  MakeService();

  // Both published checkpoints are restorable (log replay), and the
  // service picks the latest up as its own.
  auto latest = service_->LatestCosigned(0);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->checkpoint.tree_size, pin2.tree_size);
  EXPECT_EQ(latest->checkpoint.root, pin2.root);
  EXPECT_EQ(latest->checkpoint.signature, pin2.signature);

  // Proofs against BOTH persisted checkpoint sizes still work.
  for (const SignedCheckpoint& pin : {pin1, pin2}) {
    auto proof = service_->ProveEventAt(shard, seq, pin.tree_size);
    ASSERT_TRUE(proof.ok()) << proof.status().ToString();
    EXPECT_TRUE(AuditLog::VerifyEventProof(*proof, pin.root).ok());
  }

  // And the reopened log is an append-only extension of the pins
  // (VerifyAgainstTrusted — the auditor's offline check).
  EXPECT_TRUE(vault_->shard(0)->audit()->VerifyAgainstTrusted(pin1).ok());
  EXPECT_TRUE(vault_->shard(0)->audit()->VerifyAgainstTrusted(pin2).ok());
}

// ---- Disclosure accounting vs the full-scan oracle -----------------------

TEST_F(TransparencyTest, DisclosureReportMatchesFullScanOracle) {
  OpenVault(2);
  Bootstrap();

  // Workload: records for two patients, reads by clinicians and the
  // patients themselves, a break-glass grant, and non-disclosure noise
  // (searches, corrections, denied accesses).
  std::vector<RecordId> pat_records, lone_records;
  for (int i = 0; i < 4; ++i) {
    pat_records.push_back(Create("pat", "pat-ep-" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    auto id = vault_->CreateRecord("dr2", "lone", "text/plain",
                                   "lone-ep-" + std::to_string(i), {},
                                   "hipaa-6y");
    ASSERT_TRUE(id.ok());
    lone_records.push_back(*id);
  }
  for (const RecordId& id : pat_records) {
    ASSERT_TRUE(vault_->ReadRecord("dr", id).ok());
  }
  ASSERT_TRUE(vault_->ReadRecord("pat", pat_records[0]).ok());
  ASSERT_TRUE(vault_->ReadRecord("dr2", lone_records[0]).ok());
  // dr has no care relation with lone: break-glass, then read.
  auto grant = vault_->BreakGlass("dr", "lone", "er-admission",
                                  3600ll * 1000 * 1000);
  ASSERT_TRUE(grant.ok()) << grant.status().ToString();
  ASSERT_TRUE(vault_->ReadRecord("dr", lone_records[1]).ok());
  // Noise that must NOT appear in anyone's accounting.
  ASSERT_FALSE(vault_->ReadRecord("dr2", pat_records[0]).ok());

  // Brute-force oracle: scan EVERY shard's full audit log and apply
  // the §164.528 rules directly — kRead of a record whose meta names
  // the patient, plus break-glass grants naming the patient.
  auto oracle = [&](const PrincipalId& patient) {
    std::vector<std::pair<uint32_t, uint64_t>> seqs;
    for (uint32_t k = 0; k < num_shards_; ++k) {
      Vault* shard = vault_->shard(k);
      if (shard == nullptr) continue;
      for (const AuditEvent& e : shard->audit()->SnapshotEvents()) {
        if (e.action == AuditAction::kRead && !e.record_id.empty()) {
          auto meta = vault_->GetRecordMeta(e.record_id);
          if (meta.ok() && meta->patient_id == patient) {
            seqs.emplace_back(k, e.seq);
          }
        } else if (e.action == AuditAction::kBreakGlass &&
                   e.details.rfind("patient=" + patient + " ", 0) == 0) {
          seqs.emplace_back(k, e.seq);
        }
      }
    }
    return seqs;
  };
  auto reported = [&](const PrincipalId& actor, const PrincipalId& patient) {
    auto events = vault_->AccountingOfDisclosures(actor, patient);
    EXPECT_TRUE(events.ok()) << events.status().ToString();
    std::vector<std::pair<uint32_t, uint64_t>> seqs;
    if (events.ok()) {
      for (const AuditEvent& e : *events) {
        // All of a patient's disclosures live on one shard (routing);
        // recover the shard from the record / details for comparison.
        auto [k, seq] = e.record_id.empty()
                            ? FindEvent(AuditAction::kBreakGlass, "")
                            : FindEvent(AuditAction::kRead, e.record_id);
        (void)seq;
        seqs.emplace_back(k, e.seq);
      }
    }
    return seqs;
  };

  // Patients pull their own; the auditor pulls anyone's. Reports must
  // equal the oracle EXACTLY (same events, ascending seq).
  for (const PrincipalId& patient : {std::string("pat"), std::string("lone")}) {
    auto expect = oracle(patient);
    ASSERT_FALSE(expect.empty());
    EXPECT_EQ(reported(patient, patient), expect) << "patient " << patient;
    EXPECT_EQ(reported("aud", patient), expect) << "auditor for " << patient;
  }
  EXPECT_EQ(oracle("pat").size(), 5u);   // 4 dr reads + pat's own read
  EXPECT_EQ(oracle("lone").size(), 3u);  // 2 reads + 1 break-glass grant

  // RBAC: one patient cannot pull another's accounting.
  EXPECT_TRUE(vault_->AccountingOfDisclosures("pat", "lone")
                  .status()
                  .IsPermissionDenied());

  // The report is itself audited (a kSearch entry), so repeated pulls
  // grow the log — but never the disclosure set (kSearch is indexed by
  // neither rule). Idempotence check:
  auto again = oracle("pat");
  EXPECT_EQ(reported("aud", "pat"), again);
}

// ---- Concurrency (TSan target) -------------------------------------------

TEST_F(TransparencyTest, ConcurrentAppendPublishProve) {
  OpenVault(2);
  Bootstrap();
  MakeService(/*interval=*/8);
  ASSERT_TRUE(service_
                  ->AddWitness("w1", std::string(32, 'x'),
                               std::string(32, 'y'))
                  .ok());
  Create("pat", "seed");
  ASSERT_TRUE(service_->PublishAll().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> proved{0};

  std::thread writer([&] {
    for (int i = 0; i < 60; ++i) {
      Create("pat", "w-" + std::to_string(i));
      if (i % 10 == 9) {
        ASSERT_TRUE(service_->MaybeCheckpointAll().ok());
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> provers;
  for (int t = 0; t < 3; ++t) {
    provers.emplace_back([&] {
      // At least one full pass even if the writer wins the race to
      // the finish line; every pass races appends on a live log.
      while (!stop.load() || proved.load() == 0) {
        for (uint32_t k = 0; k < num_shards_; ++k) {
          auto latest = service_->LatestCosigned(k);
          if (!latest.ok()) continue;
          const SignedCheckpoint cp = latest->checkpoint;
          if (cp.tree_size == 0) continue;
          auto proof = service_->ProveEventAt(k, cp.tree_size - 1,
                                              cp.tree_size);
          ASSERT_TRUE(proof.ok()) << proof.status().ToString();
          ASSERT_TRUE(AuditLog::VerifyEventProof(*proof, cp.root).ok());
          proved.fetch_add(1);
        }
        service_->CollectStats();
      }
    });
  }
  writer.join();
  for (std::thread& t : provers) t.join();
  EXPECT_GT(proved.load(), 0);

  // Everything still verifies after the melee.
  ASSERT_TRUE(service_->PublishAll().ok());
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  auto stats = service_->CollectStats();
  EXPECT_EQ(stats.refusals, 0u);
  EXPECT_EQ(stats.tampered_witnesses, 0u);
}

// ---- The public HTTP surface, end to end ---------------------------------

TEST_F(TransparencyTest, HttpProofsVerifyAgainstAnyPublishedCheckpoint) {
  OpenVault(1);
  Bootstrap();
  MakeService();
  ASSERT_TRUE(service_
                  ->AddWitness("w1", std::string(32, 'h'),
                               std::string(32, 'i'))
                  .ok());
  StartServer();
  HttpClient client = MakeClient();
  std::string dr = Login(&client, "dr");
  std::string aud = Login(&client, "aud");
  ASSERT_FALSE(dr.empty());
  ASSERT_FALSE(aud.empty());

  // Epoch 1: some activity, then a published checkpoint the client
  // pins from the PUBLIC endpoint (no session).
  Value::Object create;
  create["patient_id"] = Value(std::string("pat"));
  create["content"] = Value(std::string("over-http"));
  auto created = client.Do("POST", "/v1/records",
                           Value(Value::Object(create)).Dump(), dr);
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  const RecordId early_record =
      Parsed(*created).as_object().at("record_id").as_string();

  ASSERT_TRUE(service_->PublishAll().ok());
  auto pin_resp = client.Do("GET", "/v1/transparency/checkpoint?shard=0");
  ASSERT_TRUE(pin_resp.ok());
  ASSERT_EQ(pin_resp->status, 200) << pin_resp->body;
  const Value::Object pin = Parsed(*pin_resp).as_object();
  const uint64_t pin_size = pin.at("tree_size").as_uint();
  const std::string pin_root = Unhex(pin.at("root"));
  ASSERT_EQ(pin.at("cosignatures").as_array().size(), 1u);

  // Epoch 2: the log grows; a later checkpoint supersedes the pin.
  for (int i = 0; i < 5; ++i) {
    auto more = client.Do("POST", "/v1/records",
                          Value(Value::Object(create)).Dump(), dr);
    ASSERT_TRUE(more.ok());
    ASSERT_EQ(more->status, 201);
  }
  ASSERT_TRUE(service_->PublishAll().ok());
  auto head_resp = client.Do("GET", "/v1/transparency/checkpoint?shard=0");
  ASSERT_TRUE(head_resp.ok());
  const Value::Object head = Parsed(*head_resp).as_object();
  const uint64_t head_size = head.at("tree_size").as_uint();
  const std::string head_root = Unhex(head.at("root"));
  ASSERT_GT(head_size, pin_size);

  // The unauthenticated posture endpoint reflects both.
  auto posture = client.Do("GET", "/v1/transparency");
  ASSERT_TRUE(posture.ok());
  ASSERT_EQ(posture->status, 200);
  EXPECT_EQ(Parsed(*posture).as_object().at("witnesses").as_uint(), 1u);

  // Inclusion proof for the EARLY event against the STALE pinned
  // checkpoint — the whole point of the proof-contract fix, over HTTP,
  // verified from nothing but the JSON.
  auto [shard, early_seq] = FindEvent(AuditAction::kCreate, early_record);
  ASSERT_LT(early_seq, pin_size);
  const std::string proof_path = "/v1/transparency/proof?shard=0&seq=" +
                                 std::to_string(early_seq);
  auto stale = client.Do("GET", proof_path + "&size=" +
                         std::to_string(pin_size), "", aud);
  ASSERT_TRUE(stale.ok());
  ASSERT_EQ(stale->status, 200) << stale->body;
  const Value::Object stale_obj = Parsed(*stale).as_object();
  EventProof stale_proof = ProofFromJson(stale_obj);
  EXPECT_EQ(stale_proof.tree_size, pin_size);
  EXPECT_TRUE(AuditLog::VerifyEventProof(stale_proof, pin_root).ok());
  // The response ships the matching signed checkpoint too.
  EXPECT_EQ(Unhex(stale_obj.at("checkpoint").as_object().at("root")),
            pin_root);

  // The same event under the LATEST checkpoint (size defaulted).
  auto fresh = client.Do("GET", proof_path, "", aud);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->status, 200) << fresh->body;
  EventProof fresh_proof = ProofFromJson(Parsed(*fresh).as_object());
  EXPECT_EQ(fresh_proof.tree_size, head_size);
  EXPECT_TRUE(AuditLog::VerifyEventProof(fresh_proof, head_root).ok());
  EXPECT_FALSE(AuditLog::VerifyEventProof(fresh_proof, pin_root).ok());

  // Consistency proof between the two published checkpoints, public.
  auto link = client.Do("GET", "/v1/transparency/consistency?shard=0&from=" +
                        std::to_string(pin_size) + "&to=" +
                        std::to_string(head_size));
  ASSERT_TRUE(link.ok());
  ASSERT_EQ(link->status, 200) << link->body;
  std::vector<std::string> link_proof;
  const Value::Object link_obj = Parsed(*link).as_object();
  for (const Value& node : link_obj.at("proof").as_array()) {
    link_proof.push_back(Unhex(node));
  }
  EXPECT_TRUE(crypto::MerkleTree::VerifyConsistency(
                  pin_size, pin_root, head_size, head_root, link_proof)
                  .ok());

  // Deterministic error mapping: unknown seq -> 404 (not 500),
  // unpublished size -> 404, event newer than checkpoint -> 400,
  // garbage -> 400, proofs without a session -> 401.
  auto unknown = client.Do(
      "GET", "/v1/transparency/proof?shard=0&seq=999999", "", aud);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404) << unknown->body;
  auto unpub = client.Do("GET", proof_path + "&size=" +
                         std::to_string(head_size + 1), "", aud);
  ASSERT_TRUE(unpub.ok());
  EXPECT_EQ(unpub->status, 404);
  auto newer = client.Do(
      "GET", "/v1/transparency/proof?shard=0&seq=" +
      std::to_string(head_size - 1) + "&size=" + std::to_string(pin_size),
      "", aud);
  ASSERT_TRUE(newer.ok());
  EXPECT_EQ(newer->status, 400) << newer->body;
  auto garbage = client.Do("GET", "/v1/transparency/proof?shard=0&seq=abc",
                           "", aud);
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400);
  auto noauth = client.Do("GET", proof_path);
  ASSERT_TRUE(noauth.ok());
  EXPECT_EQ(noauth->status, 401);

  // /v1/health now carries the transparency posture.
  auto health = client.Do("GET", "/v1/health");
  ASSERT_TRUE(health.ok());
  const Value::Object report = Parsed(*health).as_object();
  ASSERT_TRUE(report.count("transparency"));
  const Value::Object& tp = report.at("transparency").as_object();
  EXPECT_EQ(tp.at("checkpoints").as_uint(), 2u);
  EXPECT_EQ(tp.at("cosigns").as_uint(), 2u);
  EXPECT_EQ(tp.at("tampered_witnesses").as_uint(), 0u);
}

TEST_F(TransparencyTest, HttpDisclosuresAndProofRbac) {
  OpenVault(2);
  Bootstrap();
  MakeService();
  StartServer();
  HttpClient client = MakeClient();
  std::string dr = Login(&client, "dr");

  // dr treats pat: create + read = disclosures for pat. dr2 creates a
  // record for lone that pat must not be able to prove or report on.
  RecordId pat_record = Create("pat", "mine");
  ASSERT_TRUE(vault_->ReadRecord("dr", pat_record).ok());
  auto lone_id = vault_->CreateRecord("dr2", "lone", "text/plain", "theirs",
                                      {}, "hipaa-6y");
  ASSERT_TRUE(lone_id.ok());
  ASSERT_TRUE(service_->PublishAll().ok());

  std::string pat = Login(&client, "pat");
  std::string aud = Login(&client, "aud");
  ASSERT_FALSE(pat.empty());

  // A patient's own disclosure report, over HTTP, equals the embedded
  // API's answer.
  auto own = client.Do("GET", "/v1/transparency/disclosures", "", pat);
  ASSERT_TRUE(own.ok());
  ASSERT_EQ(own->status, 200) << own->body;
  const Value::Object own_obj = Parsed(*own).as_object();
  EXPECT_EQ(own_obj.at("patient").as_string(), "pat");
  auto embedded = vault_->AccountingOfDisclosures("aud", "pat");
  ASSERT_TRUE(embedded.ok());
  const auto& events = own_obj.at("events").as_array();
  ASSERT_EQ(events.size(), embedded->size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].as_object().at("seq").as_uint(), (*embedded)[i].seq);
  }

  // Patients see ONLY their own: another patient's report is 403, the
  // auditor's pull of anyone's is 200.
  auto other = client.Do("GET", "/v1/transparency/disclosures?patient=lone",
                         "", pat);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->status, 403) << other->body;
  auto aud_pull = client.Do(
      "GET", "/v1/transparency/disclosures?patient=lone", "", aud);
  ASSERT_TRUE(aud_pull.ok());
  EXPECT_EQ(aud_pull->status, 200);

  // Proof RBAC: a patient can prove events about their own record...
  auto [own_shard, own_seq] = FindEvent(AuditAction::kCreate, pat_record);
  auto own_proof = client.Do(
      "GET", "/v1/transparency/proof?shard=" + std::to_string(own_shard) +
      "&seq=" + std::to_string(own_seq), "", pat);
  ASSERT_TRUE(own_proof.ok());
  EXPECT_EQ(own_proof->status, 200) << own_proof->body;
  // ...but not someone else's (403 via the audited role gate), while
  // the auditor can prove anything.
  auto [lone_shard, lone_seq] = FindEvent(AuditAction::kCreate, *lone_id);
  const std::string lone_path =
      "/v1/transparency/proof?shard=" + std::to_string(lone_shard) +
      "&seq=" + std::to_string(lone_seq);
  auto denied = client.Do("GET", lone_path, "", pat);
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->status, 403) << denied->body;
  auto allowed = client.Do("GET", lone_path, "", aud);
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed->status, 200) << allowed->body;

  // The denial itself became an audit event (kAccessDenied) — the
  // transparency surface rides the same audit discipline as the rest.
  bool denial_logged = false;
  for (uint32_t k = 0; k < num_shards_; ++k) {
    for (const AuditEvent& e : vault_->shard(k)->audit()->SnapshotEvents()) {
      if (e.action == AuditAction::kAccessDenied && e.actor == "pat") {
        denial_logged = true;
      }
    }
  }
  EXPECT_TRUE(denial_logged);
}

}  // namespace
}  // namespace medvault::core
