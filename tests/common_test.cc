// Unit tests for the common substrate: Status, Result, Slice, coding,
// CRC32C, hex, clocks, and the deterministic PRNG.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "common/hex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace medvault {
namespace {

// ---- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::TamperDetected("x").IsTamperDetected());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::WormViolation("x").IsWormViolation());
  EXPECT_TRUE(Status::RetentionViolation("x").IsRetentionViolation());
  EXPECT_TRUE(Status::KeyDestroyed("x").IsKeyDestroyed());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::TamperDetected("hash chain broken");
  EXPECT_EQ(s.ToString(), "TamperDetected: hash chain broken");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, ErrorStatusIsNotOtherCodes) {
  Status s = Status::NotFound("x");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_FALSE(s.IsTamperDetected());
}

// ---- Result ---------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusConvertsToError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MEDVAULT_ASSIGN_OR_RETURN(int half, Half(x));
  MEDVAULT_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesValuesAndErrors) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 3 is odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

// ---- Slice ----------------------------------------------------------------

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice slice(s);
  EXPECT_EQ(slice.size(), 11u);
  EXPECT_EQ(slice[4], 'o');
  EXPECT_EQ(slice.ToString(), s);
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  EXPECT_EQ(s.size(), 4u);
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
}

TEST(SliceTest, EqualityIncludesEmbeddedNuls) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_TRUE(Slice(a) == Slice(a));
  EXPECT_TRUE(Slice(a) != Slice(b));
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").starts_with("abc"));
  EXPECT_FALSE(Slice("abcdef").starts_with("abd"));
  EXPECT_FALSE(Slice("ab").starts_with("abc"));
  EXPECT_TRUE(Slice("ab").starts_with(""));
}

// ---- Coding ----------------------------------------------------------------

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu, UINT32_MAX}) {
    std::string buf;
    PutFixed32(&buf, v);
    ASSERT_EQ(buf.size(), 4u);
    Slice in = buf;
    uint32_t out = 0;
    ASSERT_TRUE(GetFixed32(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1},
                     uint64_t{0xdeadbeefcafef00d}, UINT64_MAX}) {
    std::string buf;
    PutFixed64(&buf, v);
    ASSERT_EQ(buf.size(), 8u);
    Slice in = buf;
    uint64_t out = 0;
    ASSERT_TRUE(GetFixed64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x04030201);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  uint64_t v = GetParam();
  std::string buf;
  PutVarint64(&buf, v);
  EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  Slice in = buf;
  uint64_t out = 0;
  ASSERT_TRUE(GetVarint64(&in, &out));
  EXPECT_EQ(out, v);
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                      (1ull << 21) - 1, 1ull << 21, (1ull << 28) - 1,
                      1ull << 35, 1ull << 42, 1ull << 49, 1ull << 56,
                      UINT64_MAX));

TEST(CodingTest, Varint32RejectsOversizedValues) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  Slice in = buf;
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, VarintRejectsTruncatedInput) {
  std::string buf;
  PutVarint64(&buf, 1ull << 42);
  buf.resize(buf.size() - 1);
  Slice in = buf;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'z'));
  Slice in = buf;
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedRejectsLengthBeyondInput) {
  std::string buf;
  PutVarint64(&buf, 100);
  buf += "short";
  Slice in = buf;
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(CodingTest, MixedSequenceRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 7);
  PutVarint64(&buf, 1234567);
  PutLengthPrefixed(&buf, "payload");
  PutFixed64(&buf, 99);

  Slice in = buf;
  uint32_t a = 0;
  uint64_t b = 0, d = 0;
  std::string c;
  ASSERT_TRUE(GetFixed32(&in, &a));
  ASSERT_TRUE(GetVarint64(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedString(&in, &c));
  ASSERT_TRUE(GetFixed64(&in, &d));
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 1234567u);
  EXPECT_EQ(c, "payload");
  EXPECT_EQ(d, 99u);
}

// ---- CRC32C -----------------------------------------------------------------

TEST(Crc32cTest, KnownVector) {
  // Standard CRC-32C check value for "123456789".
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string data = "hello world, this is a checksum test";
  uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t split = crc32c::Extend(crc32c::Value(data.data(), 10),
                                  data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, UINT32_MAX}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);  // masking must change the value
  }
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("b", 1));
  EXPECT_NE(crc32c::Value("ab", 2), crc32c::Value("ba", 2));
}

// ---- Hex --------------------------------------------------------------------

TEST(HexTest, EncodeKnown) {
  std::string data("\x00\xff\x10\xab", 4);
  EXPECT_EQ(HexEncode(data), "00ff10ab");
}

TEST(HexTest, RoundTrip) {
  std::string data;
  for (int i = 0; i < 256; i++) data.push_back(static_cast<char>(i));
  auto decoded = HexDecode(HexEncode(data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(HexTest, DecodeAcceptsUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(HexEncode(*decoded), "deadbeef");
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_TRUE(HexDecode("abc").status().IsInvalidArgument());
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_TRUE(HexDecode("zz").status().IsInvalidArgument());
}

// ---- Clock ------------------------------------------------------------------

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceYears(30);
  EXPECT_EQ(clock.Now(), 150 + 30 * kMicrosPerYear);
}

TEST(ClockTest, SystemClockIsRoughlyNow) {
  SystemClock clock;
  Timestamp t1 = clock.Now();
  Timestamp t2 = clock.Now();
  EXPECT_GT(t1, 0);
  EXPECT_LE(t1, t2);
}

TEST(ClockTest, ThirtyYearsIsHuge) {
  // Sanity check on the constant used by the OSHA policy.
  EXPECT_GT(30 * kMicrosPerYear, 9 * 100000000000000LL);  // > ~28.5 years
}

// ---- Random -----------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, RangeStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(7);
  for (int i = 0; i < 50; i++) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random rng(7);
  int heads = 0;
  for (int i = 0; i < 10000; i++) {
    if (rng.Bernoulli(0.5)) heads++;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

}  // namespace
}  // namespace medvault
