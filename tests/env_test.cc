// Env tests run the same suite against MemEnv and PosixEnv (typed via a
// parameterized fixture), plus MemEnv/Fault-specific cases.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"
#include "storage/posix_env.h"

namespace medvault::storage {
namespace {

/// Provides an Env and a scratch directory for either backend.
class EnvProvider {
 public:
  virtual ~EnvProvider() = default;
  virtual Env* env() = 0;
  virtual std::string dir() = 0;
};

class MemEnvProvider : public EnvProvider {
 public:
  Env* env() override { return &env_; }
  std::string dir() override { return "scratch"; }

 private:
  MemEnv env_;
};

class PosixEnvProvider : public EnvProvider {
 public:
  PosixEnvProvider() {
    char tmpl[] = "/tmp/medvault-env-test-XXXXXX";
    dir_ = mkdtemp(tmpl);
  }
  ~PosixEnvProvider() override {
    std::string cmd = "rm -rf " + dir_;
    [[maybe_unused]] int rc = system(cmd.c_str());
  }
  Env* env() override { return PosixEnv::Default(); }
  std::string dir() override { return dir_; }

 private:
  std::string dir_;
};

enum class Backend { kMem, kPosix };

class EnvTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kMem) {
      provider_ = std::make_unique<MemEnvProvider>();
    } else {
      provider_ = std::make_unique<PosixEnvProvider>();
    }
    env_ = provider_->env();
    dir_ = provider_->dir();
    ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::unique_ptr<EnvProvider> provider_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  ASSERT_TRUE(WriteStringToFile(env_, "hello", Path("f"), true).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("f"), &data).ok());
  EXPECT_EQ(data, "hello");
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  std::string data;
  EXPECT_TRUE(ReadFileToString(env_, Path("nope"), &data).IsNotFound());
  std::unique_ptr<SequentialFile> f;
  EXPECT_TRUE(env_->NewSequentialFile(Path("nope"), &f).IsNotFound());
}

TEST_P(EnvTest, FileExists) {
  EXPECT_FALSE(env_->FileExists(Path("f")));
  ASSERT_TRUE(WriteStringToFile(env_, "x", Path("f"), false).ok());
  EXPECT_TRUE(env_->FileExists(Path("f")));
}

TEST_P(EnvTest, AppendableFileAppends) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewAppendableFile(Path("log"), &f).ok());
  ASSERT_TRUE(f->Append("one").ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env_->NewAppendableFile(Path("log"), &f).ok());
  ASSERT_TRUE(f->Append("two").ok());
  ASSERT_TRUE(f->Close().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("log"), &data).ok());
  EXPECT_EQ(data, "onetwo");
}

TEST_P(EnvTest, WritableFileTruncates) {
  ASSERT_TRUE(WriteStringToFile(env_, "long old contents", Path("f"),
                                false)
                  .ok());
  ASSERT_TRUE(WriteStringToFile(env_, "new", Path("f"), false).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("f"), &data).ok());
  EXPECT_EQ(data, "new");
}

TEST_P(EnvTest, RandomAccessReads) {
  ASSERT_TRUE(
      WriteStringToFile(env_, "0123456789", Path("f"), false).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_->NewRandomAccessFile(Path("f"), &f).ok());
  std::string out;
  ASSERT_TRUE(f->Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  ASSERT_TRUE(f->Read(8, 10, &out).ok());
  EXPECT_EQ(out, "89");  // short read at EOF
  ASSERT_TRUE(f->Read(100, 5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(EnvTest, SequentialReadAndSkip) {
  ASSERT_TRUE(
      WriteStringToFile(env_, "abcdefghij", Path("f"), false).ok());
  std::unique_ptr<SequentialFile> f;
  ASSERT_TRUE(env_->NewSequentialFile(Path("f"), &f).ok());
  std::string out;
  ASSERT_TRUE(f->Read(3, &out).ok());
  EXPECT_EQ(out, "abc");
  ASSERT_TRUE(f->Skip(2).ok());
  ASSERT_TRUE(f->Read(3, &out).ok());
  EXPECT_EQ(out, "fgh");
}

TEST_P(EnvTest, RandomRWFile) {
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TRUE(env_->NewRandomRWFile(Path("pages"), &f).ok());
  ASSERT_TRUE(f->WriteAt(0, "AAAA").ok());
  ASSERT_TRUE(f->WriteAt(8, "BBBB").ok());  // gap is zero-filled
  ASSERT_TRUE(f->WriteAt(2, "xy").ok());    // overwrite
  std::string out;
  ASSERT_TRUE(f->ReadAt(0, 12, &out).ok());
  ASSERT_EQ(out.size(), 12u);
  EXPECT_EQ(out.substr(0, 4), "AAxy");
  EXPECT_EQ(out.substr(8, 4), "BBBB");
}

TEST_P(EnvTest, GetFileSize) {
  ASSERT_TRUE(WriteStringToFile(env_, "12345", Path("f"), false).ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(Path("f"), &size).ok());
  EXPECT_EQ(size, 5u);
  EXPECT_TRUE(env_->GetFileSize(Path("nope"), &size).IsNotFound());
}

TEST_P(EnvTest, RenameFile) {
  ASSERT_TRUE(WriteStringToFile(env_, "data", Path("a"), false).ok());
  ASSERT_TRUE(env_->RenameFile(Path("a"), Path("b")).ok());
  EXPECT_FALSE(env_->FileExists(Path("a")));
  std::string out;
  ASSERT_TRUE(ReadFileToString(env_, Path("b"), &out).ok());
  EXPECT_EQ(out, "data");
  EXPECT_TRUE(env_->RenameFile(Path("nope"), Path("c")).IsNotFound());
}

TEST_P(EnvTest, RemoveFile) {
  ASSERT_TRUE(WriteStringToFile(env_, "x", Path("f"), false).ok());
  ASSERT_TRUE(env_->RemoveFile(Path("f")).ok());
  EXPECT_FALSE(env_->FileExists(Path("f")));
  EXPECT_TRUE(env_->RemoveFile(Path("f")).IsNotFound());
}

TEST_P(EnvTest, GetChildrenListsDirectFiles) {
  ASSERT_TRUE(WriteStringToFile(env_, "1", Path("one"), false).ok());
  ASSERT_TRUE(WriteStringToFile(env_, "2", Path("two"), false).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_NE(std::find(children.begin(), children.end(), "one"),
            children.end());
  EXPECT_NE(std::find(children.begin(), children.end(), "two"),
            children.end());
}

TEST_P(EnvTest, UnsafeOverwriteMutatesBytes) {
  ASSERT_TRUE(WriteStringToFile(env_, "immutable?", Path("f"), false).ok());
  ASSERT_TRUE(env_->UnsafeOverwrite(Path("f"), 0, "IMMUTABLE!").ok());
  std::string out;
  ASSERT_TRUE(ReadFileToString(env_, Path("f"), &out).ok());
  EXPECT_EQ(out, "IMMUTABLE!");
}

TEST_P(EnvTest, UnsafeOverwriteCannotExtend) {
  ASSERT_TRUE(WriteStringToFile(env_, "short", Path("f"), false).ok());
  EXPECT_TRUE(
      env_->UnsafeOverwrite(Path("f"), 3, "too long").IsInvalidArgument());
}

TEST_P(EnvTest, UnsafeTruncateShrinks) {
  ASSERT_TRUE(WriteStringToFile(env_, "0123456789", Path("f"), false).ok());
  ASSERT_TRUE(env_->UnsafeTruncate(Path("f"), 4).ok());
  std::string out;
  ASSERT_TRUE(ReadFileToString(env_, Path("f"), &out).ok());
  EXPECT_EQ(out, "0123");
}

INSTANTIATE_TEST_SUITE_P(Backends, EnvTest,
                         ::testing::Values(Backend::kMem, Backend::kPosix),
                         [](const auto& info) {
                           return info.param == Backend::kMem ? "Mem"
                                                              : "Posix";
                         });

// ---- MemEnv-specific ---------------------------------------------------------

TEST(MemEnvTest, TotalBytesTracksContents) {
  MemEnv env;
  EXPECT_EQ(env.TotalBytes(), 0u);
  ASSERT_TRUE(WriteStringToFile(&env, "12345", "a", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env, "123", "b", false).ok());
  EXPECT_EQ(env.TotalBytes(), 8u);
}

TEST(MemEnvTest, ReadersSeeLiveAppends) {
  MemEnv env;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewAppendableFile("f", &w).ok());
  ASSERT_TRUE(w->Append("first").ok());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("f", &r).ok());
  ASSERT_TRUE(w->Append("second").ok());
  std::string out;
  ASSERT_TRUE(r->Read(0, 100, &out).ok());
  EXPECT_EQ(out, "firstsecond");
}

TEST(MemEnvTest, CrashDropsUnsyncedTail) {
  MemEnv env;
  env.SetCrashTrackingEnabled(true);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("f", &w).ok());
  ASSERT_TRUE(w->Append("durable").ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Append("volatile").ok());

  env.CrashAndRecover(CrashMode::kDropUnsynced);
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "f", &out).ok());
  EXPECT_EQ(out, "durable");
}

TEST(MemEnvTest, CrashKeepPartialKeepsPrefixOfUnsyncedTail) {
  MemEnv env;
  env.SetCrashTrackingEnabled(true);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("f", &w).ok());
  ASSERT_TRUE(w->Append("durable-").ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Append("unsynced-tail").ok());

  env.CrashAndRecover(CrashMode::kKeepPartial, /*seed=*/7);
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "f", &out).ok());
  // The synced prefix always survives; some seed-determined prefix of
  // the unsynced tail may.
  ASSERT_GE(out.size(), std::string("durable-").size());
  EXPECT_EQ(out.substr(0, 8), "durable-");
  EXPECT_LE(out.size(), std::string("durable-unsynced-tail").size());
  EXPECT_EQ(out, std::string("durable-unsynced-tail").substr(0, out.size()));
}

TEST(MemEnvTest, CrashTrackingEnableTreatsExistingBytesAsDurable) {
  MemEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "already-there", "f", false).ok());
  env.SetCrashTrackingEnabled(true);
  env.CrashAndRecover(CrashMode::kDropUnsynced);
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "f", &out).ok());
  EXPECT_EQ(out, "already-there");
}

TEST(MemEnvTest, SanctionedTruncateIsDurable) {
  // Env::Truncate models recovery cutting a torn tail; the cut must not
  // resurrect after a crash.
  MemEnv env;
  env.SetCrashTrackingEnabled(true);
  ASSERT_TRUE(WriteStringToFile(&env, "0123456789", "f", true).ok());
  ASSERT_TRUE(env.Truncate("f", 4).ok());
  env.CrashAndRecover(CrashMode::kDropUnsynced);
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "f", &out).ok());
  EXPECT_EQ(out, "0123");
  // Refuses to extend (that would fabricate bytes).
  EXPECT_FALSE(env.Truncate("f", 100).ok());
}

TEST(MemEnvTest, UnsafeTamperingSurvivesCrash) {
  // Adversary writes go to the platters: tampered bytes must still be
  // there (detectable!) after power loss, not be undone by it.
  MemEnv env;
  env.SetCrashTrackingEnabled(true);
  ASSERT_TRUE(WriteStringToFile(&env, "authentic-bytes", "f", true).ok());
  ASSERT_TRUE(env.UnsafeOverwrite("f", 0, "TAMPERED!").ok());
  env.CrashAndRecover(CrashMode::kDropUnsynced);
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "f", &out).ok());
  EXPECT_EQ(out, "TAMPERED!-bytes");
}

// ---- FaultInjectionEnv ---------------------------------------------------------

TEST(FaultEnvTest, PassesThroughWhenHealthy) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&env, "data", "f", true).ok());
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "f", &out).ok());
  EXPECT_EQ(out, "data");
  EXPECT_GT(env.writes(), 0u);
  EXPECT_GT(env.reads(), 0u);
  EXPECT_GT(env.syncs(), 0u);
}

TEST(FaultEnvTest, FailWritesInjectsIoError) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  env.FailWrites(true);
  EXPECT_TRUE(WriteStringToFile(&env, "data", "f", false).IsIoError());
  env.FailWrites(false);
  EXPECT_TRUE(WriteStringToFile(&env, "data", "f", false).ok());
}

TEST(FaultEnvTest, FailAfterNWrites) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  env.FailAfterWrites(2);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", &f).ok());
  EXPECT_TRUE(f->Append("1").ok());
  EXPECT_TRUE(f->Append("2").ok());
  EXPECT_TRUE(f->Append("3").IsIoError());
  EXPECT_TRUE(f->Append("4").IsIoError());
}

TEST(FaultEnvTest, RandomRWWritesAlsoFail) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TRUE(env.NewRandomRWFile("f", &f).ok());
  ASSERT_TRUE(f->WriteAt(0, "ok").ok());
  env.FailWrites(true);
  EXPECT_TRUE(f->WriteAt(0, "no").IsIoError());
}

}  // namespace
}  // namespace medvault::storage
