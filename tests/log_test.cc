// Record-oriented log tests: round trips, block-spanning records,
// corruption and truncation handling.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/log_format.h"
#include "storage/log_reader.h"
#include "storage/log_recover.h"
#include "storage/log_writer.h"
#include "storage/mem_env.h"

namespace medvault::storage::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  std::unique_ptr<Writer> NewWriter(const std::string& name = "log") {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(name, &file).ok());
    return std::make_unique<Writer>(std::move(file));
  }

  std::unique_ptr<Reader> NewReader(const std::string& name = "log") {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile(name, &file).ok());
    return std::make_unique<Reader>(std::move(file));
  }

  std::vector<std::string> ReadAll(const std::string& name = "log") {
    auto reader = NewReader(name);
    std::vector<std::string> records;
    std::string record;
    while (reader->ReadRecord(&record)) records.push_back(record);
    last_status_ = reader->status();
    return records;
  }

  MemEnv env_;
  Status last_status_;
};

TEST_F(LogTest, EmptyLogReadsNothing) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_TRUE(ReadAll().empty());
  EXPECT_TRUE(last_status_.ok());
}

TEST_F(LogTest, SimpleRoundTrip) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("alpha").ok());
  ASSERT_TRUE(writer->AddRecord("beta").ok());
  ASSERT_TRUE(writer->AddRecord("").ok());  // empty records are legal
  ASSERT_TRUE(writer->Close().ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "beta");
  EXPECT_TRUE(records[2].empty());
  EXPECT_TRUE(last_status_.ok());
}

TEST_F(LogTest, RecordLargerThanBlockFragments) {
  std::string big(3 * kBlockSize, 'x');
  for (size_t i = 0; i < big.size(); i++) big[i] = static_cast<char>(i % 251);
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("before").ok());
  ASSERT_TRUE(writer->AddRecord(big).ok());
  ASSERT_TRUE(writer->AddRecord("after").ok());
  ASSERT_TRUE(writer->Close().ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "before");
  EXPECT_EQ(records[1], big);
  EXPECT_EQ(records[2], "after");
}

TEST_F(LogTest, RecordExactlyFillingBlockBoundary) {
  // Payload sized so header+payload lands exactly at the block edge.
  std::string payload(kBlockSize - kHeaderSize, 'q');
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(payload).ok());
  ASSERT_TRUE(writer->AddRecord("next").ok());
  ASSERT_TRUE(writer->Close().ok());
  auto records = ReadAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], payload);
  EXPECT_EQ(records[1], "next");
}

TEST_F(LogTest, TrailerSmallerThanHeaderIsSkipped) {
  // Leave 1..6 bytes at the end of the first block.
  for (int leftover = 1; leftover < kHeaderSize; leftover++) {
    std::string name = "log-" + std::to_string(leftover);
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_.NewWritableFile(name, &file).ok());
    Writer writer(std::move(file));
    std::string first(kBlockSize - kHeaderSize - leftover, 'a');
    ASSERT_TRUE(writer.AddRecord(first).ok());
    ASSERT_TRUE(writer.AddRecord("tail").ok());

    auto records = ReadAll(name);
    ASSERT_EQ(records.size(), 2u) << "leftover=" << leftover;
    EXPECT_EQ(records[1], "tail");
  }
}

TEST_F(LogTest, ManyRandomSizedRecords) {
  Random rng(1234);
  std::vector<std::string> expected;
  auto writer = NewWriter();
  for (int i = 0; i < 500; i++) {
    size_t len = rng.Uniform(2000);
    std::string record(len, '\0');
    for (size_t j = 0; j < len; j++) {
      record[j] = static_cast<char>(rng.Uniform(256));
    }
    expected.push_back(record);
    ASSERT_TRUE(writer->AddRecord(record).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  auto records = ReadAll();
  ASSERT_EQ(records.size(), expected.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(records[i], expected[i]) << "record " << i;
  }
}

TEST_F(LogTest, ReopenAndAppendContinues) {
  {
    auto writer = NewWriter();
    ASSERT_TRUE(writer->AddRecord("first").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &size).ok());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewAppendableFile("log", &file).ok());
  Writer writer(std::move(file), size);
  ASSERT_TRUE(writer.AddRecord("second").ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "second");
}

TEST_F(LogTest, CorruptedPayloadStopsWithCorruption) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("record one is long enough").ok());
  ASSERT_TRUE(writer->AddRecord("record two").ok());
  ASSERT_TRUE(writer->Close().ok());

  // Flip a payload byte in the first record.
  ASSERT_TRUE(env_.UnsafeOverwrite("log", kHeaderSize + 3, "X").ok());
  auto records = ReadAll();
  EXPECT_TRUE(records.empty());
  EXPECT_TRUE(last_status_.IsCorruption());
}

TEST_F(LogTest, CorruptedChecksumDetected) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("payload").ok());
  ASSERT_TRUE(writer->Close().ok());
  ASSERT_TRUE(env_.UnsafeOverwrite("log", 0, "\xde\xad\xbe\xef").ok());
  ReadAll();
  EXPECT_TRUE(last_status_.IsCorruption());
}

TEST_F(LogTest, TornFinalRecordIsCleanEof) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("complete").ok());
  ASSERT_TRUE(writer->AddRecord("torn-record-payload").ok());
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &size).ok());
  // Cut into the middle of the second record: WAL recovery semantics
  // treat a torn tail as clean EOF, not corruption.
  ASSERT_TRUE(env_.UnsafeTruncate("log", size - 5).ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "complete");
  EXPECT_TRUE(last_status_.ok());
}

TEST_F(LogTest, TornHeaderIsCleanEof) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("complete").ok());
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &size).ok());
  // Append 3 bytes of a new header then "crash".
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_.NewAppendableFile("log", &f).ok());
  ASSERT_TRUE(f->Append("\x01\x02\x03").ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(last_status_.ok());
}

TEST_F(LogTest, CorruptionMidFileIsNotTreatedAsTornTail) {
  // Damage in the middle of the log — with intact records after it —
  // must surface as corruption (tamper evidence), never be "recovered"
  // like a torn tail.
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("first-record-payload").ok());
  ASSERT_TRUE(writer->AddRecord("second-record-payload").ok());
  ASSERT_TRUE(writer->AddRecord("third-record-payload").ok());
  ASSERT_TRUE(writer->Close().ok());
  // Flip a payload byte inside the SECOND record.
  uint64_t second_offset = 2 * kHeaderSize + 20 + 3;
  ASSERT_TRUE(env_.UnsafeOverwrite("log", second_offset, "X").ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first-record-payload");
  EXPECT_TRUE(last_status_.IsCorruption());
}

TEST_F(LogTest, ValidEndTracksLastCompleteRecord) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("one").ok());
  ASSERT_TRUE(writer->AddRecord("two").ok());
  uint64_t complete_size = writer->FileOffset();
  ASSERT_TRUE(writer->AddRecord("torn-away-payload").ok());
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &size).ok());
  ASSERT_TRUE(env_.UnsafeTruncate("log", size - 4).ok());

  auto reader = NewReader();
  std::string record;
  while (reader->ReadRecord(&record)) {
  }
  ASSERT_TRUE(reader->status().ok());
  EXPECT_EQ(reader->ValidEnd(), complete_size);
}

TEST_F(LogTest, ValidEndExcludesWholeTornFragmentedRecord) {
  // A record spanning several blocks torn in a LATER fragment must be
  // cut as a whole — its earlier (individually valid) fragments carry
  // no complete record.
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("intact").ok());
  uint64_t intact_size = writer->FileOffset();
  std::string big(2 * kBlockSize + 100, 'z');
  ASSERT_TRUE(writer->AddRecord(big).ok());
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &size).ok());
  // Cut inside the big record's final fragment.
  ASSERT_TRUE(env_.UnsafeTruncate("log", size - 50).ok());

  auto reader = NewReader();
  std::string record;
  std::vector<std::string> records;
  while (reader->ReadRecord(&record)) records.push_back(record);
  ASSERT_TRUE(reader->status().ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "intact");
  EXPECT_EQ(reader->ValidEnd(), intact_size);
}

TEST_F(LogTest, OpenLogForAppendTruncatesTornTailAndContinues) {
  {
    auto writer = NewWriter();
    ASSERT_TRUE(writer->AddRecord("kept-1").ok());
    ASSERT_TRUE(writer->AddRecord("kept-2").ok());
    ASSERT_TRUE(writer->AddRecord("torn-record-payload").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &size).ok());
  ASSERT_TRUE(env_.UnsafeTruncate("log", size - 6).ok());

  std::vector<std::string> replayed;
  LogOpenResult res;
  ASSERT_TRUE(OpenLogForAppend(&env_, "log",
                               [&](const Slice& rec) {
                                 replayed.push_back(rec.ToString());
                                 return Status::OK();
                               },
                               &res)
                  .ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0], "kept-1");
  EXPECT_EQ(replayed[1], "kept-2");
  EXPECT_GT(res.dropped_bytes, 0u);
  uint64_t after = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &after).ok());
  EXPECT_EQ(after, res.valid_size);

  // The returned writer appends seamlessly past the cut.
  ASSERT_TRUE(res.writer->AddRecord("after-recovery").ok());
  auto records = ReadAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2], "after-recovery");
  EXPECT_TRUE(last_status_.ok());
}

TEST_F(LogTest, OpenLogForAppendPropagatesMidFileCorruption) {
  {
    auto writer = NewWriter();
    ASSERT_TRUE(writer->AddRecord("first-record-payload").ok());
    ASSERT_TRUE(writer->AddRecord("second-record-payload").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  ASSERT_TRUE(env_.UnsafeOverwrite("log", kHeaderSize + 2, "X").ok());
  uint64_t before = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &before).ok());

  LogOpenResult res;
  Status s = OpenLogForAppend(
      &env_, "log", [](const Slice&) { return Status::OK(); }, &res);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  // Corruption is tamper evidence: the file must NOT have been cut.
  uint64_t after = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &after).ok());
  EXPECT_EQ(after, before);
}

TEST_F(LogTest, FileOffsetTracksBytes) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("12345").ok());
  EXPECT_EQ(writer->FileOffset(), static_cast<uint64_t>(kHeaderSize) + 5);
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("log", &size).ok());
  EXPECT_EQ(writer->FileOffset(), size);
}

}  // namespace
}  // namespace medvault::storage::log
