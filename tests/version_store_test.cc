// Version store tests: WORM versioning, correction chains, decryption,
// crypto-shredding interplay, verification and tamper detection,
// raw export/import for migration.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/coding.h"
#include "core/keystore.h"
#include "core/version_store.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class VersionStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keystore_ = std::make_unique<KeyStore>(&env_, "vault/keys.db",
                                           std::string(32, 'M'), "seed");
    ASSERT_TRUE(keystore_->Open().ok());
    OpenStore();
  }

  void OpenStore() {
    store_ = std::make_unique<VersionStore>(&env_, "vault", keystore_.get());
    ASSERT_TRUE(store_->Open().ok());
  }

  Result<VersionHeader> Append(const std::string& record_id,
                               const std::string& content,
                               const std::string& reason = "") {
    return store_->AppendVersion(record_id, "dr-a", "text/plain", reason,
                                 content, next_time_++);
  }

  void CreateRecord(const std::string& record_id,
                    const std::string& content) {
    ASSERT_TRUE(keystore_->CreateKey(record_id).ok());
    ASSERT_TRUE(Append(record_id, content).ok());
  }

  storage::MemEnv env_;
  std::unique_ptr<KeyStore> keystore_;
  std::unique_ptr<VersionStore> store_;
  Timestamp next_time_ = 1000;
};

TEST_F(VersionStoreTest, WriteAndReadBack) {
  CreateRecord("r-1", "initial clinical note");
  auto v = store_->ReadLatest("r-1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->plaintext, "initial clinical note");
  EXPECT_EQ(v->header.version, 1u);
  EXPECT_EQ(v->header.author, "dr-a");
  EXPECT_TRUE(v->header.prev_version_hash.empty());
}

TEST_F(VersionStoreTest, RequiresExistingKey) {
  EXPECT_TRUE(Append("r-none", "content").status().IsNotFound());
}

TEST_F(VersionStoreTest, CorrectionsChainAndPreserveHistory) {
  CreateRecord("r-1", "v1 content");
  ASSERT_TRUE(Append("r-1", "v2 corrected", "typo in dosage").ok());
  ASSERT_TRUE(Append("r-1", "v3 corrected again", "wrong date").ok());

  EXPECT_EQ(*store_->LatestVersion("r-1"), 3u);
  EXPECT_EQ(store_->ReadVersion("r-1", 1)->plaintext, "v1 content");
  EXPECT_EQ(store_->ReadVersion("r-1", 2)->plaintext, "v2 corrected");
  EXPECT_EQ(store_->ReadLatest("r-1")->plaintext, "v3 corrected again");

  auto history = store_->History("r-1");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 3u);
  EXPECT_TRUE((*history)[0].prev_version_hash.empty());
  EXPECT_FALSE((*history)[1].prev_version_hash.empty());
  EXPECT_EQ((*history)[1].reason, "typo in dosage");
  EXPECT_EQ((*history)[2].reason, "wrong date");
}

TEST_F(VersionStoreTest, CiphertextOnDiskHidesPlaintext) {
  CreateRecord("r-1", "SECRETDIAGNOSIS");
  bool found = false;
  ASSERT_TRUE(store_->segments()
                  ->ForEachEntry([&](const storage::EntryHandle&,
                                     const Slice& data) {
                    if (data.ToString().find("SECRETDIAGNOSIS") !=
                        std::string::npos) {
                      found = true;
                    }
                    return true;
                  })
                  .ok());
  EXPECT_FALSE(found);
}

TEST_F(VersionStoreTest, NoSuchVersionOrRecord) {
  CreateRecord("r-1", "content");
  EXPECT_TRUE(store_->ReadVersion("r-1", 0).status().IsNotFound());
  EXPECT_TRUE(store_->ReadVersion("r-1", 2).status().IsNotFound());
  EXPECT_TRUE(store_->ReadLatest("ghost").status().IsNotFound());
  EXPECT_TRUE(store_->History("ghost").status().IsNotFound());
}

TEST_F(VersionStoreTest, CryptoShreddingMakesAllVersionsUnreadable) {
  CreateRecord("r-1", "v1");
  ASSERT_TRUE(Append("r-1", "v2", "fix").ok());
  ASSERT_TRUE(keystore_->DestroyKey("r-1").ok());

  EXPECT_TRUE(store_->ReadVersion("r-1", 1).status().IsKeyDestroyed());
  EXPECT_TRUE(store_->ReadVersion("r-1", 2).status().IsKeyDestroyed());
  // Appending new versions is impossible too.
  EXPECT_TRUE(Append("r-1", "v3").status().IsKeyDestroyed());
  // But integrity of the (unreadable) history remains verifiable.
  EXPECT_TRUE(store_->VerifyRecord("r-1").ok());
  // And headers remain accessible for audit purposes.
  auto history = store_->History("r-1");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 2u);
}

TEST_F(VersionStoreTest, VerifyDetectsPayloadTamper) {
  CreateRecord("r-1", std::string(200, 'x'));
  ASSERT_TRUE(store_->VerifyRecord("r-1").ok());

  // Insider flips a byte in the middle of the (only) segment entry.
  auto ids = store_->segments()->SegmentIds();
  std::string file = store_->segments()->SegmentFileName(ids.front());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize(file, &size).ok());
  ASSERT_TRUE(env_.UnsafeOverwrite(file, size / 2, "T").ok());

  EXPECT_TRUE(store_->VerifyRecord("r-1").IsTamperDetected());
  EXPECT_FALSE(store_->ReadLatest("r-1").ok());
  EXPECT_TRUE(store_->VerifyAllRecords().IsTamperDetected());
}

TEST_F(VersionStoreTest, SurvivesReopen) {
  CreateRecord("r-1", "persisted content");
  ASSERT_TRUE(Append("r-1", "v2", "fix").ok());
  store_.reset();
  OpenStore();
  EXPECT_EQ(*store_->LatestVersion("r-1"), 2u);
  EXPECT_EQ(store_->ReadLatest("r-1")->plaintext, "v2");
  EXPECT_TRUE(store_->VerifyRecord("r-1").ok());
  // And appends continue the chain.
  ASSERT_TRUE(Append("r-1", "v3", "more").ok());
  EXPECT_TRUE(store_->VerifyRecord("r-1").ok());
}

TEST_F(VersionStoreTest, MultipleRecordsIndependent) {
  CreateRecord("r-1", "patient one");
  CreateRecord("r-2", "patient two");
  ASSERT_TRUE(Append("r-2", "patient two v2", "fix").ok());
  EXPECT_EQ(store_->RecordIds().size(), 2u);
  EXPECT_EQ(store_->TotalVersionCount(), 3u);
  EXPECT_EQ(*store_->LatestVersion("r-1"), 1u);
  EXPECT_EQ(*store_->LatestVersion("r-2"), 2u);
  EXPECT_EQ(store_->AllVersionHashes().size(), 3u);
}

TEST_F(VersionStoreTest, RawExportImportPreservesBytes) {
  CreateRecord("r-1", "migrate me");
  ASSERT_TRUE(Append("r-1", "migrate me v2", "fix").ok());

  storage::MemEnv env_b;
  KeyStore ks_b(&env_b, "vault/keys.db", std::string(32, 'B'), "seed-b");
  ASSERT_TRUE(ks_b.Open().ok());
  VersionStore target(&env_b, "vault", &ks_b);
  ASSERT_TRUE(target.Open().ok());

  // Key custody moves first, then raw bytes.
  ASSERT_TRUE(ks_b.ImportKey("r-1", *keystore_->GetKey("r-1"), false).ok());
  ASSERT_TRUE(store_
                  ->ForEachRawVersion(
                      "r-1",
                      [&](uint32_t version, const Slice& raw,
                          const std::string& hash) -> Status {
                        return target.ImportRawVersion("r-1", raw);
                      })
                  .ok());

  EXPECT_EQ(target.ReadVersion("r-1", 1)->plaintext, "migrate me");
  EXPECT_EQ(target.ReadVersion("r-1", 2)->plaintext, "migrate me v2");
  EXPECT_TRUE(target.VerifyRecord("r-1").ok());
  // Hash-identical content.
  EXPECT_EQ(target.AllVersionHashes(), store_->AllVersionHashes());
}

TEST_F(VersionStoreTest, ImportEnforcesOrderAndChain) {
  CreateRecord("r-1", "v1");
  ASSERT_TRUE(Append("r-1", "v2", "fix").ok());

  storage::MemEnv env_b;
  KeyStore ks_b(&env_b, "vault/keys.db", std::string(32, 'B'), "seed-b");
  ASSERT_TRUE(ks_b.Open().ok());
  VersionStore target(&env_b, "vault", &ks_b);
  ASSERT_TRUE(target.Open().ok());

  std::vector<std::string> raws;
  ASSERT_TRUE(store_
                  ->ForEachRawVersion("r-1",
                                      [&](uint32_t, const Slice& raw,
                                          const std::string&) -> Status {
                                        raws.push_back(raw.ToString());
                                        return Status::OK();
                                      })
                  .ok());
  ASSERT_EQ(raws.size(), 2u);
  // Out of order: v2 first must be rejected.
  EXPECT_FALSE(target.ImportRawVersion("r-1", raws[1]).ok());
  ASSERT_TRUE(target.ImportRawVersion("r-1", raws[0]).ok());
  // Duplicate v1 rejected.
  EXPECT_FALSE(target.ImportRawVersion("r-1", raws[0]).ok());
  ASSERT_TRUE(target.ImportRawVersion("r-1", raws[1]).ok());
  // Wrong record id rejected.
  EXPECT_TRUE(
      target.ImportRawVersion("r-other", raws[0]).IsInvalidArgument());
}

TEST_F(VersionStoreTest, HeaderTamperInvalidatesAead) {
  // Even if an insider rewrites the cleartext header (and fixes the
  // segment CRC by rewriting the whole frame), the AEAD binds the
  // payload to the original header. We simulate by crafting an entry
  // with a modified header but the original ciphertext.
  CreateRecord("r-1", "bind me");
  std::string raw;
  ASSERT_TRUE(store_
                  ->ForEachRawVersion("r-1",
                                      [&](uint32_t, const Slice& r,
                                          const std::string&) -> Status {
                                        raw = r.ToString();
                                        return Status::OK();
                                      })
                  .ok());
  auto parsed = ParseVersionEntry(raw);
  ASSERT_TRUE(parsed.ok());
  VersionHeader forged = parsed->first;
  forged.author = "mallory";  // rewrite authorship

  std::string forged_entry;
  std::string header_bytes = forged.Encode();
  PutVarint64(&forged_entry, header_bytes.size());
  forged_entry += header_bytes;
  forged_entry.append(parsed->second.data(), parsed->second.size());

  storage::MemEnv env_b;
  KeyStore ks_b(&env_b, "vault/keys.db", std::string(32, 'B'), "seed-b");
  ASSERT_TRUE(ks_b.Open().ok());
  ASSERT_TRUE(ks_b.ImportKey("r-1", *keystore_->GetKey("r-1"), false).ok());
  VersionStore target(&env_b, "vault", &ks_b);
  ASSERT_TRUE(target.Open().ok());
  ASSERT_TRUE(target.ImportRawVersion("r-1", forged_entry).ok());
  // Decryption must fail: the AEAD tag covers the genuine header.
  EXPECT_TRUE(target.ReadVersion("r-1", 1).status().IsTamperDetected());
}

}  // namespace
}  // namespace medvault::core
