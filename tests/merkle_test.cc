// Merkle tree tests: RFC 6962 hashing vectors, inclusion proofs,
// consistency proofs, and adversarial proof manipulation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.h"
#include "crypto/merkle.h"

namespace medvault::crypto {
namespace {

// ---- RFC 6962 structure ---------------------------------------------------

TEST(MerkleTest, EmptyRootIsSha256OfEmpty) {
  MerkleTree tree;
  EXPECT_EQ(HexEncode(tree.Root()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  MerkleTree tree;
  tree.Append("entry");
  EXPECT_EQ(tree.Root(), MerkleTree::HashLeaf("entry"));
}

TEST(MerkleTest, TwoLeavesRootIsNodeHash) {
  MerkleTree tree;
  tree.Append("a");
  tree.Append("b");
  EXPECT_EQ(tree.Root(), MerkleTree::HashNode(MerkleTree::HashLeaf("a"),
                                              MerkleTree::HashLeaf("b")));
}

TEST(MerkleTest, LeafAndNodeHashesAreDomainSeparated) {
  // Leaf(x) must never equal Node(y,z) structure confusion.
  EXPECT_NE(MerkleTree::HashLeaf(""), MerkleTree::EmptyRoot());
  EXPECT_NE(MerkleTree::HashLeaf("ab"),
            MerkleTree::HashNode("a", "b"));
}

TEST(MerkleTest, UnbalancedTreeStructure) {
  // RFC 6962: MTH(D[3]) = h(MTH(D[0:2]), MTH(D[2:3])).
  MerkleTree tree;
  tree.Append("a");
  tree.Append("b");
  tree.Append("c");
  std::string left = MerkleTree::HashNode(MerkleTree::HashLeaf("a"),
                                          MerkleTree::HashLeaf("b"));
  EXPECT_EQ(tree.Root(),
            MerkleTree::HashNode(left, MerkleTree::HashLeaf("c")));
}

TEST(MerkleTest, RootAtReproducesHistoricalRoots) {
  MerkleTree tree;
  std::vector<std::string> roots;
  for (int i = 0; i < 20; i++) {
    roots.push_back(tree.Root());
    tree.Append("leaf-" + std::to_string(i));
  }
  for (int i = 0; i < 20; i++) {
    auto r = tree.RootAt(i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, roots[i]) << "size " << i;
  }
  EXPECT_TRUE(tree.RootAt(21).status().IsInvalidArgument());
}

TEST(MerkleTest, AppendReturnsSequentialIndexes) {
  MerkleTree tree;
  EXPECT_EQ(tree.Append("a"), 0u);
  EXPECT_EQ(tree.Append("b"), 1u);
  EXPECT_EQ(tree.size(), 2u);
}

// ---- Inclusion proofs --------------------------------------------------------

class InclusionProofTest : public ::testing::TestWithParam<int> {};

TEST_P(InclusionProofTest, EveryLeafProvableAtEverySize) {
  const int n = GetParam();
  MerkleTree tree;
  for (int i = 0; i < n; i++) tree.Append("leaf-" + std::to_string(i));

  for (uint64_t size = 1; size <= static_cast<uint64_t>(n); size++) {
    auto root = tree.RootAt(size);
    ASSERT_TRUE(root.ok());
    for (uint64_t idx = 0; idx < size; idx++) {
      auto proof = tree.InclusionProof(idx, size);
      ASSERT_TRUE(proof.ok()) << idx << "/" << size;
      std::string leaf_hash =
          MerkleTree::HashLeaf("leaf-" + std::to_string(idx));
      EXPECT_TRUE(MerkleTree::VerifyInclusion(leaf_hash, idx, size, *proof,
                                              *root)
                      .ok())
          << idx << "/" << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, InclusionProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                           17, 33));

TEST(MerkleTest, InclusionProofSizeIsLogarithmic) {
  MerkleTree tree;
  for (int i = 0; i < 1024; i++) tree.Append("x" + std::to_string(i));
  auto proof = tree.InclusionProof(500, 1024);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->size(), 10u);  // exactly log2(1024)
}

TEST(MerkleTest, InclusionProofWrongLeafFails) {
  MerkleTree tree;
  for (int i = 0; i < 10; i++) tree.Append("leaf-" + std::to_string(i));
  auto proof = tree.InclusionProof(3, 10);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("forged"), 3,
                                          10, *proof, tree.Root())
                  .IsTamperDetected());
}

TEST(MerkleTest, InclusionProofWrongIndexFails) {
  MerkleTree tree;
  for (int i = 0; i < 10; i++) tree.Append("leaf-" + std::to_string(i));
  auto proof = tree.InclusionProof(3, 10);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("leaf-3"), 4,
                                           10, *proof, tree.Root())
                   .ok());
}

TEST(MerkleTest, InclusionProofTamperedPathFails) {
  MerkleTree tree;
  for (int i = 0; i < 16; i++) tree.Append("leaf-" + std::to_string(i));
  auto proof = tree.InclusionProof(5, 16);
  ASSERT_TRUE(proof.ok());
  for (size_t i = 0; i < proof->size(); i++) {
    auto tampered = *proof;
    tampered[i][0] ^= 1;
    EXPECT_FALSE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("leaf-5"),
                                             5, 16, tampered, tree.Root())
                     .ok())
        << "path element " << i;
  }
}

TEST(MerkleTest, InclusionProofTruncatedOrPaddedFails) {
  MerkleTree tree;
  for (int i = 0; i < 16; i++) tree.Append("leaf-" + std::to_string(i));
  auto proof = tree.InclusionProof(5, 16);
  ASSERT_TRUE(proof.ok());

  auto shorter = *proof;
  shorter.pop_back();
  EXPECT_FALSE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("leaf-5"), 5,
                                           16, shorter, tree.Root())
                   .ok());

  auto longer = *proof;
  longer.push_back(MerkleTree::HashLeaf("extra"));
  EXPECT_FALSE(MerkleTree::VerifyInclusion(MerkleTree::HashLeaf("leaf-5"), 5,
                                           16, longer, tree.Root())
                   .ok());
}

TEST(MerkleTest, InclusionProofOutOfRangeRejected) {
  MerkleTree tree;
  tree.Append("a");
  EXPECT_TRUE(tree.InclusionProof(0, 2).status().IsInvalidArgument());
  EXPECT_TRUE(tree.InclusionProof(1, 1).status().IsInvalidArgument());
}

// ---- Consistency proofs ---------------------------------------------------------

class ConsistencyProofTest : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyProofTest, AllPrefixPairsVerify) {
  const int n = GetParam();
  MerkleTree tree;
  for (int i = 0; i < n; i++) tree.Append("leaf-" + std::to_string(i));

  for (uint64_t old_size = 0; old_size <= static_cast<uint64_t>(n);
       old_size++) {
    for (uint64_t new_size = old_size; new_size <= static_cast<uint64_t>(n);
         new_size++) {
      auto old_root = tree.RootAt(old_size);
      auto new_root = tree.RootAt(new_size);
      ASSERT_TRUE(old_root.ok());
      ASSERT_TRUE(new_root.ok());
      auto proof = tree.ConsistencyProof(old_size, new_size);
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(MerkleTree::VerifyConsistency(old_size, *old_root,
                                                new_size, *new_root, *proof)
                      .ok())
          << old_size << " -> " << new_size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConsistencyProofTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 21));

TEST(MerkleTest, ConsistencyDetectsHistoryRewrite) {
  // Build a log, then a "rewritten" fork that changed an early entry.
  MerkleTree honest, forked;
  for (int i = 0; i < 8; i++) honest.Append("entry-" + std::to_string(i));
  for (int i = 0; i < 8; i++) {
    forked.Append(i == 2 ? std::string("REWRITTEN")
                         : "entry-" + std::to_string(i));
  }
  for (int i = 8; i < 12; i++) forked.Append("entry-" + std::to_string(i));

  // The auditor holds the honest root at size 8; the forked tree cannot
  // produce a valid consistency proof against it.
  auto proof = forked.ConsistencyProof(8, 12);
  ASSERT_TRUE(proof.ok());
  auto forked_root8 = forked.RootAt(8);
  ASSERT_TRUE(forked_root8.ok());
  std::string honest_root8 = honest.Root();
  ASSERT_NE(*forked_root8, honest_root8);
  EXPECT_TRUE(MerkleTree::VerifyConsistency(8, honest_root8, 12,
                                            forked.Root(), *proof)
                  .IsTamperDetected());
}

TEST(MerkleTest, ConsistencyEqualSizesRequiresEqualRoots) {
  MerkleTree tree;
  tree.Append("a");
  std::vector<std::string> empty_proof;
  EXPECT_TRUE(MerkleTree::VerifyConsistency(1, tree.Root(), 1, tree.Root(),
                                            empty_proof)
                  .ok());
  EXPECT_TRUE(MerkleTree::VerifyConsistency(1, tree.Root(), 1,
                                            MerkleTree::HashLeaf("other"),
                                            empty_proof)
                  .IsTamperDetected());
}

TEST(MerkleTest, ConsistencyFromEmptyAlwaysHolds) {
  MerkleTree tree;
  for (int i = 0; i < 5; i++) tree.Append("x" + std::to_string(i));
  std::vector<std::string> empty_proof;
  EXPECT_TRUE(MerkleTree::VerifyConsistency(0, MerkleTree::EmptyRoot(), 5,
                                            tree.Root(), empty_proof)
                  .ok());
}

TEST(MerkleTest, ConsistencyRejectsShrinkingLog) {
  MerkleTree tree;
  for (int i = 0; i < 5; i++) tree.Append("x" + std::to_string(i));
  std::vector<std::string> proof;
  EXPECT_TRUE(MerkleTree::VerifyConsistency(5, tree.Root(), 3,
                                            *tree.RootAt(3), proof)
                  .IsInvalidArgument());
}

TEST(MerkleTest, ConsistencyTamperedProofFails) {
  MerkleTree tree;
  for (int i = 0; i < 13; i++) tree.Append("x" + std::to_string(i));
  auto proof = tree.ConsistencyProof(9, 13);
  ASSERT_TRUE(proof.ok());
  ASSERT_FALSE(proof->empty());
  for (size_t i = 0; i < proof->size(); i++) {
    auto tampered = *proof;
    tampered[i][5] ^= 0x40;
    EXPECT_FALSE(MerkleTree::VerifyConsistency(9, *tree.RootAt(9), 13,
                                               tree.Root(), tampered)
                     .ok())
        << "element " << i;
  }
}

}  // namespace
}  // namespace medvault::crypto
