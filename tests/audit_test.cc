// Audit log tests: hash chaining, Merkle commitments, signed
// checkpoints, insider tampering/truncation detection, proofs.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/audit.h"
#include "crypto/xmss.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  static constexpr int kHeight = 3;

  void SetUp() override {
    signer_ = std::make_unique<crypto::XmssSigner>("audit-secret",
                                                   "audit-public", kHeight);
    OpenLog();
  }

  void OpenLog() {
    log_ = std::make_unique<AuditLog>(&env_, "audit.log");
    ASSERT_TRUE(log_->Open().ok());
  }

  Status VerifyAll() {
    return log_->VerifyAll(signer_->public_key(), "audit-public", kHeight);
  }

  Result<uint64_t> Log(const std::string& actor, AuditAction action,
                       const std::string& record = "",
                       const std::string& details = "") {
    return log_->Append(actor, action, record, details, next_time_++);
  }

  storage::MemEnv env_;
  std::unique_ptr<crypto::XmssSigner> signer_;
  std::unique_ptr<AuditLog> log_;
  Timestamp next_time_ = 1000;
};

TEST_F(AuditTest, AppendAssignsSequentialSeqs) {
  EXPECT_EQ(*Log("alice", AuditAction::kCreate, "r-1"), 0u);
  EXPECT_EQ(*Log("bob", AuditAction::kRead, "r-1"), 1u);
  EXPECT_EQ(log_->size(), 2u);
  EXPECT_EQ(log_->events()[1].actor, "bob");
}

TEST_F(AuditTest, EventEncodingRoundTrip) {
  AuditEvent e;
  e.seq = 7;
  e.timestamp = 123456;
  e.actor = "dr-x";
  e.action = AuditAction::kBreakGlass;
  e.record_id = "r-9";
  e.details = "emergency";
  e.prev_hash = std::string(32, 'h');
  auto decoded = AuditEvent::Decode(e.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, e.seq);
  EXPECT_EQ(decoded->timestamp, e.timestamp);
  EXPECT_EQ(decoded->actor, e.actor);
  EXPECT_EQ(decoded->action, e.action);
  EXPECT_EQ(decoded->record_id, e.record_id);
  EXPECT_EQ(decoded->details, e.details);
  EXPECT_EQ(decoded->prev_hash, e.prev_hash);
}

TEST_F(AuditTest, ActionNamesAreStable) {
  EXPECT_STREQ(AuditActionName(AuditAction::kBreakGlass), "break-glass");
  EXPECT_STREQ(AuditActionName(AuditAction::kDispose), "dispose");
}

TEST_F(AuditTest, CleanLogVerifies) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead, "r-1").ok());
  }
  ASSERT_TRUE(log_->Checkpoint(signer_.get(), next_time_++).ok());
  EXPECT_TRUE(VerifyAll().ok());
}

TEST_F(AuditTest, ReplaySurvivesReopen) {
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead, "r-1").ok());
  }
  std::string root = log_->Root();
  log_.reset();
  OpenLog();
  EXPECT_EQ(log_->size(), 20u);
  EXPECT_EQ(log_->Root(), root);
  // Appends continue the chain seamlessly.
  ASSERT_TRUE(Log("actor", AuditAction::kCorrect, "r-1").ok());
  EXPECT_TRUE(VerifyAll().ok());
}

TEST_F(AuditTest, CheckpointSignatureVerifies) {
  ASSERT_TRUE(Log("actor", AuditAction::kCreate, "r-1").ok());
  auto cp = log_->Checkpoint(signer_.get(), next_time_++);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->tree_size, 1u);
  EXPECT_EQ(cp->root, log_->Root());
  auto sig = crypto::XmssSignature::Decode(cp->signature);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(crypto::XmssSigner::Verify(cp->SignedPayload(), *sig,
                                         signer_->public_key(),
                                         "audit-public", kHeight)
                  .ok());
}

TEST_F(AuditTest, InsiderByteFlipDetected) {
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead, "r-1").ok());
  }
  ASSERT_TRUE(VerifyAll().ok());

  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("audit.log", &size).ok());
  ASSERT_TRUE(env_.UnsafeOverwrite("audit.log", size / 2, "X").ok());
  EXPECT_TRUE(VerifyAll().IsTamperDetected());
}

TEST_F(AuditTest, TruncationDetectedAgainstRetainedCheckpoint) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead, "r-1").ok());
  }
  // The auditor retains the current head out-of-band.
  SignedCheckpoint trusted;
  trusted.tree_size = log_->size();
  trusted.root = log_->Root();

  // The insider truncates the log to half its length — WAL recovery
  // treats a torn tail as clean EOF, so the shortened log parses fine.
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("audit.log", &size).ok());
  ASSERT_TRUE(env_.UnsafeTruncate("audit.log", size / 2).ok());
  log_.reset();
  OpenLog();
  EXPECT_LT(log_->size(), 10u);
  // Internal checks cannot see the missing tail (no checkpoint left),
  // but the retained head exposes the truncation.
  EXPECT_TRUE(log_->VerifyAgainstTrusted(trusted).IsTamperDetected());
}

TEST_F(AuditTest, TruncationBelowEmbeddedCheckpointDetected) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead, "r-1").ok());
  }
  ASSERT_TRUE(log_->Checkpoint(signer_.get(), next_time_++).ok());
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kCorrect, "r-1").ok());
  }
  // Cut the tail but leave the embedded checkpoint intact: VerifyAll
  // sees a checkpoint covering 10 events and a consistent prefix —
  // that's fine — but cutting *below* the checkpoint must be caught.
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("audit.log", &size).ok());
  // Find how far we must cut to drop below 10 events: cut to 1/8.
  ASSERT_TRUE(env_.UnsafeTruncate("audit.log", size / 8).ok());
  log_.reset();
  auto reopened = std::make_unique<AuditLog>(&env_, "audit.log");
  Status open_status = reopened->Open();
  if (open_status.ok()) {
    if (reopened->size() < 10) {
      // The checkpoint went with the tail; internal verify is blind —
      // by design the trusted-checkpoint path covers this (previous
      // test). Nothing further to assert here.
      SUCCEED();
    } else {
      EXPECT_TRUE(reopened
                      ->VerifyAll(signer_->public_key(), "audit-public",
                                  kHeight)
                      .ok());
    }
  } else {
    EXPECT_TRUE(open_status.IsCorruption() ||
                open_status.IsTamperDetected());
  }
}

TEST_F(AuditTest, TrustedCheckpointCatchesTruncation) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead).ok());
  }
  auto trusted = log_->Checkpoint(signer_.get(), next_time_++);
  ASSERT_TRUE(trusted.ok());

  // Insider rewrites the whole log shorter (fully consistent file!).
  ASSERT_TRUE(env_.RemoveFile("audit.log").ok());
  OpenLog();
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead).ok());
  }
  // Internal verification of the rewritten log passes (no checkpoints
  // inside)...
  EXPECT_TRUE(VerifyAll().ok());
  // ...but the auditor's retained head exposes the rewrite.
  EXPECT_TRUE(log_->VerifyAgainstTrusted(*trusted).IsTamperDetected());
}

TEST_F(AuditTest, TrustedCheckpointCatchesHistoryRewrite) {
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead, "r-1").ok());
  }
  auto trusted = log_->Checkpoint(signer_.get(), next_time_++);
  ASSERT_TRUE(trusted.ok());

  // Full rewrite with one event altered, same length.
  ASSERT_TRUE(env_.RemoveFile("audit.log").ok());
  OpenLog();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(Log(i == 3 ? "mallory" : "actor", AuditAction::kRead,
                    "r-1")
                    .ok());
  }
  EXPECT_TRUE(log_->VerifyAgainstTrusted(*trusted).IsTamperDetected());
}

TEST_F(AuditTest, TrustedCheckpointAcceptsHonestGrowth) {
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead).ok());
  }
  auto trusted = log_->Checkpoint(signer_.get(), next_time_++);
  ASSERT_TRUE(trusted.ok());
  for (int i = 0; i < 7; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kCorrect).ok());
  }
  EXPECT_TRUE(log_->VerifyAgainstTrusted(*trusted).ok());
}

TEST_F(AuditTest, EventProofsVerifyAgainstRoot) {
  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(Log("actor-" + std::to_string(i), AuditAction::kRead).ok());
  }
  std::string root = log_->Root();
  for (uint64_t seq : {0u, 7u, 24u}) {
    auto proof = log_->ProveEvent(seq);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(AuditLog::VerifyEventProof(*proof, root).ok());
  }
  EXPECT_TRUE(log_->ProveEvent(99).status().IsNotFound());
}

// Regression, the stale-root proof contract: ProveEvent proves against
// the CURRENT head only, so a verifier who pinned a published
// checkpoint and returned after the log grew held a proof that
// verified against nothing they trusted. ProveEventAt(seq, n) must
// serve any event under any historical size n, and the proof must
// carry that size — not the live one.
TEST_F(AuditTest, StaleCheckpointProofContract) {
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(Log("actor-" + std::to_string(i), AuditAction::kRead).ok());
  }
  // The verifier pins this checkpoint and walks away.
  auto pinned = log_->Checkpoint(signer_.get(), next_time_++);
  ASSERT_TRUE(pinned.ok());
  ASSERT_EQ(pinned->tree_size, 6u);

  // The log grows past the pin.
  for (int i = 0; i < 9; i++) {
    ASSERT_TRUE(Log("later-" + std::to_string(i), AuditAction::kRead).ok());
  }

  // Every pinned-era event is provable against the pinned root...
  for (uint64_t seq = 0; seq < pinned->tree_size; seq++) {
    auto proof = log_->ProveEventAt(seq, pinned->tree_size);
    ASSERT_TRUE(proof.ok()) << proof.status().ToString();
    EXPECT_EQ(proof->tree_size, pinned->tree_size);
    EXPECT_TRUE(AuditLog::VerifyEventProof(*proof, pinned->root).ok());
    // ...while the head proof for the same event is NOT (the bug).
    auto head = log_->ProveEvent(seq);
    ASSERT_TRUE(head.ok());
    EXPECT_FALSE(AuditLog::VerifyEventProof(*head, pinned->root).ok());
  }

  // Contract edges: an event at/after the pinned size needs a newer
  // checkpoint (kInvalidArgument); a size past the log is kNotFound.
  EXPECT_TRUE(
      log_->ProveEventAt(pinned->tree_size, pinned->tree_size).status()
          .IsInvalidArgument());
  EXPECT_TRUE(log_->ProveEventAt(0, log_->size() + 1).status().IsNotFound());

  // The consistency proof ties the pinned root to the grown head, so
  // the verifier can re-pin without replaying the log.
  auto grown = log_->Checkpoint(signer_.get(), next_time_++);
  ASSERT_TRUE(grown.ok());
  auto link =
      log_->ConsistencyProofBetween(pinned->tree_size, grown->tree_size);
  ASSERT_TRUE(link.ok());
  EXPECT_TRUE(crypto::MerkleTree::VerifyConsistency(
                  pinned->tree_size, pinned->root, grown->tree_size,
                  grown->root, *link)
                  .ok());
  // A mismatched old root must NOT link (fork detection).
  std::string forged = pinned->root;
  forged[0] ^= 1;
  EXPECT_FALSE(crypto::MerkleTree::VerifyConsistency(
                   pinned->tree_size, forged, grown->tree_size, grown->root,
                   *link)
                   .ok());
}

// The disclosure-accounting index must agree with a full scan and
// survive replay (it is rebuilt from the log on Open).
TEST_F(AuditTest, DisclosureIndexMatchesScanAndSurvivesReopen) {
  ASSERT_TRUE(Log("dr", AuditAction::kRead, "r-1").ok());
  ASSERT_TRUE(Log("dr", AuditAction::kRead, "r-2").ok());
  ASSERT_TRUE(Log("dr", AuditAction::kRead, "r-1").ok());
  ASSERT_TRUE(Log("dr", AuditAction::kSearch, "r-1").ok());  // not a read
  ASSERT_TRUE(Log("dr", AuditAction::kRead).ok());  // recordless read
  ASSERT_TRUE(
      Log("dr", AuditAction::kBreakGlass, "", "patient=pat grant=g-1").ok());
  ASSERT_TRUE(  // malformed details (no trailing space): never indexed
      Log("dr", AuditAction::kBreakGlass, "", "patient=pat").ok());
  ASSERT_TRUE(  // a consent grant discloses PHI access to the grantee
      Log("pat", AuditAction::kConsentGrant, "",
          "patient=pat grantee=dr grant=cg-1 scope=record purpose=x")
          .ok());
  ASSERT_TRUE(  // malformed (no trailing space): never indexed
      Log("pat", AuditAction::kConsentGrant, "", "patient=pat").ok());
  ASSERT_TRUE(  // revocations disclose nothing: deliberately not indexed
      Log("pat", AuditAction::kConsentRevoke, "",
          "patient=pat grantee=dr grant=cg-1 by=pat")
          .ok());

  auto check = [&] {
    EXPECT_EQ(log_->DisclosureSeqsForRecord("r-1"),
              (std::vector<uint64_t>{0, 2}));
    EXPECT_EQ(log_->DisclosureSeqsForRecord("r-2"),
              (std::vector<uint64_t>{1}));
    EXPECT_TRUE(log_->DisclosureSeqsForRecord("r-404").empty());
    EXPECT_EQ(log_->BreakGlassSeqsForPatient("pat"),
              (std::vector<uint64_t>{5}));
    EXPECT_TRUE(log_->BreakGlassSeqsForPatient("other").empty());
    EXPECT_EQ(log_->ConsentSeqsForPatient("pat"),
              (std::vector<uint64_t>{7}));
    EXPECT_TRUE(log_->ConsentSeqsForPatient("other").empty());
  };
  check();
  OpenLog();  // replay rebuilds the index
  check();
}

TEST_F(AuditTest, ForgedEventProofFails) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead).ok());
  }
  auto proof = log_->ProveEvent(4);
  ASSERT_TRUE(proof.ok());
  proof->event.actor = "mallory";  // claim someone else did it
  EXPECT_TRUE(
      AuditLog::VerifyEventProof(*proof, log_->Root()).IsTamperDetected());
}

TEST_F(AuditTest, CheckpointEncodingRoundTrip) {
  ASSERT_TRUE(Log("a", AuditAction::kCreate).ok());
  auto cp = log_->Checkpoint(signer_.get(), next_time_++);
  ASSERT_TRUE(cp.ok());
  auto decoded = SignedCheckpoint::Decode(cp->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tree_size, cp->tree_size);
  EXPECT_EQ(decoded->root, cp->root);
  EXPECT_EQ(decoded->signature, cp->signature);
}

TEST_F(AuditTest, ForgedCheckpointSignatureDetected) {
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead).ok());
  }
  // A different (attacker) signer writes a checkpoint into the log.
  crypto::XmssSigner mallory("mallory-secret", "audit-public", kHeight);
  ASSERT_TRUE(log_->Checkpoint(&mallory, next_time_++).ok());
  EXPECT_TRUE(VerifyAll().IsTamperDetected());
}

TEST_F(AuditTest, RootAtProvesPrefixHeads) {
  std::vector<std::string> heads;
  heads.push_back(log_->Root());  // empty log
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(Log("actor", AuditAction::kRead, "r").ok());
    heads.push_back(log_->Root());
  }
  // Every historical head is reproducible from the grown log...
  for (uint64_t n = 0; n <= 8; n++) {
    auto at = log_->RootAt(n);
    ASSERT_TRUE(at.ok());
    EXPECT_EQ(*at, heads[n]) << "head over first " << n << " events";
  }
  // ...and a head PAST the log ("the replica is ahead") is an error,
  // never a silently fabricated root.
  EXPECT_FALSE(log_->RootAt(9).ok());
}

TEST_F(AuditTest, PartialBatchAppendSurfacesAndDoesNotAdvance) {
  ASSERT_TRUE(Log("a", AuditAction::kCreate, "r-1").ok());
  const uint64_t size_before = log_->size();
  const std::string root_before = log_->Root();

  // Rebuild the log on a fault-injecting env so the batch's coalesced
  // write fails after the first underlying write: a torn prefix may be
  // on disk, and the failure must say so distinctly.
  storage::FaultInjectionEnv fault(&env_);
  log_ = std::make_unique<AuditLog>(&fault, "audit.log");
  ASSERT_TRUE(log_->Open().ok());
  fault.FailNextWrites(1);

  std::vector<PendingAuditEvent> batch(3);
  for (auto& p : batch) {
    p.actor = "dr";
    p.action = AuditAction::kRead;
    p.record_id = "r-1";
  }
  auto seq = log_->AppendBatch(batch, next_time_++);
  ASSERT_FALSE(seq.ok());
  EXPECT_NE(seq.status().ToString().find("partial audit batch append"),
            std::string::npos)
      << seq.status().ToString();
  // The in-memory chain, tree and sequence did not advance: nothing
  // was acknowledged, so nothing may depend on the failed bytes.
  EXPECT_EQ(log_->size(), size_before);
  EXPECT_EQ(log_->Root(), root_before);

  // Crash recovery's reopen truncates whatever torn tail landed, and
  // the retried batch then chains cleanly onto the surviving prefix.
  fault.Reset();
  OpenLog();
  EXPECT_EQ(log_->size(), size_before);
  auto retried = log_->AppendBatch(batch, next_time_++);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, size_before);
  EXPECT_EQ(log_->size(), size_before + batch.size());
  EXPECT_TRUE(VerifyAll().ok());
}

}  // namespace
}  // namespace medvault::core
