// Cross-module integration tests: the full 30-year compliance lifecycle
// (E10), hospital workflows under realistic workloads, disaster
// recovery combined with migration, and end-to-end adversarial runs.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/backup.h"
#include "core/migration.h"
#include "core/vault.h"
#include "sim/adversary.h"
#include "sim/workload.h"
#include "storage/mem_env.h"

namespace medvault {
namespace {

using core::AuditAction;
using core::AuditEvent;
using core::CustodyEventType;
using core::RecordId;
using core::Role;
using core::Vault;
using core::VaultOptions;

class IntegrationTest : public ::testing::Test {
 protected:
  std::unique_ptr<Vault> OpenVault(storage::Env* env, const std::string& dir,
                                   const std::string& system,
                                   const std::string& entropy,
                                   const std::string& master = "") {
    VaultOptions options;
    options.env = env;
    options.dir = dir;
    options.clock = &clock_;
    options.master_key = master.empty() ? std::string(32, 'M') : master;
    options.entropy = entropy;
    options.signer_height = 5;  // 32 signatures for long scenarios
    options.system_id = system;
    auto vault = Vault::Open(options);
    EXPECT_TRUE(vault.ok()) << vault.status().ToString();
    return std::move(vault).value();
  }

  void RegisterCast(Vault* vault) {
    ASSERT_TRUE(
        vault->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal(
                        "admin-r", {"aud-x", Role::kAuditor, "Auditor"})
                    .ok());
  }

  ManualClock clock_{1000000};
};

TEST_F(IntegrationTest, ThirtyYearLifecycle) {
  // The E10 scenario: create -> correct -> checkpoint -> backup ->
  // migrate (hardware refresh) -> key rotation -> retention expiry ->
  // disposal; verifiability holds at every step.
  storage::MemEnv site_a, site_b, offsite;
  auto vault = OpenVault(&site_a, "vault", "hospital-a", "entropy-life");
  RegisterCast(vault.get());
  ASSERT_TRUE(vault
                  ->RegisterPrincipal("admin-r",
                                      {"pat-p", Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", "pat-p").ok());

  // Year 0: occupational exposure record, 30-year retention (OSHA).
  auto id = vault->CreateRecord("dr-a", "pat-p", "text/plain",
                                "benzene exposure incident, 2 ppm, 4h",
                                {"benzene", "exposure"}, "osha-30y");
  ASSERT_TRUE(id.ok());
  auto cp0 = vault->CheckpointAudit();
  ASSERT_TRUE(cp0.ok());

  // Year 1: correction.
  clock_.AdvanceYears(1);
  ASSERT_TRUE(vault
                  ->CorrectRecord("dr-a", *id,
                                  "benzene exposure incident, 3 ppm, 4h",
                                  "lab re-analysis", {"benzene"})
                  .ok());

  // Year 5: off-site backup.
  clock_.AdvanceYears(4);
  auto manifest = core::BackupManager::Backup(vault.get(), "admin-r",
                                              &offsite, "offsite");
  ASSERT_TRUE(manifest.ok());

  // Year 12: hardware refresh -> verifiable migration to a new system.
  clock_.AdvanceYears(7);
  auto target = OpenVault(&site_b, "vault", "hospital-a-gen2",
                          "entropy-life-2");
  RegisterCast(target.get());
  ASSERT_TRUE(target
                  ->RegisterPrincipal("admin-r",
                                      {"pat-p", Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE(target->AssignCare("admin-r", "dr-a", "pat-p").ok());
  auto receipt = core::Migrator::Migrate(vault.get(), target.get(),
                                         "admin-r");
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_TRUE(core::Migrator::VerifyReceipt(*receipt, vault.get(),
                                            target.get())
                  .ok());

  // Year 20: master key rotation on the new system.
  clock_.AdvanceYears(8);
  ASSERT_TRUE(
      target->RotateMasterKey("admin-r", std::string(32, 'R')).ok());
  EXPECT_EQ(target->ReadRecord("dr-a", *id)->plaintext,
            "benzene exposure incident, 3 ppm, 4h");

  // Year 29: disposal still blocked.
  clock_.AdvanceYears(9);
  EXPECT_TRUE(target->DisposeRecord("admin-r", *id)
                  .status()
                  .IsRetentionViolation());

  // Year 31: retention expired; disposal succeeds with certificate.
  clock_.AdvanceYears(2);
  auto cert = target->DisposeRecord("admin-r", *id);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_TRUE(core::RetentionManager::VerifyCertificate(
                  *cert, target->SignerPublicKey(),
                  target->SignerPublicSeed(), target->SignerHeight())
                  .ok());
  EXPECT_TRUE(target->ReadRecord("dr-a", *id).status().IsKeyDestroyed());

  // End-to-end verifiability still holds on both systems.
  EXPECT_TRUE(vault->VerifyEverything().ok());
  EXPECT_TRUE(target->VerifyEverything().ok());

  // The custody chain tells the whole story.
  auto chain = target->GetCustodyChain("aud-x", *id);
  ASSERT_TRUE(chain.ok());
  std::vector<CustodyEventType> expected = {
      CustodyEventType::kCreated,     CustodyEventType::kCorrected,
      CustodyEventType::kMigratedOut, CustodyEventType::kMigratedIn,
      CustodyEventType::kDisposed};
  ASSERT_EQ(chain->size(), expected.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ((*chain)[i].type, expected[i]) << "event " << i;
  }
}

TEST_F(IntegrationTest, RealisticWorkloadRemainsVerifiable) {
  storage::MemEnv env;
  auto vault = OpenVault(&env, "vault", "hospital", "entropy-load");
  RegisterCast(vault.get());

  sim::EhrGenerator::Options gen_options;
  gen_options.num_patients = 20;
  gen_options.note_bytes = 300;
  sim::EhrGenerator gen(77, gen_options);

  // Register the patient population; dr-a treats everyone.
  for (int p = 0; p < 20; p++) {
    std::string pid = "patient-" + std::to_string(p);
    ASSERT_TRUE(
        vault->RegisterPrincipal("admin-r", {pid, Role::kPatient, pid})
            .ok());
    ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", pid).ok());
  }

  std::vector<RecordId> ids;
  for (int i = 0; i < 60; i++) {
    sim::EhrRecord r = gen.Next();
    auto id = vault->CreateRecord("dr-a", r.patient_id, "text/plain",
                                  r.text, r.keywords, "hipaa-6y");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
    clock_.Advance(kMicrosPerDay);
  }
  // Mixed reads/corrections/searches.
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(vault->ReadRecord("dr-a", ids[i % ids.size()]).ok());
  }
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(vault
                    ->CorrectRecord("dr-a", ids[i], "corrected note body",
                                    "routine amendment", {"corrected"})
                    .ok());
  }
  auto hits = vault->SearchKeyword("dr-a", "corrected");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);

  // Everything verifies; the audit log covers all operations.
  EXPECT_TRUE(vault->VerifyEverything().ok());
  auto trail = vault->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  EXPECT_GT(trail->size(), 100u);
}

TEST_F(IntegrationTest, AdversarialEndToEnd) {
  storage::MemEnv env;
  auto vault = OpenVault(&env, "vault", "hospital", "entropy-adv");
  RegisterCast(vault.get());
  ASSERT_TRUE(vault
                  ->RegisterPrincipal("admin-r",
                                      {"pat-p", Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", "pat-p").ok());

  std::vector<RecordId> ids;
  for (int i = 0; i < 10; i++) {
    auto id = vault->CreateRecord("dr-a", "pat-p", "text/plain",
                                  "note " + std::to_string(i) +
                                      std::string(200, 'x'),
                                  {"cancer"}, "hipaa-6y");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(vault->CheckpointAudit().ok());
  ASSERT_TRUE(vault->VerifyEverything().ok());

  // Insider tampers broadly: record segments, audit log, index.
  sim::InsiderAdversary insider(&env, 1337);
  std::vector<std::string> targets;
  for (uint64_t sid : vault->versions()->segments()->SegmentIds()) {
    std::string name = vault->versions()->segments()->SegmentFileName(sid);
    if (env.FileExists(name)) targets.push_back(name);
  }
  targets.push_back("vault/audit.log");
  auto applied = insider.TamperRandomBytes(targets, 25);
  ASSERT_TRUE(applied.ok());

  // MedVault must detect the intrusion somewhere.
  EXPECT_TRUE(vault->VerifyEverything().IsTamperDetected());

  // And the insider learns nothing from raw bytes: no keyword, no
  // plaintext.
  EXPECT_FALSE(*insider.ScanForKeyword(targets, "cancer"));
  EXPECT_FALSE(*insider.ScanForKeyword({"vault/index.log"}, "cancer"));
}

TEST_F(IntegrationTest, BackupThenMigrateRestoredVault) {
  // Disaster recovery into new hardware, then migration onward — the
  // combination regulators actually care about.
  storage::MemEnv site_a, offsite, site_b, site_c;
  auto vault = OpenVault(&site_a, "vault", "gen1", "entropy-dr");
  RegisterCast(vault.get());
  ASSERT_TRUE(vault
                  ->RegisterPrincipal("admin-r",
                                      {"pat-p", Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", "pat-p").ok());
  auto id = vault->CreateRecord("dr-a", "pat-p", "text/plain",
                                "survives everything", {"resilient"},
                                "osha-30y");
  ASSERT_TRUE(id.ok());

  auto manifest = core::BackupManager::Backup(vault.get(), "admin-r",
                                              &offsite, "offsite");
  ASSERT_TRUE(manifest.ok());
  vault.reset();  // disaster

  ASSERT_TRUE(core::BackupManager::Restore(&offsite, "offsite", *manifest,
                                           &site_b, "vault")
                  .ok());
  auto restored = OpenVault(&site_b, "vault", "gen1", "entropy-dr");
  EXPECT_EQ(restored->ReadRecord("dr-a", *id)->plaintext,
            "survives everything");

  auto gen2 = OpenVault(&site_c, "vault", "gen2", "entropy-dr-2");
  RegisterCast(gen2.get());
  auto receipt =
      core::Migrator::Migrate(restored.get(), gen2.get(), "admin-r");
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  ASSERT_TRUE(gen2
                  ->RegisterPrincipal("admin-r",
                                      {"pat-p", Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE(gen2->AssignCare("admin-r", "dr-a", "pat-p").ok());
  EXPECT_EQ(gen2->ReadRecord("dr-a", *id)->plaintext,
            "survives everything");
  EXPECT_TRUE(gen2->VerifyEverything().ok());
}

}  // namespace
}  // namespace medvault
