// Provenance tests: custody chains, verification, export/import for
// migration handover, tamper detection.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/provenance.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override { OpenTracker(); }

  void OpenTracker(const std::string& system = "hospital-a") {
    tracker_ = std::make_unique<ProvenanceTracker>(&env_, "prov.log",
                                                   system);
    ASSERT_TRUE(tracker_->Open().ok());
  }

  storage::MemEnv env_;
  std::unique_ptr<ProvenanceTracker> tracker_;
  Timestamp next_time_ = 5000;
};

TEST_F(ProvenanceTest, EventEncodingRoundTrip) {
  CustodyEvent e;
  e.record_id = "r-1";
  e.type = CustodyEventType::kMigratedOut;
  e.actor = "admin";
  e.system_id = "hospital-a";
  e.timestamp = 777;
  e.details = "to=hospital-b";
  e.prev_hash = std::string(32, 'p');
  auto decoded = CustodyEvent::Decode(e.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->record_id, e.record_id);
  EXPECT_EQ(decoded->type, e.type);
  EXPECT_EQ(decoded->system_id, e.system_id);
  EXPECT_EQ(decoded->prev_hash, e.prev_hash);
}

TEST_F(ProvenanceTest, ChainGrowsAndLinks) {
  auto h1 = tracker_->RecordEvent("r-1", CustodyEventType::kCreated,
                                  "dr-a", "", next_time_++);
  ASSERT_TRUE(h1.ok());
  auto h2 = tracker_->RecordEvent("r-1", CustodyEventType::kCorrected,
                                  "dr-a", "v2", next_time_++);
  ASSERT_TRUE(h2.ok());
  EXPECT_NE(*h1, *h2);
  EXPECT_EQ(tracker_->ChainHead("r-1"), *h2);

  auto chain = tracker_->GetChain("r-1");
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 2u);
  EXPECT_TRUE((*chain)[0].prev_hash.empty());
  EXPECT_EQ((*chain)[1].prev_hash, *h1);
  EXPECT_EQ((*chain)[0].system_id, "hospital-a");
}

TEST_F(ProvenanceTest, ChainsAreIndependentPerRecord) {
  ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kCreated,
                                    "a", "", next_time_++)
                  .ok());
  ASSERT_TRUE(tracker_->RecordEvent("r-2", CustodyEventType::kCreated,
                                    "b", "", next_time_++)
                  .ok());
  EXPECT_EQ(tracker_->RecordCount(), 2u);
  EXPECT_TRUE((*tracker_->GetChain("r-2"))[0].prev_hash.empty());
}

TEST_F(ProvenanceTest, VerifyPassesOnCleanChains) {
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kAccessed,
                                      "dr", "", next_time_++)
                    .ok());
  }
  EXPECT_TRUE(tracker_->VerifyChain("r-1").ok());
  EXPECT_TRUE(tracker_->VerifyAllChains().ok());
  EXPECT_TRUE(tracker_->VerifyChain("ghost").IsNotFound());
}

TEST_F(ProvenanceTest, SurvivesReopen) {
  ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kCreated,
                                    "dr", "", next_time_++)
                  .ok());
  std::string head = tracker_->ChainHead("r-1");
  tracker_.reset();
  OpenTracker();
  EXPECT_EQ(tracker_->ChainHead("r-1"), head);
  EXPECT_TRUE(tracker_->VerifyChain("r-1").ok());
  // Chain extends after reopen.
  ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kBackedUp,
                                    "admin", "", next_time_++)
                  .ok());
  EXPECT_TRUE(tracker_->VerifyChain("r-1").ok());
}

TEST_F(ProvenanceTest, ExportImportHandsOverChain) {
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kAccessed,
                                      "dr", "", next_time_++)
                    .ok());
  }
  auto exported = tracker_->ExportChain("r-1");
  ASSERT_TRUE(exported.ok());

  storage::MemEnv env_b;
  ProvenanceTracker target(&env_b, "prov.log", "hospital-b");
  ASSERT_TRUE(target.Open().ok());
  ASSERT_TRUE(target.ImportChain("r-1", *exported).ok());
  EXPECT_EQ(target.ChainHead("r-1"), tracker_->ChainHead("r-1"));
  EXPECT_TRUE(target.VerifyChain("r-1").ok());

  // The new system extends the imported chain with its own events.
  ASSERT_TRUE(target.RecordEvent("r-1", CustodyEventType::kMigratedIn,
                                 "admin", "from=hospital-a", next_time_++)
                  .ok());
  auto chain = target.GetChain("r-1");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), 4u);
  EXPECT_EQ(chain->back().system_id, "hospital-b");
  EXPECT_TRUE(target.VerifyChain("r-1").ok());
}

TEST_F(ProvenanceTest, ImportRejectsTamperedChain) {
  ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kCreated,
                                    "dr", "", next_time_++)
                  .ok());
  ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kAccessed,
                                    "dr", "", next_time_++)
                  .ok());
  auto exported = tracker_->ExportChain("r-1");
  ASSERT_TRUE(exported.ok());
  // Flip one byte inside the export.
  std::string tampered = *exported;
  tampered[tampered.size() / 2] ^= 1;

  storage::MemEnv env_b;
  ProvenanceTracker target(&env_b, "prov.log", "hospital-b");
  ASSERT_TRUE(target.Open().ok());
  Status s = target.ImportChain("r-1", tampered);
  EXPECT_FALSE(s.ok());  // corruption or broken chain, never silent
}

TEST_F(ProvenanceTest, ImportRejectsWrongRecordOrDuplicate) {
  ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kCreated,
                                    "dr", "", next_time_++)
                  .ok());
  auto exported = tracker_->ExportChain("r-1");
  ASSERT_TRUE(exported.ok());

  storage::MemEnv env_b;
  ProvenanceTracker target(&env_b, "prov.log", "hospital-b");
  ASSERT_TRUE(target.Open().ok());
  EXPECT_TRUE(target.ImportChain("r-2", *exported).IsInvalidArgument());
  ASSERT_TRUE(target.ImportChain("r-1", *exported).ok());
  EXPECT_TRUE(target.ImportChain("r-1", *exported).IsAlreadyExists());
}

TEST_F(ProvenanceTest, OnDiskTamperBreaksVerification) {
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(tracker_->RecordEvent("r-1", CustodyEventType::kAccessed,
                                      "dr", "detail", next_time_++)
                    .ok());
  }
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("prov.log", &size).ok());
  ASSERT_TRUE(env_.UnsafeOverwrite("prov.log", size / 2, "Z").ok());
  tracker_.reset();

  // Reopen either fails outright (framing) or yields a chain that fails
  // verification.
  auto reopened = std::make_unique<ProvenanceTracker>(&env_, "prov.log",
                                                      "hospital-a");
  Status open_status = reopened->Open();
  if (open_status.ok()) {
    EXPECT_FALSE(reopened->VerifyAllChains().ok());
  } else {
    EXPECT_TRUE(open_status.IsCorruption());
  }
}

TEST_F(ProvenanceTest, EventTypeNames) {
  EXPECT_STREQ(CustodyEventTypeName(CustodyEventType::kDisposed),
               "disposed");
  EXPECT_STREQ(CustodyEventTypeName(CustodyEventType::kMigratedIn),
               "migrated-in");
}

}  // namespace
}  // namespace medvault::core
