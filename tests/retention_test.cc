// Retention manager tests: policies, disposal gating across simulated
// decades, disposal certificate issuance and verification.

#include <gtest/gtest.h>

#include "core/retention.h"

namespace medvault::core {
namespace {

class RetentionTest : public ::testing::Test {
 protected:
  RecordMeta MakeMeta(const std::string& policy, Timestamp created) {
    RecordMeta meta;
    meta.record_id = "r-1";
    meta.patient_id = "pat-p";
    meta.created_at = created;
    meta.retention_policy = policy;
    meta.retention_until = *retention_.RetentionUntil(policy, created);
    meta.latest_version = 1;
    return meta;
  }

  RetentionManager retention_;
};

TEST_F(RetentionTest, StandardPoliciesExist) {
  EXPECT_TRUE(retention_.HasPolicy("osha-30y"));
  EXPECT_TRUE(retention_.HasPolicy("hipaa-6y"));
  EXPECT_TRUE(retention_.HasPolicy("short-1y"));
  EXPECT_FALSE(retention_.HasPolicy("nonexistent"));
}

TEST_F(RetentionTest, RetentionUntilAddsDuration) {
  auto until = retention_.RetentionUntil("osha-30y", 1000);
  ASSERT_TRUE(until.ok());
  EXPECT_EQ(*until, 1000 + 30 * kMicrosPerYear);
  EXPECT_TRUE(
      retention_.RetentionUntil("ghost", 0).status().IsNotFound());
}

TEST_F(RetentionTest, CustomPolicyRegistration) {
  ASSERT_TRUE(retention_.RegisterPolicy("uk-dpa-8y", 8 * kMicrosPerYear)
                  .ok());
  EXPECT_TRUE(retention_.HasPolicy("uk-dpa-8y"));
  EXPECT_TRUE(
      retention_.RegisterPolicy("", kMicrosPerYear).IsInvalidArgument());
  EXPECT_TRUE(retention_.RegisterPolicy("bad", 0).IsInvalidArgument());
  EXPECT_TRUE(retention_.RegisterPolicy("bad", -5).IsInvalidArgument());
}

TEST_F(RetentionTest, EarlyDisposalBlockedFor30Years) {
  RecordMeta meta = MakeMeta("osha-30y", 0);
  // At creation, after 1 year, after 29 years: all blocked.
  EXPECT_TRUE(retention_.CheckDisposalAllowed(meta, 0).IsRetentionViolation());
  EXPECT_TRUE(retention_.CheckDisposalAllowed(meta, 1 * kMicrosPerYear)
                  .IsRetentionViolation());
  EXPECT_TRUE(retention_.CheckDisposalAllowed(meta, 29 * kMicrosPerYear)
                  .IsRetentionViolation());
  // One microsecond before expiry: still blocked.
  EXPECT_TRUE(
      retention_.CheckDisposalAllowed(meta, meta.retention_until - 1)
          .IsRetentionViolation());
  // At and after expiry: allowed.
  EXPECT_TRUE(
      retention_.CheckDisposalAllowed(meta, meta.retention_until).ok());
  EXPECT_TRUE(retention_.CheckDisposalAllowed(meta, 31 * kMicrosPerYear)
                  .ok());
}

TEST_F(RetentionTest, DisposedRecordsCannotBeDisposedAgain) {
  RecordMeta meta = MakeMeta("short-1y", 0);
  meta.disposed = true;
  EXPECT_TRUE(retention_.CheckDisposalAllowed(meta, 10 * kMicrosPerYear)
                  .IsFailedPrecondition());
}

TEST_F(RetentionTest, ViolationMessageNamesPolicyAndRecord) {
  RecordMeta meta = MakeMeta("osha-30y", 0);
  Status s = retention_.CheckDisposalAllowed(meta, 0);
  EXPECT_NE(s.message().find("osha-30y"), std::string::npos);
  EXPECT_NE(s.message().find("r-1"), std::string::npos);
}

TEST_F(RetentionTest, CertificateIssueAndVerify) {
  crypto::XmssSigner signer("ret-secret", "ret-public", 3);
  RecordMeta meta = MakeMeta("short-1y", 0);
  auto cert = retention_.IssueCertificate(meta, "admin-r", "custody-head",
                                          2 * kMicrosPerYear, &signer);
  ASSERT_TRUE(cert.ok());
  EXPECT_EQ(cert->record_id, "r-1");
  EXPECT_EQ(cert->authorizer, "admin-r");
  EXPECT_EQ(cert->policy, "short-1y");
  EXPECT_TRUE(RetentionManager::VerifyCertificate(
                  *cert, signer.public_key(), "ret-public", 3)
                  .ok());
}

TEST_F(RetentionTest, ForgedCertificateFieldsFailVerification) {
  crypto::XmssSigner signer("ret-secret", "ret-public", 3);
  RecordMeta meta = MakeMeta("short-1y", 0);
  auto cert = retention_.IssueCertificate(meta, "admin-r", "head",
                                          2 * kMicrosPerYear, &signer);
  ASSERT_TRUE(cert.ok());

  DisposalCertificate forged = *cert;
  forged.record_id = "r-2";  // claim a different record was disposed
  EXPECT_TRUE(RetentionManager::VerifyCertificate(
                  forged, signer.public_key(), "ret-public", 3)
                  .IsTamperDetected());

  forged = *cert;
  forged.disposed_at += 1;  // backdate/postdate
  EXPECT_FALSE(RetentionManager::VerifyCertificate(
                   forged, signer.public_key(), "ret-public", 3)
                   .ok());

  forged = *cert;
  forged.custody_head = "other";
  EXPECT_FALSE(RetentionManager::VerifyCertificate(
                   forged, signer.public_key(), "ret-public", 3)
                   .ok());
}

TEST_F(RetentionTest, CertificateEncodingRoundTrip) {
  crypto::XmssSigner signer("ret-secret", "ret-public", 3);
  RecordMeta meta = MakeMeta("hipaa-6y", 123);
  auto cert = retention_.IssueCertificate(meta, "admin", "head",
                                          7 * kMicrosPerYear, &signer);
  ASSERT_TRUE(cert.ok());
  auto decoded = DisposalCertificate::Decode(cert->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->record_id, cert->record_id);
  EXPECT_EQ(decoded->policy, cert->policy);
  EXPECT_EQ(decoded->signature, cert->signature);
  EXPECT_TRUE(RetentionManager::VerifyCertificate(
                  *decoded, signer.public_key(), "ret-public", 3)
                  .ok());
  EXPECT_FALSE(DisposalCertificate::Decode("garbage").ok());
}

}  // namespace
}  // namespace medvault::core
