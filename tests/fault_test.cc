// Fault-injection tests: I/O failures mid-operation must surface as
// errors (never silent data loss), and a vault that survived write
// failures must still verify or fail loudly on reopen.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/backup.h"
#include "core/vault.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"
#include "storage/segment.h"

namespace medvault {
namespace {

using core::Role;
using core::Vault;
using core::VaultOptions;

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : fault_env_(&base_env_) {}

  std::unique_ptr<Vault> OpenVault(storage::Env* env) {
    VaultOptions options;
    options.env = env;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "fault-entropy";
    options.signer_height = 4;
    auto vault = Vault::Open(options);
    EXPECT_TRUE(vault.ok()) << vault.status().ToString();
    return std::move(vault).value();
  }

  void RegisterCast(Vault* vault) {
    ASSERT_TRUE(
        vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin",
                                        {"dr", Role::kPhysician, "D"})
                    .ok());
    ASSERT_TRUE(
        vault->RegisterPrincipal("admin", {"p", Role::kPatient, "P"}).ok());
    ASSERT_TRUE(vault->AssignCare("admin", "dr", "p").ok());
  }

  storage::MemEnv base_env_;
  storage::FaultInjectionEnv fault_env_;
  ManualClock clock_{1000000};
};

TEST_F(FaultTest, CreateRecordFailsLoudlyWhenDiskDies) {
  auto vault = OpenVault(&fault_env_);
  RegisterCast(vault.get());
  fault_env_.FailWrites(true);
  auto id = vault->CreateRecord("dr", "p", "text/plain", "content", {},
                                "hipaa-6y");
  EXPECT_TRUE(id.status().IsIoError());
}

TEST_F(FaultTest, PartialWriteFailureNeverFabricatesARecord) {
  auto vault = OpenVault(&fault_env_);
  RegisterCast(vault.get());

  // Kill the disk after a handful of writes — mid-CreateRecord.
  for (uint64_t budget : {1, 2, 3, 5, 8}) {
    fault_env_.FailAfterWrites(budget);
    auto id = vault->CreateRecord("dr", "p", "text/plain",
                                  "partial " + std::to_string(budget), {},
                                  "hipaa-6y");
    fault_env_.FailWrites(false);
    fault_env_.Reset();
    if (id.ok()) {
      // If the API claimed success the record must actually read back.
      auto read = vault->ReadRecord("dr", *id);
      EXPECT_TRUE(read.ok()) << "budget " << budget << ": "
                             << read.status().ToString();
    } else {
      EXPECT_TRUE(id.status().IsIoError()) << id.status().ToString();
    }
  }
}

TEST_F(FaultTest, VaultAfterWriteFailuresReopensOrFailsLoudly) {
  {
    auto vault = OpenVault(&fault_env_);
    RegisterCast(vault.get());
    ASSERT_TRUE(vault
                    ->CreateRecord("dr", "p", "text/plain", "good record",
                                   {"kw"}, "hipaa-6y")
                    .ok());
    // Storm of failures during further activity.
    fault_env_.FailAfterWrites(4);
    (void)vault->CreateRecord("dr", "p", "text/plain", "doomed", {},
                              "hipaa-6y");
    (void)vault->CreateRecord("dr", "p", "text/plain", "doomed too", {},
                              "hipaa-6y");
    fault_env_.Reset();
  }
  // Reopen on the healthy env: either a clean open whose contents
  // verify, or a loud corruption error — never a silently broken vault.
  VaultOptions options;
  options.env = &base_env_;
  options.dir = "vault";
  options.clock = &clock_;
  options.master_key = std::string(32, 'M');
  options.entropy = "fault-entropy";
  options.signer_height = 4;
  auto reopened = Vault::Open(options);
  if (reopened.ok()) {
    Status s = (*reopened)->VerifyEverything();
    EXPECT_TRUE(s.ok() || s.IsTamperDetected() || s.IsCorruption())
        << s.ToString();
    // The record whose creation succeeded must still be there.
    auto read = (*reopened)->ReadRecord("dr", "r-1");
    EXPECT_TRUE(read.ok()) << read.status().ToString();
  } else {
    EXPECT_TRUE(reopened.status().IsCorruption() ||
                reopened.status().IsTamperDetected() ||
                reopened.status().IsIoError())
        << reopened.status().ToString();
  }
}

TEST_F(FaultTest, SegmentAppendFailurePropagates) {
  storage::SegmentStore store(&fault_env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Append("before failure").ok());
  fault_env_.FailWrites(true);
  EXPECT_TRUE(store.Append("during failure").status().IsIoError());
  fault_env_.FailWrites(false);
  // The store keeps working once the disk recovers.
  auto h = store.Append("after recovery");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*store.Read(*h), "after recovery");
}

TEST_F(FaultTest, SealActiveRetryableAfterFailedFileCreation) {
  // Regression: SealActive used to flip `sealed` and bump the active id
  // BEFORE creating the successor file, so a failed creation left the
  // store wedged (no active file, ids desynced). A failed seal must
  // leave the store exactly as it was, and the seal must be retryable.
  storage::SegmentStore store(&fault_env_, "seg", {});
  ASSERT_TRUE(store.Open().ok());
  auto h = store.Append("entry before seal");
  ASSERT_TRUE(h.ok());

  fault_env_.FailFileCreation(true);
  EXPECT_FALSE(store.SealActive().ok());
  fault_env_.FailFileCreation(false);

  // Store still fully usable: the old active segment accepts appends...
  auto h2 = store.Append("still writable");
  ASSERT_TRUE(h2.ok()) << h2.status().ToString();
  EXPECT_EQ(h2->segment_id, h->segment_id);
  // ...and the retried seal succeeds.
  ASSERT_TRUE(store.SealActive().ok());
  EXPECT_TRUE(store.IsSealed(h->segment_id));
  EXPECT_EQ(*store.Read(*h), "entry before seal");
  EXPECT_EQ(*store.Read(*h2), "still writable");
}

TEST_F(FaultTest, UnsafeWritesBypassBudgetAndCrashPlans) {
  // UnsafeOverwrite/UnsafeTruncate model an adversary with platter
  // access — they are not I/O the fault layer should meter. They must
  // neither consume FailAfterWrites credits nor trigger planned
  // crashes, and they are tallied separately.
  ASSERT_TRUE(storage::WriteStringToFile(&fault_env_, "0123456789", "f",
                                         false)
                  .ok());
  uint64_t writes_before = fault_env_.writes();
  fault_env_.FailAfterWrites(1);
  ASSERT_TRUE(fault_env_.UnsafeOverwrite("f", 0, "XX").ok());
  ASSERT_TRUE(fault_env_.UnsafeTruncate("f", 5).ok());
  EXPECT_EQ(fault_env_.unsafe_writes(), 2u);
  EXPECT_EQ(fault_env_.writes(), writes_before);

  // The single write credit is still available after the unsafe ops.
  std::unique_ptr<storage::WritableFile> file;
  ASSERT_TRUE(fault_env_.NewWritableFile("g", &file).ok());
  EXPECT_TRUE(file->Append("uses-the-credit").ok());
  EXPECT_TRUE(file->Append("now-exhausted").IsIoError());
}

TEST_F(FaultTest, WriteBudgetDecrementsAtomically) {
  // The budget knobs are read from whatever thread performs I/O; the
  // exact count must hold under concurrent appends (TSan-visible race
  // on the old plain-bool/plain-counter implementation).
  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 50;
  constexpr uint64_t kBudget = 100;

  std::vector<std::unique_ptr<storage::WritableFile>> files(kThreads);
  for (int t = 0; t < kThreads; t++) {
    ASSERT_TRUE(
        fault_env_.NewWritableFile("f-" + std::to_string(t), &files[t]).ok());
  }
  fault_env_.FailAfterWrites(kBudget);
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; i++) {
        if (files[t]->Append("x").ok()) successes++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(successes.load(), static_cast<int>(kBudget));
}

TEST_F(FaultTest, PlannedCrashTearsWriteAndFreezesEnv) {
  std::unique_ptr<storage::WritableFile> file;
  ASSERT_TRUE(fault_env_.NewWritableFile("wal", &file).ok());
  ASSERT_TRUE(file->Append("first-write-lands").ok());

  const uint64_t boundary = fault_env_.ops();
  fault_env_.PlanCrash(boundary);
  Status s = file->Append("this-one-dies-midway");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_TRUE(fault_env_.crashed());

  // Every later mutation fails until the harness resets the env.
  EXPECT_TRUE(file->Append("after crash").IsIoError());
  EXPECT_TRUE(file->Sync().IsIoError());
  std::unique_ptr<storage::WritableFile> other;
  EXPECT_FALSE(fault_env_.NewWritableFile("other", &other).ok());

  // The torn write left at most a prefix of the payload in the file.
  uint64_t size = 0;
  ASSERT_TRUE(base_env_.GetFileSize("wal", &size).ok());
  uint64_t first = std::string("first-write-lands").size();
  EXPECT_GE(size, first);
  EXPECT_LT(size, first + std::string("this-one-dies-midway").size());

  fault_env_.Reset();
  EXPECT_FALSE(fault_env_.crashed());
  EXPECT_TRUE(fault_env_.NewWritableFile("other", &other).ok());
}

TEST_F(FaultTest, BackupReadsEveryByte) {
  // Verification must actually read the data (counter check).
  auto vault = OpenVault(&fault_env_);
  RegisterCast(vault.get());
  ASSERT_TRUE(vault
                  ->CreateRecord("dr", "p", "text/plain",
                                 std::string(4096, 'b'), {"kw"},
                                 "hipaa-6y")
                  .ok());
  storage::MemEnv offsite;
  auto manifest = core::BackupManager::Backup(vault.get(), "admin",
                                              &offsite, "off");
  ASSERT_TRUE(manifest.ok());

  uint64_t reads_before = fault_env_.reads();
  // Verify against the *source* env via a round trip: restore then
  // compare — here simply assert verification touches the offsite copy.
  ASSERT_TRUE(core::BackupManager::Verify(&offsite, "off", *manifest).ok());
  // The source env wasn't read for offsite verification.
  EXPECT_EQ(fault_env_.reads(), reads_before);
}

}  // namespace
}  // namespace medvault
