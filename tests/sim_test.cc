// Simulation substrate tests: EHR workload generator statistics, Zipf
// skew, adversary operations.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "sim/adversary.h"
#include "sim/workload.h"
#include "storage/mem_env.h"

namespace medvault::sim {
namespace {

TEST(ZipfTest, StaysInRange) {
  Zipf zipf(100, 1.0, 7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(ZipfTest, IsSkewedTowardLowRanks) {
  Zipf zipf(1000, 1.0, 7);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    if (zipf.Next() < 10) low++;
  }
  // Under Zipf(1.0) over 1000 ranks, the top 10 ranks carry ~39% of
  // mass; uniform would give 1%.
  EXPECT_GT(low, n / 5);
}

TEST(ZipfTest, DeterministicPerSeed) {
  Zipf a(100, 1.0, 42), b(100, 1.0, 42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(EhrGeneratorTest, ProducesRequestedShape) {
  EhrGenerator::Options options;
  options.num_patients = 50;
  options.note_bytes = 400;
  EhrGenerator gen(1, options);
  for (int i = 0; i < 100; i++) {
    EhrRecord r = gen.Next();
    EXPECT_EQ(r.text.size(), 400u);
    EXPECT_FALSE(r.patient_id.empty());
    EXPECT_GE(r.keywords.size(), 1u);
    EXPECT_LE(r.keywords.size(), 3u);
    // Keywords appear inside the note text (so content-derived indexes
    // across stores behave the same).
    for (const std::string& kw : r.keywords) {
      EXPECT_NE(r.text.find(kw), std::string::npos) << kw;
    }
  }
}

TEST(EhrGeneratorTest, PatientsAreBounded) {
  EhrGenerator::Options options;
  options.num_patients = 10;
  EhrGenerator gen(2, options);
  std::set<std::string> patients;
  for (int i = 0; i < 300; i++) patients.insert(gen.Next().patient_id);
  EXPECT_LE(patients.size(), 10u);
  EXPECT_GE(patients.size(), 5u);  // most appear under skew
}

TEST(EhrGeneratorTest, QueryTermsComeFromConditionList) {
  EhrGenerator gen(3, {});
  const auto& conditions = EhrGenerator::Conditions();
  for (int i = 0; i < 50; i++) {
    std::string term = gen.QueryTerm();
    EXPECT_NE(std::find(conditions.begin(), conditions.end(), term),
              conditions.end())
        << term;
  }
}

TEST(EhrGeneratorTest, DeterministicPerSeed) {
  EhrGenerator a(9, {}), b(9, {});
  for (int i = 0; i < 20; i++) {
    EhrRecord ra = a.Next();
    EhrRecord rb = b.Next();
    EXPECT_EQ(ra.patient_id, rb.patient_id);
    EXPECT_EQ(ra.text, rb.text);
  }
}

TEST(AdversaryTest, TamperChangesBytes) {
  storage::MemEnv env;
  ASSERT_TRUE(
      storage::WriteStringToFile(&env, std::string(1000, 'a'), "f", false)
          .ok());
  InsiderAdversary insider(&env, 5);
  auto applied = insider.TamperRandomBytes({"f"}, 10);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 10);
  std::string contents;
  ASSERT_TRUE(storage::ReadFileToString(&env, "f", &contents).ok());
  int changed = 0;
  for (char c : contents) {
    if (c != 'a') changed++;
  }
  EXPECT_GT(changed, 0);
  EXPECT_LE(changed, 10);
}

TEST(AdversaryTest, NothingToTamperIsFlagged) {
  storage::MemEnv env;
  InsiderAdversary insider(&env, 5);
  EXPECT_TRUE(insider.TamperRandomBytes({"missing"}, 5)
                  .status()
                  .IsFailedPrecondition());
}

TEST(AdversaryTest, TruncateCutsTail) {
  storage::MemEnv env;
  ASSERT_TRUE(
      storage::WriteStringToFile(&env, "0123456789", "f", false).ok());
  InsiderAdversary insider(&env, 5);
  ASSERT_TRUE(insider.Truncate("f", 4).ok());
  std::string contents;
  ASSERT_TRUE(storage::ReadFileToString(&env, "f", &contents).ok());
  EXPECT_EQ(contents, "012345");
}

TEST(AdversaryTest, KeywordScan) {
  storage::MemEnv env;
  ASSERT_TRUE(storage::WriteStringToFile(
                  &env, "header cancer footer", "a", false)
                  .ok());
  ASSERT_TRUE(
      storage::WriteStringToFile(&env, "nothing here", "b", false).ok());
  InsiderAdversary insider(&env, 5);
  EXPECT_TRUE(*insider.ScanForKeyword({"a", "b"}, "cancer"));
  EXPECT_FALSE(*insider.ScanForKeyword({"b"}, "cancer"));
  EXPECT_FALSE(*insider.ScanForKeyword({"a", "b"}, "diabetes"));
}

}  // namespace
}  // namespace medvault::sim
