// Property tests for shard placement: routing must be a pure, stable,
// well-balanced function of the id bytes, and the persisted shard count
// must be enforced at open — if any of these break, records silently
// become unreachable (the worst failure mode a medical archive can
// have, worse than a crash).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/shard_router.h"
#include "core/sharded_vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

TEST(ShardRouterTest, FingerprintMatchesPublishedFnv1aVectors) {
  // Golden FNV-1a 64-bit values from the reference specification. If
  // someone "optimizes" the hash, placement of every existing vault
  // changes — these pin the exact function.
  EXPECT_EQ(ShardRouter::Fingerprint(""), 14695981039346656037ULL);
  EXPECT_EQ(ShardRouter::Fingerprint("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(ShardRouter::Fingerprint("foobar"), 0x85944171f73967e8ULL);
}

TEST(ShardRouterTest, PlacementIsDeterministicAcrossRouterInstances) {
  // Placement may depend only on (id bytes, shard count) — never on
  // process state, iteration order, or instance identity.
  ShardRouter a(8);
  ShardRouter b(8);
  for (int i = 0; i < 1000; ++i) {
    std::string id = "pat-" + std::to_string(i * 7919);
    EXPECT_EQ(a.ShardOf(id), b.ShardOf(id)) << id;
    EXPECT_LT(a.ShardOf(id), 8u);
  }
}

TEST(ShardRouterTest, PlacementIsUniformWithinTenPercent) {
  // 100k realistic patient ids over 4 shards: each shard must receive
  // its fair share ±10%, or hot shards defeat the point of sharding.
  constexpr uint32_t kShards = 4;
  constexpr int kIds = 100000;
  ShardRouter router(kShards);
  std::vector<int> counts(kShards, 0);
  for (int i = 0; i < kIds; ++i) {
    counts[router.ShardOf("patient-" + std::to_string(i))]++;
  }
  const double expected = static_cast<double>(kIds) / kShards;
  for (uint32_t k = 0; k < kShards; ++k) {
    EXPECT_GT(counts[k], expected * 0.9) << "shard " << k << " starved";
    EXPECT_LT(counts[k], expected * 1.1) << "shard " << k << " hot";
  }
}

TEST(ShardRouterTest, RecordIdRoundTripsThroughPrefix) {
  for (uint32_t k : {0u, 1u, 7u, 63u, 1023u}) {
    std::string id = ShardRouter::RecordIdPrefix(k) + "-42";
    uint32_t parsed = 0;
    ASSERT_TRUE(ShardRouter::ShardOfRecordId(id, &parsed)) << id;
    EXPECT_EQ(parsed, k);
  }
}

TEST(ShardRouterTest, RejectsIdsThatDoNotNameAShard) {
  uint32_t shard = 0;
  // Plain unsharded ids and near-miss spellings must not be misrouted.
  EXPECT_FALSE(ShardRouter::ShardOfRecordId("r-1", &shard));
  EXPECT_FALSE(ShardRouter::ShardOfRecordId("", &shard));
  EXPECT_FALSE(ShardRouter::ShardOfRecordId("s-r-1", &shard));
  EXPECT_FALSE(ShardRouter::ShardOfRecordId("sX-r-1", &shard));
  EXPECT_FALSE(ShardRouter::ShardOfRecordId("s3r-1", &shard));
  EXPECT_FALSE(ShardRouter::ShardOfRecordId("s3-x-1", &shard));
  EXPECT_FALSE(ShardRouter::ShardOfRecordId("shard-3", &shard));
}

TEST(ShardRouterTest, ManifestRoundTripsAndSurvivesReopen) {
  storage::MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("root").ok());
  ASSERT_TRUE(ShardRouter::WriteManifest(&env, "root", 6).ok());
  auto count = ShardRouter::ReadManifest(&env, "root");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
}

TEST(ShardRouterTest, MissingManifestIsNotFound) {
  storage::MemEnv env;
  auto count = ShardRouter::ReadManifest(&env, "nowhere");
  EXPECT_TRUE(count.status().IsNotFound());
}

ShardedVaultOptions BaseOptions(storage::Env* env, const Clock* clock,
                                uint32_t shards) {
  ShardedVaultOptions options;
  options.env = env;
  options.dir = "sharded";
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "router-test-entropy";
  options.num_shards = shards;
  options.signer_height = 4;
  return options;
}

TEST(ShardRouterTest, OpenRefusesShardCountMismatch) {
  storage::MemEnv env;
  ManualClock clock{1000000};
  {
    auto vault = ShardedVault::Open(BaseOptions(&env, &clock, 4));
    ASSERT_TRUE(vault.ok()) << vault.status().ToString();
  }
  // Same directory, different count: must refuse with a message that
  // names both counts — an operator typo here must not scramble routing.
  auto wrong = ShardedVault::Open(BaseOptions(&env, &clock, 8));
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().IsInvalidArgument());
  EXPECT_NE(wrong.status().message().find("4"), std::string::npos);
  EXPECT_NE(wrong.status().message().find("8"), std::string::npos);
  EXPECT_NE(wrong.status().message().find("mismatch"), std::string::npos);
  // The correct count still opens.
  auto right = ShardedVault::Open(BaseOptions(&env, &clock, 4));
  EXPECT_TRUE(right.ok()) << right.status().ToString();
}

TEST(ShardRouterTest, PlacementSurvivesVaultReopen) {
  storage::MemEnv env;
  ManualClock clock{1000000};
  std::map<std::string, RecordId> created;
  {
    auto opened = ShardedVault::Open(BaseOptions(&env, &clock, 4));
    ASSERT_TRUE(opened.ok());
    auto vault = std::move(*opened);
    ASSERT_TRUE(
        vault->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    for (int p = 0; p < 12; ++p) {
      std::string pat = "pat-" + std::to_string(p);
      ASSERT_TRUE(vault
                      ->RegisterPrincipal("admin-r",
                                          {pat, Role::kPatient, pat})
                      .ok());
      ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", pat).ok());
      auto id = vault->CreateRecord("dr-a", pat, "text/plain",
                                    "note for " + pat, {}, "hipaa-6y");
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      created[pat] = *id;
    }
    ASSERT_TRUE(vault->SyncAll().ok());
  }
  // Reopen: every record must still be reachable through routing alone,
  // and each id's embedded shard must equal the patient's hash shard.
  auto reopened = ShardedVault::Open(BaseOptions(&env, &clock, 4));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto vault = std::move(*reopened);
  for (const auto& [pat, id] : created) {
    uint32_t embedded = 0;
    ASSERT_TRUE(ShardRouter::ShardOfRecordId(id, &embedded)) << id;
    EXPECT_EQ(embedded, vault->router().ShardOf(pat)) << pat;
    auto read = vault->ReadRecord("dr-a", id);
    EXPECT_TRUE(read.ok()) << id << ": " << read.status().ToString();
  }
}

}  // namespace
}  // namespace medvault::core
