// GroupCommitter contract tests, plus the vault-level durability checks
// that give the contract teeth: N concurrent committers coalesce into
// few waves, the leader hands off cleanly, no committer is ever
// acknowledged before a wave covering it has synced, a failed wave
// fails exactly its cohort, and records acknowledged by
// CreateRecordsBatchDurable survive a power cut that drops every
// unsynced byte. Runs under TSan in tools/smoke.sh — the leader/
// follower handoff is precisely the code a lost-wakeup or data race
// would corrupt.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/group_commit.h"
#include "core/vault.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"

namespace medvault {
namespace {

using core::GroupCommitter;
using core::Role;
using core::Vault;
using core::VaultOptions;

TEST(GroupCommitTest, SingleCommitRunsExactlyOneWave) {
  int syncs = 0;
  obs::MetricsRegistry metrics;
  GroupCommitter::Options options;
  options.metrics = &metrics;
  GroupCommitter committer([&] { ++syncs; return Status::OK(); }, options);
  ASSERT_TRUE(committer.Commit().ok());
  EXPECT_EQ(syncs, 1);
  GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(stats.ops, 1u);
  EXPECT_EQ(stats.waves, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(metrics.GetCounter("commit.window.ops")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("commit.window.syncs")->Value(), 1u);
}

TEST(GroupCommitTest, SyncErrorPropagatesToTheCaller) {
  obs::MetricsRegistry metrics;
  GroupCommitter::Options options;
  options.metrics = &metrics;
  GroupCommitter committer([] { return Status::IoError("no media"); },
                           options);
  EXPECT_TRUE(committer.Commit().IsIoError());
  // A failed wave poisons only its own cohort: the next commit starts a
  // fresh wave, and this one succeeds or fails on its own sync.
  int calls = 0;
  GroupCommitter flaky(
      [&] {
        return ++calls == 1 ? Status::IoError("transient") : Status::OK();
      },
      options);
  EXPECT_TRUE(flaky.Commit().IsIoError());
  EXPECT_TRUE(flaky.Commit().ok());
  EXPECT_EQ(calls, 2);
}

TEST(GroupCommitTest, WindowSleeperIsUsedForTheLingering) {
  obs::MetricsRegistry metrics;
  std::vector<uint64_t> slept;
  GroupCommitter::Options options;
  options.metrics = &metrics;
  options.window_micros = 250;
  options.sleeper = [&](uint64_t micros) { slept.push_back(micros); };
  int syncs = 0;
  GroupCommitter committer([&] { ++syncs; return Status::OK(); }, options);
  ASSERT_TRUE(committer.Commit().ok());
  ASSERT_TRUE(committer.Commit().ok());
  // Each commit led its own wave (no concurrency here), so the leader
  // lingered once per wave, for exactly the configured window.
  EXPECT_EQ(slept, (std::vector<uint64_t>{250, 250}));
  EXPECT_EQ(syncs, 2);
}

// A leader blocked inside sync_fn must not stall later arrivals
// forever: they wait, and when the wave ends one of them leads the next
// wave that covers them.
TEST(GroupCommitTest, LeaderHandoffAfterBlockedWave) {
  obs::MetricsRegistry metrics;
  std::mutex mu;
  std::condition_variable cv;
  bool release_first_wave = false;
  std::atomic<int> syncs{0};

  GroupCommitter::Options options;
  options.metrics = &metrics;
  GroupCommitter committer(
      [&] {
        if (syncs.fetch_add(1) == 0) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return release_first_wave; });
        }
        return Status::OK();
      },
      options);

  std::thread first([&] { EXPECT_TRUE(committer.Commit().ok()); });
  // Wait until the first committer is inside its sync.
  while (syncs.load() == 0) std::this_thread::yield();

  std::thread second([&] { EXPECT_TRUE(committer.Commit().ok()); });
  std::thread third([&] { EXPECT_TRUE(committer.Commit().ok()); });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mu);
    release_first_wave = true;
  }
  cv.notify_all();
  first.join();
  second.join();
  third.join();

  GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(stats.ops, 3u);
  // The second and third arrived while wave 1 was in flight; wave 1
  // does not cover them (it began before they arrived), so exactly one
  // of them led wave 2 and the other rode it: 2 waves, 1 coalesced.
  EXPECT_EQ(stats.waves, 2u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(syncs.load(), 2);
}

TEST(GroupCommitTest, FailedWaveFailsExactlyItsCohort) {
  obs::MetricsRegistry metrics;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  GroupCommitter::Options options;
  options.metrics = &metrics;
  GroupCommitter committer(
      [&] {
        int wave = entered.fetch_add(1);
        if (wave == 0) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return release; });
          return Status::IoError("wave one dies");
        }
        return Status::OK();
      },
      options);

  std::thread leader([&] { EXPECT_TRUE(committer.Commit().IsIoError()); });
  while (entered.load() == 0) std::this_thread::yield();
  // This committer arrives during the failing wave; it is NOT covered
  // by it, so it must lead a fresh (successful) wave — the failure
  // stays confined to the cohort the failed wave actually covered.
  std::thread later([&] { EXPECT_TRUE(committer.Commit().ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  leader.join();
  later.join();
  EXPECT_EQ(entered.load(), 2);
}

// The coalescing claim and the durability claim, together, under real
// concurrency: N threads × M commits each. Every sync wave bumps a
// "durable epoch"; a committer records the epoch it observed *before*
// committing and asserts the epoch after Commit() returned is larger —
// i.e. some wave ran strictly after its request entered. waves < ops
// proves coalescing actually happened.
TEST(GroupCommitTest, ConcurrentCommitsCoalesceWithoutLosingDurability) {
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;

  obs::MetricsRegistry metrics;
  std::atomic<uint64_t> durable_epoch{0};
  GroupCommitter::Options options;
  options.metrics = &metrics;
  GroupCommitter committer(
      [&] {
        // Simulated sync latency widens the coalescing window; the
        // epoch bump models "everything outstanding is now on media".
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        durable_epoch.fetch_add(1);
        return Status::OK();
      },
      options);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCommitsPerThread; i++) {
        const uint64_t before = durable_epoch.load();
        if (!committer.Commit().ok() || durable_epoch.load() <= before) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0)
      << "a commit was acknowledged before a covering wave synced";
  GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(stats.ops, static_cast<uint64_t>(kThreads * kCommitsPerThread));
  EXPECT_EQ(stats.waves + stats.coalesced, stats.ops);
  EXPECT_LT(stats.waves, stats.ops) << "no coalescing ever happened";
  EXPECT_EQ(metrics.GetCounter("commit.window.syncs")->Value(), stats.waves);
}

// No lost wakeups: with a nonzero window and many more committers than
// waves, every committer must eventually return. A lost notify_all
// would hang this test — the ctest timeout turns that into a failure.
TEST(GroupCommitTest, NoLostWakeupsUnderWindowedLoad) {
  obs::MetricsRegistry metrics;
  GroupCommitter::Options options;
  options.metrics = &metrics;
  options.window_micros = 500;
  GroupCommitter committer([] { return Status::OK(); }, options);

  std::vector<std::thread> threads;
  for (int t = 0; t < 12; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; i++) ASSERT_TRUE(committer.Commit().ok());
    });
  }
  for (auto& t : threads) t.join();
  GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(stats.ops, 120u);
  EXPECT_LT(stats.waves, stats.ops);
}

// ---------------------------------------------------------------------------
// Vault-level durability: what CreateRecordsBatchDurable acknowledges
// must survive a power cut, with and without a commit window.
// ---------------------------------------------------------------------------

VaultOptions TestOptions(storage::Env* env, const Clock* clock,
                         uint64_t window_micros) {
  VaultOptions options;
  options.env = env;
  options.dir = "vault";
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "group-commit-entropy";
  options.signer_height = 4;
  options.commit_window_micros = window_micros;
  return options;
}

void RunDurableBatchCrashCheck(uint64_t window_micros) {
  storage::MemEnv env;
  env.SetCrashTrackingEnabled(true);
  ManualClock clock(1000000);
  std::vector<std::string> acked;
  {
    auto opened = Vault::Open(TestOptions(&env, &clock, window_micros));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Vault* vault = opened->get();
    ASSERT_TRUE(
        vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok());
    ASSERT_TRUE(
        vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}).ok());
    ASSERT_TRUE(
        vault->RegisterPrincipal("admin", {"p", Role::kPatient, "P"}).ok());
    ASSERT_TRUE(vault->AssignCare("admin", "dr", "p").ok());
    ASSERT_TRUE(vault->SyncAll().ok());

    // Two concurrent durable batches: both acked sets must survive the
    // cut no matter how their windows coalesced.
    std::mutex mu;
    std::vector<std::thread> writers;
    for (int t = 0; t < 2; t++) {
      writers.emplace_back([&, t] {
        auto ids = vault->CreateRecordsBatchDurable(
            "dr",
            {{"p", "text/plain", "note " + std::to_string(t) + "a", {"w"},
              "hipaa-6y"},
             {"p", "text/plain", "note " + std::to_string(t) + "b", {"w"},
              "hipaa-6y"}});
        ASSERT_TRUE(ids.ok()) << ids.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        acked.insert(acked.end(), ids->begin(), ids->end());
      });
    }
    for (auto& w : writers) w.join();
    ASSERT_EQ(acked.size(), 4u);
    // Power cut: the vault object is destroyed with the plug pulled —
    // nothing after the last acked wave may be assumed.
  }
  env.CrashAndRecover(storage::CrashMode::kDropUnsynced);

  auto reopened = Vault::Open(TestOptions(&env, &clock, window_micros));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Vault* vault = reopened->get();
  EXPECT_TRUE(vault->VerifyAudit().ok());
  for (const auto& id : acked) {
    auto read = vault->ReadRecord("dr", id);
    EXPECT_TRUE(read.ok())
        << "durably acked record lost in the cut: " << id << ": "
        << read.status().ToString();
  }
}

TEST(GroupCommitVaultTest, AckedDurableBatchSurvivesPowerCutNoWindow) {
  RunDurableBatchCrashCheck(/*window_micros=*/0);
}

TEST(GroupCommitVaultTest, AckedDurableBatchSurvivesPowerCutWithWindow) {
  RunDurableBatchCrashCheck(/*window_micros=*/300);
}

TEST(GroupCommitVaultTest, WindowedIngestCoalescesSyncWaves) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  obs::MetricsRegistry metrics;
  VaultOptions options = TestOptions(&env, &clock, /*window_micros=*/400);
  options.metrics = &metrics;
  auto opened = Vault::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Vault* vault = opened->get();
  ASSERT_TRUE(
      vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok());
  ASSERT_TRUE(
      vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}).ok());
  ASSERT_TRUE(
      vault->RegisterPrincipal("admin", {"p", Role::kPatient, "P"}).ok());
  ASSERT_TRUE(vault->AssignCare("admin", "dr", "p").ok());
  ASSERT_TRUE(vault->SyncAll().ok());
  const uint64_t setup_syncs =
      metrics.GetCounter("commit.window.syncs")->Value();

  constexpr int kWriters = 6;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&, t] {
      auto ids = vault->CreateRecordsBatchDurable(
          "dr", {{"p", "text/plain", "coalesce " + std::to_string(t), {"c"},
                  "hipaa-6y"}});
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    });
  }
  for (auto& w : writers) w.join();

  const uint64_t ops = metrics.GetCounter("commit.window.ops")->Value();
  const uint64_t syncs =
      metrics.GetCounter("commit.window.syncs")->Value() - setup_syncs;
  EXPECT_GE(ops, static_cast<uint64_t>(kWriters));
  // With a 400us window and 6 concurrent writers, at least some must
  // have shared a wave. (Exact counts are scheduling-dependent.)
  EXPECT_LT(syncs, static_cast<uint64_t>(kWriters))
      << "every durable batch paid its own fsync — no group commit";
}

}  // namespace
}  // namespace medvault
