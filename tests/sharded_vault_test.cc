// ShardedVault tests: partitioning must be invisible to correctness —
// every Vault guarantee (access control, audit, retention, disposal,
// verifiable migration) holds through the router, while records really
// do spread across independent per-shard stores.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/migration.h"
#include "core/shard_router.h"
#include "core/sharded_vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class ShardedVaultTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;

  void SetUp() override {
    auto opened = ShardedVault::Open(Options("sharded"));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    vault_ = std::move(*opened);
    Bootstrap(vault_.get());
  }

  ShardedVaultOptions Options(const std::string& dir,
                              const std::string& entropy = "sharded-test") {
    ShardedVaultOptions options;
    options.env = &env_;
    options.dir = dir;
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = entropy;
    options.num_shards = kShards;
    options.signer_height = 4;
    return options;
  }

  void Bootstrap(ShardedVault* vault) {
    ASSERT_TRUE(
        vault->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin-r",
                                        {"admin-2", Role::kAdmin, "Backup"})
                    .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault
                    ->RegisterPrincipal("admin-r",
                                        {"aud-x", Role::kAuditor, "X"})
                    .ok());
    for (int p = 0; p < 16; ++p) {
      std::string pat = Patient(p);
      ASSERT_TRUE(vault
                      ->RegisterPrincipal("admin-r",
                                          {pat, Role::kPatient, pat})
                      .ok());
      ASSERT_TRUE(vault->AssignCare("admin-r", "dr-a", pat).ok());
    }
  }

  static std::string Patient(int p) { return "pat-" + std::to_string(p); }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<ShardedVault> vault_;
};

TEST_F(ShardedVaultTest, RecordsSpreadAcrossShardsAndRouteBack) {
  std::set<uint32_t> used_shards;
  for (int p = 0; p < 16; ++p) {
    auto id = vault_->CreateRecord("dr-a", Patient(p), "text/plain",
                                   "note " + std::to_string(p), {"spread"},
                                   "hipaa-6y");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    uint32_t shard = 0;
    ASSERT_TRUE(ShardRouter::ShardOfRecordId(*id, &shard));
    EXPECT_EQ(shard, vault_->router().ShardOf(Patient(p)));
    used_shards.insert(shard);
    auto read = vault_->ReadRecord("dr-a", *id);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->plaintext, "note " + std::to_string(p));
  }
  // 16 patients over 4 shards: overwhelmingly likely to hit several.
  EXPECT_GE(used_shards.size(), 2u) << "all records landed on one shard";
  // And the shards really hold disjoint record sets.
  size_t total = 0;
  for (uint32_t k = 0; k < kShards; ++k) {
    total += vault_->shard(k)->ListRecordIds().size();
  }
  EXPECT_EQ(total, 16u);
  EXPECT_EQ(vault_->ListRecordIds().size(), 16u);
}

TEST_F(ShardedVaultTest, BatchIngestFansOutAndPreservesOrder) {
  std::vector<Vault::NewRecord> batch;
  for (int i = 0; i < 40; ++i) {
    Vault::NewRecord record;
    record.patient_id = Patient(i % 16);
    record.content_type = "text/plain";
    record.plaintext = "batch item " + std::to_string(i);
    record.keywords = {"batch"};
    record.retention_policy = "hipaa-6y";
    batch.push_back(std::move(record));
  }
  auto ids = vault_->CreateRecordsBatch("dr-a", batch);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), batch.size());
  ASSERT_TRUE(vault_->SyncAll().ok());

  // ids[i] belongs to batch[i]: the i-th id must decrypt to the i-th
  // plaintext even though sub-batches ran on different shards.
  std::set<RecordId> unique_ids;
  for (size_t i = 0; i < ids->size(); ++i) {
    EXPECT_TRUE(unique_ids.insert((*ids)[i]).second);
    auto read = vault_->ReadRecord("dr-a", (*ids)[i]);
    ASSERT_TRUE(read.ok()) << (*ids)[i];
    EXPECT_EQ(read->plaintext, "batch item " + std::to_string(i)) << i;
  }
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

TEST_F(ShardedVaultTest, SearchMergesAcrossShards) {
  std::vector<RecordId> tagged;
  for (int p = 0; p < 16; ++p) {
    auto id = vault_->CreateRecord("dr-a", Patient(p), "text/plain", "x",
                                   {"diabetes", "q" + std::to_string(p)},
                                   "hipaa-6y");
    ASSERT_TRUE(id.ok());
    tagged.push_back(*id);
  }
  auto hits = vault_->SearchKeyword("dr-a", "diabetes");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(std::set<RecordId>(hits->begin(), hits->end()),
            std::set<RecordId>(tagged.begin(), tagged.end()));
  // Conjunctive search stays per-record correct through the merge.
  auto one = vault_->SearchKeywordsAll("dr-a", {"diabetes", "q3"});
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0], tagged[3]);
}

TEST_F(ShardedVaultTest, UnroutableRecordIdIsNotFound) {
  EXPECT_TRUE(vault_->ReadRecord("dr-a", "r-1").status().IsNotFound());
  EXPECT_TRUE(vault_->ReadRecord("dr-a", "s99-r-1").status().IsNotFound());
  EXPECT_TRUE(
      vault_->GetRecordMeta("not-an-id").status().IsNotFound());
}

TEST_F(ShardedVaultTest, AuditChainsVerifyPerShardAndCheckpoint) {
  for (int p = 0; p < 8; ++p) {
    ASSERT_TRUE(vault_
                    ->CreateRecord("dr-a", Patient(p), "text/plain", "x", {},
                                   "hipaa-6y")
                    .ok());
  }
  EXPECT_TRUE(vault_->VerifyAudit().ok());
  auto checkpoints = vault_->CheckpointAudit();
  ASSERT_TRUE(checkpoints.ok());
  EXPECT_EQ(checkpoints->size(), kShards);
  EXPECT_TRUE(vault_->VerifyEverything().ok());
  // The merged audit trail covers every shard's events.
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  int creates = 0;
  for (const AuditEvent& event : *trail) {
    if (event.action == AuditAction::kCreate) creates++;
  }
  EXPECT_EQ(creates, 8);
}

TEST_F(ShardedVaultTest, DisposalRoutesAndDualControlSpansShards) {
  auto id = vault_->CreateRecord("dr-a", Patient(1), "text/plain",
                                 "expiring", {}, "short-1y");
  ASSERT_TRUE(id.ok());
  clock_.Advance(400LL * 24 * 3600 * kMicrosPerSecond);

  auto expired = vault_->ListExpiredRecords("admin-r");
  ASSERT_TRUE(expired.ok());
  ASSERT_EQ(expired->size(), 1u);
  EXPECT_EQ((*expired)[0].record_id, *id);

  // Two-person flow through the shard-qualified request id.
  auto request = vault_->RequestDisposal("admin-r", *id);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->compare(0, 1, "s"), 0) << *request;
  // Same admin cannot approve; a second admin can.
  EXPECT_FALSE(vault_->ApproveDisposal("admin-r", *request).ok());
  auto cert = vault_->ApproveDisposal("admin-2", *request);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_FALSE(vault_->ReadRecord("dr-a", *id).ok());
  // Bogus request ids are rejected, not misrouted.
  EXPECT_FALSE(vault_->ApproveDisposal("admin-2", "s1:dr-99").ok());
  EXPECT_FALSE(vault_->ApproveDisposal("admin-2", "nonsense").ok());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

TEST_F(ShardedVaultTest, StateSurvivesReopenIncludingCounters) {
  std::vector<RecordId> ids;
  for (int p = 0; p < 8; ++p) {
    auto id = vault_->CreateRecord("dr-a", Patient(p), "text/plain",
                                   "persist " + std::to_string(p), {},
                                   "hipaa-6y");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(vault_->SyncAll().ok());
  std::string root_before = vault_->ContentRoot();
  vault_.reset();

  auto reopened = ShardedVault::Open(Options("sharded"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  vault_ = std::move(*reopened);
  EXPECT_EQ(vault_->ContentRoot(), root_before);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto read = vault_->ReadRecord("dr-a", ids[i]);
    ASSERT_TRUE(read.ok()) << ids[i];
    EXPECT_EQ(read->plaintext, "persist " + std::to_string(i));
  }
  // New records keep globally-unique ids (per-shard counters resumed).
  auto fresh = vault_->CreateRecord("dr-a", Patient(0), "text/plain",
                                    "after reopen", {}, "hipaa-6y");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(std::count(ids.begin(), ids.end(), *fresh), 0);
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

TEST_F(ShardedVaultTest, CachedReadsAcrossShardsHitSharedCache) {
  ASSERT_NE(vault_->cache(), nullptr);
  std::vector<RecordId> ids;
  for (int p = 0; p < 8; ++p) {
    auto id = vault_->CreateRecord("dr-a", Patient(p), "text/plain", "warm",
                                   {}, "hipaa-6y");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (const RecordId& id : ids) {
    ASSERT_TRUE(vault_->ReadRecord("dr-a", id).ok());  // populate
  }
  uint64_t misses_before = vault_->CacheStats().misses;
  for (const RecordId& id : ids) {
    ASSERT_TRUE(vault_->ReadRecord("dr-a", id).ok());  // all hits
  }
  EXPECT_EQ(vault_->CacheStats().misses, misses_before);
  EXPECT_GE(vault_->CacheStats().hits, ids.size());
}

TEST_F(ShardedVaultTest, BreakGlassAndDisclosuresRouteToPatientShard) {
  auto id = vault_->CreateRecord("dr-a", Patient(5), "text/plain",
                                 "sensitive", {}, "hipaa-6y");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("admin-r",
                                      {"dr-er", Role::kPhysician, "ER"})
                  .ok());
  // dr-er has no care relationship: normal read denied, break-glass
  // grants temporary access on the patient's shard.
  EXPECT_FALSE(vault_->ReadRecord("dr-er", *id).ok());
  auto grant = vault_->BreakGlass("dr-er", Patient(5), "ER admission",
                                  3600 * kMicrosPerSecond);
  ASSERT_TRUE(grant.ok()) << grant.status().ToString();
  EXPECT_TRUE(vault_->ReadRecord("dr-er", *id).ok());

  auto events = vault_->ListBreakGlassEvents("aud-x");
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 1u);
  auto disclosures = vault_->AccountingOfDisclosures("aud-x", Patient(5));
  ASSERT_TRUE(disclosures.ok());
  EXPECT_FALSE(disclosures->empty());
}

TEST_F(ShardedVaultTest, RotateMasterKeyKeepsEveryShardReadable) {
  std::vector<RecordId> ids;
  for (int p = 0; p < 8; ++p) {
    auto id = vault_->CreateRecord("dr-a", Patient(p), "text/plain",
                                   "rotate me", {}, "hipaa-6y");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(
      vault_->RotateMasterKey("admin-r", std::string(32, 'N')).ok());
  for (const RecordId& id : ids) {
    EXPECT_TRUE(vault_->ReadRecord("dr-a", id).ok()) << id;
  }
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

TEST_F(ShardedVaultTest, ShardedMigrationProducesPerShardReceipts) {
  std::vector<RecordId> ids;
  for (int p = 0; p < 12; ++p) {
    auto id = vault_->CreateRecord("dr-a", Patient(p), "text/plain",
                                   "migrate " + std::to_string(p), {},
                                   "hipaa-6y");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(vault_->SyncAll().ok());

  auto target_opened =
      ShardedVault::Open(Options("sharded-target", "target-entropy"));
  ASSERT_TRUE(target_opened.ok());
  auto target = std::move(*target_opened);
  Bootstrap(target.get());

  auto receipts = Migrator::MigrateSharded(vault_.get(), target.get(),
                                           "admin-r");
  ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  ASSERT_EQ(receipts->size(), kShards);
  for (uint32_t k = 0; k < kShards; ++k) {
    EXPECT_TRUE(Migrator::VerifyReceipt((*receipts)[k], vault_->shard(k),
                                        target->shard(k))
                    .ok())
        << "shard " << k;
  }
  // The whole-vault roots agree, and every record reads on the target.
  EXPECT_EQ(target->ContentRoot(), vault_->ContentRoot());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto read = target->ReadRecord("dr-a", ids[i]);
    ASSERT_TRUE(read.ok()) << ids[i] << ": " << read.status().ToString();
    EXPECT_EQ(read->plaintext, "migrate " + std::to_string(i));
  }
  EXPECT_TRUE(target->VerifyEverything().ok());
}

TEST_F(ShardedVaultTest, MigrateShardedRefusesMismatchedCounts) {
  ShardedVaultOptions other = Options("sharded-two", "two-entropy");
  other.num_shards = 2;
  auto target = ShardedVault::Open(other);
  ASSERT_TRUE(target.ok());
  auto receipts =
      Migrator::MigrateSharded(vault_.get(), target->get(), "admin-r");
  ASSERT_FALSE(receipts.ok());
  EXPECT_TRUE(receipts.status().IsInvalidArgument());
}

}  // namespace
}  // namespace medvault::core
