// Differential tests for the CPU-dispatched crypto kernels: whatever
// block kernel the runtime dispatch selected (SHA-NI / AES-NI or the
// portable fallback) must be byte-identical to the scalar implementation
// on NIST vectors, every message length up to 1 KiB, and multi-block
// state evolution. Run with MEDVAULT_FORCE_SCALAR=1 to pin both sides
// to the fallback (the comparisons then degenerate to self-consistency,
// while the known-answer tests still check the spec).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/hex.h"
#include "crypto/aes.h"
#include "crypto/aes_kernels.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernels.h"

namespace medvault::crypto {
namespace {

using internal::ActiveSha256Kernel;
using internal::Sha256BlockFn;
using internal::Sha256BlocksScalar;

// FIPS 180-4 initial hash values.
constexpr uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                             0xa54ff53a, 0x510e527f, 0x9b05688c,
                             0x1f83d9ab, 0x5be0cd19};

// Full SHA-256 built directly on one block kernel: pad per FIPS 180-4,
// compress, serialize. Lets the test drive the dispatched and scalar
// kernels over identical messages, independent of the public class.
std::string DigestWithKernel(Sha256BlockFn fn, const std::string& msg) {
  std::string padded = msg;
  padded.push_back('\x80');
  while (padded.size() % 64 != 56) padded.push_back('\0');
  uint64_t bits = static_cast<uint64_t>(msg.size()) * 8;
  for (int i = 7; i >= 0; i--) {
    padded.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
  uint32_t h[8];
  std::memcpy(h, kIv, sizeof(h));
  fn(h, reinterpret_cast<const uint8_t*>(padded.data()),
     padded.size() / 64);
  std::string digest(kDigestSize, '\0');
  for (int i = 0; i < 8; i++) {
    digest[4 * i + 0] = static_cast<char>((h[i] >> 24) & 0xff);
    digest[4 * i + 1] = static_cast<char>((h[i] >> 16) & 0xff);
    digest[4 * i + 2] = static_cast<char>((h[i] >> 8) & 0xff);
    digest[4 * i + 3] = static_cast<char>(h[i] & 0xff);
  }
  return digest;
}

// Deterministic bytes so failures reproduce (xorshift64).
class Prng {
 public:
  explicit Prng(uint64_t seed) : s_(seed) {}
  uint8_t NextByte() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return static_cast<uint8_t>(s_ & 0xff);
  }
  std::string NextBytes(size_t n) {
    std::string out(n, '\0');
    for (size_t i = 0; i < n; i++) out[i] = static_cast<char>(NextByte());
    return out;
  }

 private:
  uint64_t s_;
};

TEST(Sha256DispatchTest, KernelsMatchNistVectorsExactly) {
  struct Vector {
    std::string msg;
    const char* hex;
  };
  const Vector kVectors[] = {
      {"",
       "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
      {std::string(1000000, 'a'),
       "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"},
  };
  Sha256BlockFn active = ActiveSha256Kernel();
  for (const Vector& v : kVectors) {
    EXPECT_EQ(HexEncode(DigestWithKernel(active, v.msg)), v.hex);
    EXPECT_EQ(HexEncode(DigestWithKernel(&Sha256BlocksScalar, v.msg)),
              v.hex);
    EXPECT_EQ(HexEncode(Sha256Digest(v.msg)), v.hex);
  }
}

TEST(Sha256DispatchTest, KernelsMatchOnEveryLengthUpTo1KiB) {
  Prng prng(0x9e3779b97f4a7c15ull);
  Sha256BlockFn active = ActiveSha256Kernel();
  for (size_t len = 0; len <= 1024; len++) {
    std::string msg = prng.NextBytes(len);
    std::string a = DigestWithKernel(active, msg);
    ASSERT_EQ(a, DigestWithKernel(&Sha256BlocksScalar, msg))
        << "kernel divergence at len=" << len;
    ASSERT_EQ(a, Sha256Digest(msg)) << "public API diverged at len=" << len;
  }
}

TEST(Sha256DispatchTest, KernelsEvolveIdenticalStateAcrossBlockRuns) {
  // Start from a non-IV chaining state and push 1..9 blocks through both
  // kernels in one call each; the eight state words must match bit-for-
  // bit. This exercises the multi-block loop (and the SHA-NI kernel's
  // state (re)packing) rather than just one compression.
  Prng prng(0xdeadbeefcafef00dull);
  for (size_t nblocks = 1; nblocks <= 9; nblocks++) {
    uint32_t ha[8];
    uint32_t hs[8];
    for (int i = 0; i < 8; i++) {
      ha[i] = hs[i] = kIv[i] ^ static_cast<uint32_t>(0x01010101u * nblocks);
    }
    std::string blocks = prng.NextBytes(nblocks * 64);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(blocks.data());
    ActiveSha256Kernel()(ha, p, nblocks);
    Sha256BlocksScalar(hs, p, nblocks);
    for (int i = 0; i < 8; i++) {
      ASSERT_EQ(ha[i], hs[i]) << "word " << i << " nblocks=" << nblocks;
    }
  }
}

TEST(AesDispatchTest, Fips197KnownAnswers) {
  // FIPS 197 appendix C known answers pin whichever kernel the dispatch
  // selected to the spec itself, not just to the other implementation.
  const std::string pt = *HexDecode("00112233445566778899aabbccddeeff");
  {
    Aes aes;
    ASSERT_TRUE(aes.Init(*HexDecode("000102030405060708090a0b0c0d0e0f"))
                    .ok());
    uint8_t ct[16];
    aes.EncryptBlock(reinterpret_cast<const uint8_t*>(pt.data()), ct);
    EXPECT_EQ(HexEncode(std::string(reinterpret_cast<char*>(ct), 16)),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
  }
  {
    Aes aes;
    ASSERT_TRUE(
        aes.Init(*HexDecode("000102030405060708090a0b0c0d0e0f"
                            "101112131415161718191a1b1c1d1e1f"))
            .ok());
    uint8_t ct[16];
    aes.EncryptBlock(reinterpret_cast<const uint8_t*>(pt.data()), ct);
    EXPECT_EQ(HexEncode(std::string(reinterpret_cast<char*>(ct), 16)),
              "8ea2b7ca516745bfeafc49904b496089");
  }
}

TEST(AesDispatchTest, EncryptBlocksMatchesSingleBlockCalls) {
  // The AES-NI kernel pipelines four blocks per iteration; every span
  // length (including the 1..3-block tail) must equal the single-block
  // path, and decryption must round-trip each block.
  Prng prng(0x1234567890abcdefull);
  for (size_t key_size : {kAes128KeySize, kAes256KeySize}) {
    Aes aes;
    ASSERT_TRUE(aes.Init(prng.NextBytes(key_size)).ok());
    for (size_t nblocks : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 33u}) {
      std::string in = prng.NextBytes(nblocks * kAesBlockSize);
      const uint8_t* inp = reinterpret_cast<const uint8_t*>(in.data());

      std::vector<uint8_t> bulk(nblocks * kAesBlockSize);
      aes.EncryptBlocks(inp, bulk.data(), nblocks);

      std::vector<uint8_t> single(nblocks * kAesBlockSize);
      for (size_t b = 0; b < nblocks; b++) {
        aes.EncryptBlock(inp + b * kAesBlockSize,
                         single.data() + b * kAesBlockSize);
      }
      ASSERT_EQ(std::memcmp(bulk.data(), single.data(), bulk.size()), 0)
          << "key_size=" << key_size << " nblocks=" << nblocks;

      for (size_t b = 0; b < nblocks; b++) {
        uint8_t round_trip[16];
        aes.DecryptBlock(bulk.data() + b * kAesBlockSize, round_trip);
        ASSERT_EQ(std::memcmp(round_trip, inp + b * kAesBlockSize, 16), 0)
            << "block " << b;
      }
    }
  }
}

TEST(AesDispatchTest, EncryptBlocksAllowsInPlaceOperation) {
  Prng prng(0x0f0f0f0f0f0f0f0full);
  Aes aes;
  ASSERT_TRUE(aes.Init(prng.NextBytes(kAes256KeySize)).ok());
  const size_t nblocks = 9;
  std::string in = prng.NextBytes(nblocks * kAesBlockSize);

  std::vector<uint8_t> expected(nblocks * kAesBlockSize);
  aes.EncryptBlocks(reinterpret_cast<const uint8_t*>(in.data()),
                    expected.data(), nblocks);

  std::vector<uint8_t> inplace(in.begin(), in.end());
  aes.EncryptBlocks(inplace.data(), inplace.data(), nblocks);
  EXPECT_EQ(std::memcmp(inplace.data(), expected.data(), expected.size()),
            0);
}

TEST(DispatchReportTest, AccelerationFlagsAreConsistent) {
  // ActiveSha256Kernel() must agree with the Sha256Accelerated() report:
  // accelerated implies the active kernel is not the scalar one.
  if (internal::Sha256Accelerated()) {
    EXPECT_NE(ActiveSha256Kernel(), &Sha256BlocksScalar);
  } else {
    EXPECT_EQ(ActiveSha256Kernel(), &Sha256BlocksScalar);
  }
  // AesAccelerated() has no kernel pointer to compare, but it must be
  // callable and stable across calls (dispatch happens once).
  EXPECT_EQ(internal::AesAccelerated(), internal::AesAccelerated());
}

}  // namespace
}  // namespace medvault::crypto
