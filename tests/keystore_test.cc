// KeyStore tests: key hierarchy, crypto-shredding, persistence, master
// key rotation, and the guarantee that destroyed keys never resurface.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/coding.h"
#include "core/keystore.h"
#include "crypto/aead.h"
#include "crypto/ctr.h"
#include "crypto/sha256.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class KeyStoreTest : public ::testing::Test {
 protected:
  void OpenStore(const std::string& master = std::string(32, 'M')) {
    store_ = std::make_unique<KeyStore>(&env_, "keys.db", master,
                                        "drbg-seed");
    ASSERT_TRUE(store_->Open().ok());
  }

  storage::MemEnv env_;
  std::unique_ptr<KeyStore> store_;
};

TEST_F(KeyStoreTest, CreateAndGet) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto key = store_->GetKey("r-1");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->size(), 32u);
  EXPECT_EQ(store_->LiveKeyCount(), 1u);
}

TEST_F(KeyStoreTest, KeysAreUniquePerRecord) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->CreateKey("r-2").ok());
  EXPECT_NE(*store_->GetKey("r-1"), *store_->GetKey("r-2"));
}

TEST_F(KeyStoreTest, DuplicateCreateRejected) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  EXPECT_TRUE(store_->CreateKey("r-1").IsAlreadyExists());
}

TEST_F(KeyStoreTest, UnknownRecordIsNotFound) {
  OpenStore();
  EXPECT_TRUE(store_->GetKey("nope").status().IsNotFound());
  EXPECT_TRUE(store_->DestroyKey("nope").IsNotFound());
}

TEST_F(KeyStoreTest, IndexKeyDiffersFromDataKey) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto data_key = store_->GetKey("r-1");
  auto index_key = store_->GetIndexKey("r-1");
  ASSERT_TRUE(data_key.ok());
  ASSERT_TRUE(index_key.ok());
  EXPECT_NE(*data_key, *index_key);
  EXPECT_EQ(index_key->size(), 32u);
}

TEST_F(KeyStoreTest, KeyRefResolvesWhileAlive) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto ref = store_->GetKeyRef("r-1");
  ASSERT_TRUE(ref.ok());
  auto resolved = store_->ResolveKeyRef(*ref);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, "r-1");
}

TEST_F(KeyStoreTest, DestroyShredsEverything) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto ref = store_->GetKeyRef("r-1");
  ASSERT_TRUE(ref.ok());

  ASSERT_TRUE(store_->DestroyKey("r-1").ok());
  EXPECT_TRUE(store_->IsDestroyed("r-1"));
  EXPECT_TRUE(store_->GetKey("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->GetIndexKey("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->GetKeyRef("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->ResolveKeyRef(*ref).status().IsNotFound());
  EXPECT_EQ(store_->LiveKeyCount(), 0u);
  // Double destruction is flagged, not silently absorbed.
  EXPECT_TRUE(store_->DestroyKey("r-1").IsKeyDestroyed());
}

TEST_F(KeyStoreTest, DestroyedKeyCannotBeRecreated) {
  // A destroyed record id must never silently get a fresh key (which
  // would hide the shredding from later readers).
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->DestroyKey("r-1").ok());
  EXPECT_TRUE(store_->CreateKey("r-1").IsAlreadyExists());
}

TEST_F(KeyStoreTest, PersistsAcrossReopen) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->CreateKey("r-2").ok());
  std::string key1 = *store_->GetKey("r-1");
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  OpenStore();
  EXPECT_EQ(*store_->GetKey("r-1"), key1);
  EXPECT_EQ(store_->LiveKeyCount(), 2u);
}

TEST_F(KeyStoreTest, DestructionSurvivesReopen) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->CreateKey("r-2").ok());
  ASSERT_TRUE(store_->DestroyKey("r-1").ok());  // persists immediately
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  OpenStore();
  EXPECT_TRUE(store_->GetKey("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->GetKey("r-2").ok());
}

TEST_F(KeyStoreTest, ShreddedKeyBytesAbsentFromDisk) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  std::string key = *store_->GetKey("r-1");
  ASSERT_TRUE(store_->Persist().ok());
  ASSERT_TRUE(store_->DestroyKey("r-1").ok());

  // Neither the raw key nor any trace of its wrapped blob may remain.
  std::string contents;
  ASSERT_TRUE(storage::ReadFileToString(&env_, "keys.db", &contents).ok());
  EXPECT_EQ(contents.find(key), std::string::npos);
}

TEST_F(KeyStoreTest, WrongMasterKeyFailsOpen) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  auto bad = std::make_unique<KeyStore>(&env_, "keys.db",
                                        std::string(32, 'X'), "drbg-seed");
  EXPECT_TRUE(bad->Open().IsTamperDetected());
}

TEST_F(KeyStoreTest, MasterKeyRotationPreservesDataKeys) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  std::string key = *store_->GetKey("r-1");
  std::string new_master(32, 'N');
  ASSERT_TRUE(store_->RotateMasterKey(new_master).ok());
  EXPECT_EQ(*store_->GetKey("r-1"), key);
  store_.reset();

  // Old master no longer opens; new one does and finds the same key.
  auto old_store = std::make_unique<KeyStore>(
      &env_, "keys.db", std::string(32, 'M'), "drbg-seed");
  EXPECT_FALSE(old_store->Open().ok());

  OpenStore(new_master);
  EXPECT_EQ(*store_->GetKey("r-1"), key);
}

TEST_F(KeyStoreTest, TamperedKeyLogDetected) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("keys.db", &size).ok());
  ASSERT_TRUE(env_.UnsafeOverwrite("keys.db", size / 2, "Z").ok());

  auto tampered = std::make_unique<KeyStore>(
      &env_, "keys.db", std::string(32, 'M'), "drbg-seed");
  EXPECT_FALSE(tampered->Open().ok());
}

TEST_F(KeyStoreTest, TornFinalEntryToleratedOnReopen) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->CreateKey("r-2").ok());
  store_.reset();

  // Tear into the final (r-2) entry, as a power failure mid-append
  // would. Reopen must succeed with r-1 intact and r-2 gone — and the
  // id must be reusable, not burned.
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("keys.db", &size).ok());
  ASSERT_TRUE(env_.UnsafeTruncate("keys.db", size - 4).ok());

  OpenStore();
  EXPECT_TRUE(store_->GetKey("r-1").ok());
  EXPECT_TRUE(store_->GetKey("r-2").status().IsNotFound());
  EXPECT_EQ(store_->LiveKeyCount(), 1u);
  EXPECT_TRUE(store_->CreateKey("r-2").ok());
}

TEST_F(KeyStoreTest, TornMagicRecordRecoversToEmptyStore) {
  // Crash during the very first write of a fresh store can leave only a
  // prefix of the v2 magic record. That prefix must be recognized as a
  // (torn) v2 log — not misparsed as v1 garbage — and recovered.
  OpenStore();
  store_.reset();
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("keys.db", &size).ok());
  ASSERT_GT(size, 3u);
  ASSERT_TRUE(env_.UnsafeTruncate("keys.db", size - 3).ok());

  OpenStore();
  EXPECT_EQ(store_->LiveKeyCount(), 0u);
  EXPECT_TRUE(store_->CreateKey("r-1").ok());
}

class KeyStoreV1Test : public KeyStoreTest {
 protected:
  // Builds a raw v1 entry exactly as the previous format wrote it:
  // kind(1) | lp(record_id) | lp(wrap(data_key)).
  std::string V1LiveEntry(const std::string& record_id,
                          const std::string& data_key) {
    crypto::Aead master_aead;
    EXPECT_TRUE(master_aead.Init(std::string(32, 'M')).ok());
    std::string nonce =
        crypto::Sha256Digest("medvault-wrap-nonce:" + record_id)
            .substr(0, crypto::kCtrNonceSize);
    auto blob = master_aead.Seal(nonce, data_key, record_id);
    EXPECT_TRUE(blob.ok());
    std::string entry;
    entry.push_back(static_cast<char>(1));  // kEntryLive
    PutLengthPrefixed(&entry, record_id);
    PutLengthPrefixed(&entry, *blob);
    return entry;
  }
};

TEST_F(KeyStoreV1Test, V1LogUpgradesToV2OnOpen) {
  std::string data_key(32, 'K');
  std::string v1 = V1LiveEntry("r-1", data_key);
  ASSERT_TRUE(storage::WriteStringToFile(&env_, v1, "keys.db", true).ok());

  OpenStore();
  ASSERT_TRUE(store_->GetKey("r-1").ok());
  EXPECT_EQ(*store_->GetKey("r-1"), data_key);
  store_.reset();

  // The upgrade rewrote the log in the framed v2 format.
  std::string contents;
  ASSERT_TRUE(storage::ReadFileToString(&env_, "keys.db", &contents).ok());
  EXPECT_NE(contents.find("medvault-keylog-v2"), std::string::npos);

  OpenStore();
  EXPECT_EQ(*store_->GetKey("r-1"), data_key);
}

TEST_F(KeyStoreV1Test, V1TornTailTolerated) {
  std::string data_key(32, 'K');
  std::string v1 = V1LiveEntry("r-1", data_key);
  // A torn second entry: valid kind byte, then a length prefix whose
  // bytes never arrived.
  v1.push_back(static_cast<char>(1));
  v1 += "\x10" "abc";
  ASSERT_TRUE(storage::WriteStringToFile(&env_, v1, "keys.db", true).ok());

  OpenStore();
  EXPECT_EQ(*store_->GetKey("r-1"), data_key);
  EXPECT_EQ(store_->LiveKeyCount(), 1u);
}

TEST_F(KeyStoreV1Test, V1GarbageKindByteIsCorruption) {
  std::string v1 = V1LiveEntry("r-1", std::string(32, 'K'));
  v1.push_back(static_cast<char>(0x7f));  // neither live nor destroyed
  v1 += "garbage";
  ASSERT_TRUE(storage::WriteStringToFile(&env_, v1, "keys.db", true).ok());

  store_ = std::make_unique<KeyStore>(&env_, "keys.db", std::string(32, 'M'),
                                      "drbg-seed");
  EXPECT_TRUE(store_->Open().IsCorruption());
}

TEST_F(KeyStoreTest, FailedCreateDoesNotBurnRecordId) {
  // Regression: a CreateKey whose log append failed used to leave a
  // partial entry in the file while telling the caller it failed —
  // reopening then reported AlreadyExists for an id the caller believes
  // is free. (Create-time syncs are deferred to the vault's sync wave
  // now, so the append is the only failure point left inside CreateKey.)
  storage::FaultInjectionEnv fault(&env_);
  store_ = std::make_unique<KeyStore>(&fault, "keys.db", std::string(32, 'M'),
                                      "drbg-seed");
  ASSERT_TRUE(store_->Open().ok());

  fault.FailNextWrites(1);
  ASSERT_FALSE(store_->CreateKey("r-1").ok());
  EXPECT_TRUE(store_->GetKey("r-1").status().IsNotFound());
  // Same session: the id is immediately reusable.
  EXPECT_TRUE(store_->CreateKey("r-1").ok());
  store_.reset();

  // And after reopening from disk, a fresh create of the *failed* id
  // must succeed too (the log was rewritten without the dead entry).
  storage::MemEnv env2;
  storage::FaultInjectionEnv fault2(&env2);
  auto store2 = std::make_unique<KeyStore>(&fault2, "keys.db",
                                           std::string(32, 'M'), "drbg-seed");
  ASSERT_TRUE(store2->Open().ok());
  fault2.FailNextWrites(1);
  ASSERT_FALSE(store2->CreateKey("r-9").ok());
  store2.reset();

  auto reopened = std::make_unique<KeyStore>(&env2, "keys.db",
                                             std::string(32, 'M'), "drbg-seed");
  ASSERT_TRUE(reopened->Open().ok());
  EXPECT_TRUE(reopened->GetKey("r-9").status().IsNotFound());
  EXPECT_TRUE(reopened->CreateKey("r-9").ok());
}

TEST_F(KeyStoreTest, RequiresOpenBeforeUse) {
  store_ = std::make_unique<KeyStore>(&env_, "keys.db",
                                      std::string(32, 'M'), "seed");
  EXPECT_TRUE(store_->CreateKey("r-1").IsFailedPrecondition());
  EXPECT_TRUE(store_->Persist().IsFailedPrecondition());
}

}  // namespace
}  // namespace medvault::core
