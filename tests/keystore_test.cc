// KeyStore tests: key hierarchy, crypto-shredding, persistence, master
// key rotation, and the guarantee that destroyed keys never resurface.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/keystore.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class KeyStoreTest : public ::testing::Test {
 protected:
  void OpenStore(const std::string& master = std::string(32, 'M')) {
    store_ = std::make_unique<KeyStore>(&env_, "keys.db", master,
                                        "drbg-seed");
    ASSERT_TRUE(store_->Open().ok());
  }

  storage::MemEnv env_;
  std::unique_ptr<KeyStore> store_;
};

TEST_F(KeyStoreTest, CreateAndGet) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto key = store_->GetKey("r-1");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->size(), 32u);
  EXPECT_EQ(store_->LiveKeyCount(), 1u);
}

TEST_F(KeyStoreTest, KeysAreUniquePerRecord) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->CreateKey("r-2").ok());
  EXPECT_NE(*store_->GetKey("r-1"), *store_->GetKey("r-2"));
}

TEST_F(KeyStoreTest, DuplicateCreateRejected) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  EXPECT_TRUE(store_->CreateKey("r-1").IsAlreadyExists());
}

TEST_F(KeyStoreTest, UnknownRecordIsNotFound) {
  OpenStore();
  EXPECT_TRUE(store_->GetKey("nope").status().IsNotFound());
  EXPECT_TRUE(store_->DestroyKey("nope").IsNotFound());
}

TEST_F(KeyStoreTest, IndexKeyDiffersFromDataKey) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto data_key = store_->GetKey("r-1");
  auto index_key = store_->GetIndexKey("r-1");
  ASSERT_TRUE(data_key.ok());
  ASSERT_TRUE(index_key.ok());
  EXPECT_NE(*data_key, *index_key);
  EXPECT_EQ(index_key->size(), 32u);
}

TEST_F(KeyStoreTest, KeyRefResolvesWhileAlive) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto ref = store_->GetKeyRef("r-1");
  ASSERT_TRUE(ref.ok());
  auto resolved = store_->ResolveKeyRef(*ref);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, "r-1");
}

TEST_F(KeyStoreTest, DestroyShredsEverything) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  auto ref = store_->GetKeyRef("r-1");
  ASSERT_TRUE(ref.ok());

  ASSERT_TRUE(store_->DestroyKey("r-1").ok());
  EXPECT_TRUE(store_->IsDestroyed("r-1"));
  EXPECT_TRUE(store_->GetKey("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->GetIndexKey("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->GetKeyRef("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->ResolveKeyRef(*ref).status().IsNotFound());
  EXPECT_EQ(store_->LiveKeyCount(), 0u);
  // Double destruction is flagged, not silently absorbed.
  EXPECT_TRUE(store_->DestroyKey("r-1").IsKeyDestroyed());
}

TEST_F(KeyStoreTest, DestroyedKeyCannotBeRecreated) {
  // A destroyed record id must never silently get a fresh key (which
  // would hide the shredding from later readers).
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->DestroyKey("r-1").ok());
  EXPECT_TRUE(store_->CreateKey("r-1").IsAlreadyExists());
}

TEST_F(KeyStoreTest, PersistsAcrossReopen) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->CreateKey("r-2").ok());
  std::string key1 = *store_->GetKey("r-1");
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  OpenStore();
  EXPECT_EQ(*store_->GetKey("r-1"), key1);
  EXPECT_EQ(store_->LiveKeyCount(), 2u);
}

TEST_F(KeyStoreTest, DestructionSurvivesReopen) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->CreateKey("r-2").ok());
  ASSERT_TRUE(store_->DestroyKey("r-1").ok());  // persists immediately
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  OpenStore();
  EXPECT_TRUE(store_->GetKey("r-1").status().IsKeyDestroyed());
  EXPECT_TRUE(store_->GetKey("r-2").ok());
}

TEST_F(KeyStoreTest, ShreddedKeyBytesAbsentFromDisk) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  std::string key = *store_->GetKey("r-1");
  ASSERT_TRUE(store_->Persist().ok());
  ASSERT_TRUE(store_->DestroyKey("r-1").ok());

  // Neither the raw key nor any trace of its wrapped blob may remain.
  std::string contents;
  ASSERT_TRUE(storage::ReadFileToString(&env_, "keys.db", &contents).ok());
  EXPECT_EQ(contents.find(key), std::string::npos);
}

TEST_F(KeyStoreTest, WrongMasterKeyFailsOpen) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  auto bad = std::make_unique<KeyStore>(&env_, "keys.db",
                                        std::string(32, 'X'), "drbg-seed");
  EXPECT_TRUE(bad->Open().IsTamperDetected());
}

TEST_F(KeyStoreTest, MasterKeyRotationPreservesDataKeys) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  std::string key = *store_->GetKey("r-1");
  std::string new_master(32, 'N');
  ASSERT_TRUE(store_->RotateMasterKey(new_master).ok());
  EXPECT_EQ(*store_->GetKey("r-1"), key);
  store_.reset();

  // Old master no longer opens; new one does and finds the same key.
  auto old_store = std::make_unique<KeyStore>(
      &env_, "keys.db", std::string(32, 'M'), "drbg-seed");
  EXPECT_FALSE(old_store->Open().ok());

  OpenStore(new_master);
  EXPECT_EQ(*store_->GetKey("r-1"), key);
}

TEST_F(KeyStoreTest, TamperedKeyLogDetected) {
  OpenStore();
  ASSERT_TRUE(store_->CreateKey("r-1").ok());
  ASSERT_TRUE(store_->Persist().ok());
  store_.reset();

  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize("keys.db", &size).ok());
  ASSERT_TRUE(env_.UnsafeOverwrite("keys.db", size / 2, "Z").ok());

  auto tampered = std::make_unique<KeyStore>(
      &env_, "keys.db", std::string(32, 'M'), "drbg-seed");
  EXPECT_FALSE(tampered->Open().ok());
}

TEST_F(KeyStoreTest, RequiresOpenBeforeUse) {
  store_ = std::make_unique<KeyStore>(&env_, "keys.db",
                                      std::string(32, 'M'), "seed");
  EXPECT_TRUE(store_->CreateKey("r-1").IsFailedPrecondition());
  EXPECT_TRUE(store_->Persist().IsFailedPrecondition());
}

}  // namespace
}  // namespace medvault::core
