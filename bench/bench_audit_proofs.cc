// E17 — audit transparency at scale: inclusion / consistency proof
// generation against the memoized Merkle tree at 10^4..10^6+ entries
// (the paper's 30-year audit horizon), the naive recompute-everything
// ablation that motivates the memo, stateless proof verification, the
// disclosure-accounting index vs the full-log scan it replaces (HIPAA
// §164.528 per-patient reports), and the witnessed-checkpoint
// publication path (XMSS checkpoint + witness consistency check +
// countersignature).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/transparency.h"
#include "crypto/merkle.h"
#include "crypto/xmss.h"
#include "storage/mem_env.h"

namespace medvault::bench {
namespace {

// Proof benches share one tree per (size, memoize) so the O(n) build
// cost is paid once per configuration, not once per benchmark run.
const crypto::MerkleTree& SharedTree(uint64_t size, bool memoize) {
  static std::map<std::pair<uint64_t, bool>, crypto::MerkleTree>* trees =
      new std::map<std::pair<uint64_t, bool>, crypto::MerkleTree>();
  auto key = std::make_pair(size, memoize);
  auto it = trees->find(key);
  if (it == trees->end()) {
    crypto::MerkleTree tree(memoize);
    for (uint64_t i = 0; i < size; i++) {
      tree.Append("audit-event-" + std::to_string(i));
    }
    it = trees->emplace(key, std::move(tree)).first;
  }
  return it->second;
}

void RunInclusionProof(benchmark::State& state, bool memoize) {
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  const crypto::MerkleTree& tree = SharedTree(size, memoize);
  Random rng(17);
  int64_t proofs = 0;
  for (auto _ : state) {
    auto proof = tree.InclusionProof(rng.Uniform(size), size);
    if (!proof.ok()) state.SkipWithError(proof.status().ToString().c_str());
    benchmark::DoNotOptimize(proof);
    proofs++;
  }
  state.SetItemsProcessed(proofs);
}

// O(log n) with the power-of-two subtree memo: doubling the tree adds
// one path level, so 2^14 -> 2^20 should move latency by ~1.4x, not 64x.
void BM_InclusionProof(benchmark::State& state) {
  RunInclusionProof(state, /*memoize=*/true);
}
BENCHMARK(BM_InclusionProof)
    ->ArgName("entries")
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Arg(1 << 20);

// The ablation: memoize=false recomputes whole subtrees per proof, so
// each proof is O(n) hashing. Capped at 2^17 — at 2^20 a single naive
// proof takes longer than this bench's whole memoized line.
void BM_InclusionProofNaive(benchmark::State& state) {
  RunInclusionProof(state, /*memoize=*/false);
}
BENCHMARK(BM_InclusionProofNaive)
    ->ArgName("entries")
    ->Arg(1 << 14)
    ->Arg(1 << 17);

// Consistency proofs between two published checkpoint sizes — what a
// witness checks before countersigning (old = 2/3 of new).
void BM_ConsistencyProof(benchmark::State& state) {
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  const crypto::MerkleTree& tree = SharedTree(size, /*memoize=*/true);
  const uint64_t old_size = size * 2 / 3;
  int64_t proofs = 0;
  for (auto _ : state) {
    auto proof = tree.ConsistencyProof(old_size, size);
    if (!proof.ok()) state.SkipWithError(proof.status().ToString().c_str());
    benchmark::DoNotOptimize(proof);
    proofs++;
  }
  state.SetItemsProcessed(proofs);
}
BENCHMARK(BM_ConsistencyProof)
    ->ArgName("entries")
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Arg(1 << 20);

// Stateless verification — the patient/auditor side of the protocol;
// must stay cheap enough for commodity client hardware.
void BM_VerifyInclusion(benchmark::State& state) {
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  const crypto::MerkleTree& tree = SharedTree(size, /*memoize=*/true);
  const std::string root = tree.Root();
  Random rng(23);
  const uint64_t index = rng.Uniform(size);
  auto leaf = tree.LeafHash(index);
  auto proof = tree.InclusionProof(index, size);
  if (!leaf.ok() || !proof.ok()) {
    state.SkipWithError("proof setup failed");
    return;
  }
  int64_t verified = 0;
  for (auto _ : state) {
    Status s = crypto::MerkleTree::VerifyInclusion(*leaf, index, size, *proof,
                                                   root);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(s);
    verified++;
  }
  state.SetItemsProcessed(verified);
}
BENCHMARK(BM_VerifyInclusion)
    ->ArgName("entries")
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Disclosure accounting: the per-patient index vs the full-log scan.
// ---------------------------------------------------------------------------

constexpr int kDisclosureEvents = 1 << 15;
constexpr int kDisclosureRecords = 256;

/// An audit log with kDisclosureEvents kRead events spread uniformly
/// over kDisclosureRecords records (so one record's report is ~n/256 of
/// the log). Built once, shared by both report benches.
core::AuditLog* DisclosureLog() {
  static storage::MemEnv* env = new storage::MemEnv();
  static core::AuditLog* log = [] {
    auto* l = new core::AuditLog(env, "audit.log");
    Status s = l->Open();
    if (!s.ok()) abort();
    Random rng(31);
    std::vector<core::PendingAuditEvent> batch;
    batch.reserve(kDisclosureEvents);
    for (int i = 0; i < kDisclosureEvents; i++) {
      core::PendingAuditEvent e;
      e.actor = "dr-" + std::to_string(rng.Uniform(16));
      e.action = core::AuditAction::kRead;
      e.record_id = "rec-" + std::to_string(rng.Uniform(kDisclosureRecords));
      e.details = "read";
      batch.push_back(std::move(e));
    }
    if (!l->AppendBatch(batch, 1000000).ok()) abort();
    return l;
  }();
  return log;
}

// Index path: seq lookup is O(that record's disclosures); each seq is
// resolved to its event, as AccountingOfDisclosures does.
void BM_DisclosureReportIndexed(benchmark::State& state) {
  core::AuditLog* log = DisclosureLog();
  Random rng(37);
  int64_t reports = 0;
  for (auto _ : state) {
    std::string record = "rec-" + std::to_string(rng.Uniform(kDisclosureRecords));
    std::vector<core::AuditEvent> report;
    for (uint64_t seq : log->DisclosureSeqsForRecord(record)) {
      auto event = log->EventAt(seq);
      if (!event.ok()) state.SkipWithError(event.status().ToString().c_str());
      report.push_back(std::move(*event));
    }
    benchmark::DoNotOptimize(report);
    reports++;
  }
  state.SetItemsProcessed(reports);
}
BENCHMARK(BM_DisclosureReportIndexed);

// What the report cost before the index: snapshot and scan all n
// events per request.
void BM_DisclosureReportScan(benchmark::State& state) {
  core::AuditLog* log = DisclosureLog();
  Random rng(37);
  int64_t reports = 0;
  for (auto _ : state) {
    std::string record = "rec-" + std::to_string(rng.Uniform(kDisclosureRecords));
    std::vector<core::AuditEvent> report;
    for (const core::AuditEvent& event : log->SnapshotEvents()) {
      if (event.action == core::AuditAction::kRead &&
          event.record_id == record) {
        report.push_back(event);
      }
    }
    benchmark::DoNotOptimize(report);
    reports++;
  }
  state.SetItemsProcessed(reports);
}
BENCHMARK(BM_DisclosureReportScan);

// ---------------------------------------------------------------------------
// Witnessed checkpoint publication
// ---------------------------------------------------------------------------

// One full publication round per iteration: append an event, XMSS-sign
// the new head, build the consistency proof from the witness's
// last-seen size, and have the witness verify + countersign. Fixed
// iteration count — the log and witness signers are height-10 XMSS
// (1024 one-time leaves each), and a time-targeted run would exhaust
// them mid-measurement.
void BM_WitnessCosign(benchmark::State& state) {
  storage::MemEnv env;
  core::AuditLog log(&env, "audit.log");
  if (!log.Open().ok()) {
    state.SkipWithError("audit log open failed");
    return;
  }
  crypto::XmssSigner signer(std::string(32, 'S'), std::string(32, 'P'), 10);
  core::Witness::Options witness_options;
  witness_options.id = "bench-witness";
  witness_options.secret_seed = std::string(32, 'W');
  witness_options.public_seed = std::string(32, 'Q');
  witness_options.height = 10;
  core::LogIdentity identity;
  identity.public_key = signer.public_key();
  identity.public_seed = signer.public_seed();
  identity.height = signer.height();
  core::Witness witness(witness_options, identity);

  Timestamp now = 1000000;
  int64_t cosigns = 0;
  for (auto _ : state) {
    auto seq = log.Append("dr", core::AuditAction::kRead,
                          "rec-" + std::to_string(cosigns), "read", ++now);
    if (!seq.ok()) state.SkipWithError(seq.status().ToString().c_str());
    uint64_t last = witness.last_size();
    auto checkpoint = log.Checkpoint(&signer, ++now);
    if (!checkpoint.ok()) {
      state.SkipWithError(checkpoint.status().ToString().c_str());
      break;
    }
    auto proof = log.ConsistencyProofBetween(last, checkpoint->tree_size);
    if (!proof.ok()) {
      state.SkipWithError(proof.status().ToString().c_str());
      break;
    }
    auto cosig = witness.Cosign(*checkpoint, *proof);
    if (!cosig.ok()) {
      state.SkipWithError(cosig.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(cosig);
    cosigns++;
  }
  state.SetItemsProcessed(cosigns);
}
BENCHMARK(BM_WitnessCosign)->Iterations(256);

}  // namespace
}  // namespace medvault::bench

int main(int argc, char** argv) {
  return medvault::bench::RunBenchmarkMain("audit_proofs", argc, argv);
}
