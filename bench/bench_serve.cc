// E15 — HTTP front door: concurrent-connection latency curve and the
// admission-control saturation story (DESIGN.md "Server & admission
// control"; paper §3: availability under load without sacrificing the
// audited access path).
//
// Two tables:
//
//   1. Latency/throughput vs concurrent keep-alive connections: each
//      connection is a logged-in closed-loop client issuing a mixed
//      read/health workload. p50/p99 per request, aggregate req/s.
//   2. Saturation: a deliberately tiny server (2 workers, queue of 4)
//      with every worker parked mid-request and the queue full — the
//      acceptor must shed further offered load with an immediate 503 +
//      Retry-After instead of letting it hang. Measures time-to-503
//      for the shed requests and p99 for the accepted ones after the
//      parked connections drain, with the server.shed / server.accepted
//      counters printed for corroboration.
//
// Writes BENCH_serve.json (google-benchmark result format, consumed by
// tools/bench_compare.py against bench/baselines/BENCH_serve.json) and
// HEALTH_serve.json next to the binary.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_vault.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/instrumented_env.h"
#include "storage/mem_env.h"
#include "storage/posix_env.h"

namespace medvault::bench {
namespace {

using core::Role;
using core::ShardedVault;
using core::ShardedVaultOptions;
using server::HttpClient;
using server::MedVaultServer;
using server::ServerOptions;

constexpr char kSecret[] = "bench-serve-secret";
constexpr int kPatients = 8;

struct Instance {
  storage::MemEnv env;
  std::unique_ptr<storage::InstrumentedEnv> ienv;
  ManualClock clock{1000000};
  std::unique_ptr<ShardedVault> vault;
  std::unique_ptr<MedVaultServer> server;
  std::vector<std::string> record_ids;

  ~Instance() {
    if (server) server->Stop();
  }
};

std::unique_ptr<Instance> MakeServer(unsigned workers, size_t max_queue,
                                     int records) {
  auto in = std::make_unique<Instance>();
  in->ienv = std::make_unique<storage::InstrumentedEnv>(
      &in->env, obs::ProcessIoStats());

  ShardedVaultOptions vopt;
  vopt.env = in->ienv.get();
  vopt.dir = "served";
  vopt.clock = &in->clock;
  vopt.master_key = std::string(32, 'B');
  vopt.entropy = "bench-serve-entropy";
  vopt.num_shards = 2;
  vopt.signer_height = 8;
  vopt.metrics = obs::MetricsRegistry::Default();
  auto opened = ShardedVault::Open(vopt);
  if (!opened.ok()) {
    fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    abort();
  }
  in->vault = std::move(*opened);
  ShardedVault* v = in->vault.get();
  (void)v->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"});
  (void)v->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"});
  for (int p = 0; p < kPatients; p++) {
    std::string pat = "pat-" + std::to_string(p);
    (void)v->RegisterPrincipal("admin", {pat, Role::kPatient, pat});
    (void)v->AssignCare("admin", "dr", pat);
  }
  for (int i = 0; i < records; i++) {
    auto id = v->CreateRecord("dr", "pat-" + std::to_string(i % kPatients),
                              "text/plain",
                              "note " + std::to_string(i) +
                                  std::string(400, 'n'),
                              {"note"}, "hipaa-6y");
    if (!id.ok()) {
      fprintf(stderr, "create failed: %s\n", id.status().ToString().c_str());
      abort();
    }
    in->record_ids.push_back(*id);
  }
  Status synced = v->SyncAll();
  if (!synced.ok()) {
    fprintf(stderr, "sync failed: %s\n", synced.ToString().c_str());
    abort();
  }

  ServerOptions sopt;
  sopt.port = 0;
  sopt.worker_threads = workers;
  sopt.admission.max_queue = max_queue;
  sopt.api_secret = kSecret;
  sopt.session_entropy = "bench-serve-session-entropy";
  sopt.clock = &in->clock;
  sopt.durable_writes = false;  // latency curve, not the fsync story (E14)
  auto started = MedVaultServer::Start(v, sopt);
  if (!started.ok()) {
    fprintf(stderr, "server start failed: %s\n",
            started.status().ToString().c_str());
    abort();
  }
  in->server = std::move(*started);
  return in;
}

std::string Login(HttpClient* client) {
  auto r = client->Do("POST", "/v1/login",
                      std::string("{\"principal\": \"dr\", \"secret\": \"") +
                          kSecret + "\"}");
  if (!r.ok() || r->status != 200) {
    fprintf(stderr, "login failed\n");
    abort();
  }
  const std::string& body = r->body;
  size_t key = body.find("\"token\"");
  size_t open = body.find('"', body.find(':', key));
  size_t close = body.find('"', open + 1);
  return body.substr(open + 1, close - open - 1);
}

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0;
  std::sort(sorted_us->begin(), sorted_us->end());
  size_t idx = static_cast<size_t>(p * (sorted_us->size() - 1));
  return (*sorted_us)[idx];
}

double NowUs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

struct CurvePoint {
  int conns;
  double reqs_per_sec;
  double p50_us;
  double p99_us;
};

CurvePoint RunCurvePoint(Instance* in, int conns, int reqs_per_conn) {
  std::vector<std::vector<double>> lat(conns);
  std::atomic<int> failures{0};
  double start = NowUs();
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (int c = 0; c < conns; c++) {
    threads.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect(in->server->port()).ok()) {
        failures.fetch_add(reqs_per_conn);
        return;
      }
      std::string token = Login(&client);
      lat[c].reserve(reqs_per_conn);
      for (int i = 0; i < reqs_per_conn; i++) {
        // 3:1 record reads to health probes, records spread over shards.
        const std::string& target =
            (i % 4 == 3) ? "/v1/health"
                         : "/v1/records/" +
                               in->record_ids[(c * reqs_per_conn + i) %
                                              in->record_ids.size()];
        double t0 = NowUs();
        auto r = client.Do("GET", target, "", token);
        double t1 = NowUs();
        if (!r.ok() || r->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        lat[c].push_back(t1 - t0);
      }
    });
  }
  for (auto& t : threads) t.join();
  double elapsed_us = NowUs() - start;
  if (failures.load() != 0) {
    fprintf(stderr, "curve point c=%d: %d failed requests\n", conns,
            failures.load());
    abort();
  }
  std::vector<double> all;
  for (auto& per_conn : lat) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  CurvePoint point;
  point.conns = conns;
  point.reqs_per_sec = all.size() / (elapsed_us / 1e6);
  point.p50_us = Percentile(&all, 0.50);
  point.p99_us = Percentile(&all, 0.99);
  return point;
}

struct SaturationResult {
  size_t shed = 0;
  size_t served = 0;
  double shed_p50_us = 0;
  double shed_p99_us = 0;
  double accepted_p99_us = 0;
};

SaturationResult RunSaturation(Instance* in, int offered) {
  SaturationResult result;
  uint16_t port = in->server->port();

  // Park both workers and fill the whole queue with half-sent
  // requests: the server is now hard-saturated, as if every handler
  // were stuck in a slow disk write.
  std::vector<std::unique_ptr<HttpClient>> parked;
  for (int i = 0; i < 2 + 4; i++) {
    auto client = std::make_unique<HttpClient>();
    if (!client->Connect(port).ok()) abort();
    if (!client->SendRaw("GET /v1/health HTTP/1.1\r\nConnection: close\r\n")
             .ok()) {
      abort();
    }
    parked.push_back(std::move(client));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Everything offered beyond capacity must be shed, promptly.
  std::vector<double> shed_lat;
  for (int i = 0; i < offered; i++) {
    HttpClient client;
    if (!client.Connect(port).ok()) abort();
    double t0 = NowUs();
    auto r = client.Do("GET", "/v1/health");
    double t1 = NowUs();
    if (!r.ok()) abort();
    if (r->status == 503) {
      result.shed++;
      shed_lat.push_back(t1 - t0);
    } else if (r->status == 200) {
      result.served++;  // a parked conn timed out and freed a slot
    }
  }
  result.shed_p50_us = Percentile(&shed_lat, 0.50);
  result.shed_p99_us = Percentile(&shed_lat, 0.99);

  // Release the parked connections; the queued ones drain.
  for (auto& client : parked) {
    (void)client->SendRaw("\r\n");
    (void)client->ReadResponse();
  }

  // With the jam cleared, accepted-path p99 comes straight back.
  std::vector<double> accepted_lat;
  HttpClient client;
  if (!client.Connect(port).ok()) abort();
  for (int i = 0; i < 100; i++) {
    double t0 = NowUs();
    auto r = client.Do("GET", "/v1/health");
    if (!r.ok() || r->status != 200) abort();
    accepted_lat.push_back(NowUs() - t0);
  }
  result.accepted_p99_us = Percentile(&accepted_lat, 0.99);
  return result;
}

void WriteBenchJson(const std::vector<CurvePoint>& curve,
                    const SaturationResult& saturation) {
  FILE* f = fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_serve.json\n");
    return;
  }
  fprintf(f, "{\n  \"context\": {\n");
  fprintf(f, "    \"executable\": \"./bench_serve\",\n");
  fprintf(f, "    \"library_build_type\": \"release\"\n  },\n");
  fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  auto entry = [&](const std::string& name, double real_time_us,
                   double items_per_second) {
    fprintf(f, "%s    {\n      \"name\": \"%s\",\n", first ? "" : ",\n",
            name.c_str());
    fprintf(f, "      \"run_type\": \"iteration\",\n");
    fprintf(f, "      \"iterations\": 1,\n");
    fprintf(f, "      \"real_time\": %.3f,\n", real_time_us);
    fprintf(f, "      \"cpu_time\": %.3f,\n", real_time_us);
    fprintf(f, "      \"time_unit\": \"us\",\n");
    fprintf(f, "      \"items_per_second\": %.3f\n    }", items_per_second);
    first = false;
  };
  for (const CurvePoint& p : curve) {
    entry("BM_ServeRead/conns:" + std::to_string(p.conns), p.p99_us,
          p.reqs_per_sec);
  }
  // Shed promptness as a throughput: 503s answered per second while
  // hard-saturated. A regression here means shedding started to block.
  if (saturation.shed_p50_us > 0) {
    entry("BM_ServeShed503", saturation.shed_p99_us,
          1e6 / saturation.shed_p50_us);
  }
  fprintf(f, "\n  ]\n}\n");
  fclose(f);
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;

  printf("E15a: latency vs concurrent keep-alive connections "
         "(4 workers, queue 64, MemEnv, durable_writes off)\n");
  printf("%6s %10s %10s %10s\n", "conns", "req/s", "p50-us", "p99-us");
  std::vector<CurvePoint> curve;
  {
    auto in = MakeServer(/*workers=*/4, /*max_queue=*/64, /*records=*/64);
    for (int conns : {1, 2, 4, 8}) {
      CurvePoint p = RunCurvePoint(in.get(), conns, /*reqs_per_conn=*/50);
      printf("%6d %10.0f %10.1f %10.1f\n", p.conns, p.reqs_per_sec, p.p50_us,
             p.p99_us);
      curve.push_back(p);
    }
    in->server->Stop();
  }

  printf("\nE15b: saturation shedding (2 workers, queue 4, all parked; "
         "128 requests offered beyond capacity)\n");
  SaturationResult saturation;
  {
    auto in = MakeServer(/*workers=*/2, /*max_queue=*/4, /*records=*/8);
    saturation = RunSaturation(in.get(), /*offered=*/128);
    printf("%10s %10s %12s %12s %14s\n", "shed-503", "served", "shed-p50-us",
           "shed-p99-us", "accepted-p99-us");
    printf("%10zu %10zu %12.1f %12.1f %14.1f\n", saturation.shed,
           saturation.served, saturation.shed_p50_us, saturation.shed_p99_us,
           saturation.accepted_p99_us);
    auto snapshot = medvault::obs::MetricsRegistry::Default()->TakeSnapshot();
    printf("registry: server.shed=%llu server.accepted=%llu "
           "server.conns=%llu server.requests=%llu\n",
           static_cast<unsigned long long>(snapshot.counters["server.shed"]),
           static_cast<unsigned long long>(
               snapshot.counters["server.accepted"]),
           static_cast<unsigned long long>(snapshot.counters["server.conns"]),
           static_cast<unsigned long long>(
               snapshot.counters["server.requests"]));
    printf("\nshape check: every over-capacity request gets an immediate "
           "503 (shed p99 well under the queue-wait limit), and accepted "
           "p99 recovers as soon as the jam clears.\n");
    in->server->Stop();
  }

  WriteBenchJson(curve, saturation);

  int64_t now_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  medvault::obs::HealthReport health = medvault::obs::CollectProcessHealth(
      now_micros, medvault::obs::MetricsRegistry::Default(),
      medvault::obs::ProcessIoStats());
  medvault::Status health_status = medvault::obs::WriteHealthFile(
      medvault::storage::PosixEnv::Default(), health, "HEALTH_serve.json");
  if (!health_status.ok()) {
    fprintf(stderr, "health report write failed: %s\n",
            health_status.ToString().c_str());
  }
  return 0;
}
