// E8 — corrections (paper §4: "compliance WORM storage ... do not
// support such corrections"; MedVault's versioned-WORM design does):
// correction latency on the stores that support it, the WORM refusal,
// and version-chain verification cost vs chain length.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/keystore.h"
#include "core/version_store.h"

namespace medvault::bench {
namespace {

void RunCorrect(benchmark::State& state, const std::string& model) {
  StoreInstance si = MakeStore(model);
  auto id = si.store->Put(std::string(512, 'o'), {"kw"});
  if (!id.ok()) {
    state.SkipWithError("put failed");
    return;
  }
  int64_t corrections = 0;
  for (auto _ : state) {
    Status s = si.store->Update(*id, std::string(512, 'c'), "amendment");
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    corrections++;
  }
  state.SetItemsProcessed(corrections);
}

void BM_Correct_Relational(benchmark::State& s) { RunCorrect(s, "relational"); }
void BM_Correct_EncryptedDb(benchmark::State& s) { RunCorrect(s, "encrypted-db"); }
void BM_Correct_MedVault(benchmark::State& s) { RunCorrect(s, "medvault"); }

BENCHMARK(BM_Correct_Relational);
BENCHMARK(BM_Correct_EncryptedDb);
BENCHMARK(BM_Correct_MedVault);

void BM_VerifyVersionChain(benchmark::State& state) {
  const int versions = static_cast<int>(state.range(0));
  storage::MemEnv env;
  core::KeyStore keystore(&env, "keys.db", std::string(32, 'M'), "seed");
  (void)keystore.Open();
  core::VersionStore store(&env, "vault", &keystore);
  (void)store.Open();
  (void)keystore.CreateKey("r-1");
  for (int v = 0; v < versions; v++) {
    (void)store.AppendVersion("r-1", "dr", "txt", v ? "fix" : "",
                              std::string(512, 'x'), 1000 + v);
  }
  for (auto _ : state) {
    Status s = store.VerifyRecord("r-1");
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["versions"] = versions;
  state.SetItemsProcessed(state.iterations() * versions);
}
BENCHMARK(BM_VerifyVersionChain)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void PrintRefusals() {
  printf("\nE8 correction support (the §4 comparison):\n");
  for (const std::string& model : ModelNames()) {
    StoreInstance si = MakeStore(model);
    auto id = si.store->Put("original", {});
    Status s = si.store->Update(*id, "corrected", "fix");
    bool history = false;
    if (s.ok()) {
      auto v1 = si.store->GetVersion(*id, 1);
      history = v1.ok() && *v1 == "original";
    }
    printf("  %-14s correction: %-18s history preserved: %s\n",
           model.c_str(),
           s.ok() ? "supported" : s.ToString().substr(0, 16).c_str(),
           s.ok() ? (history ? "yes" : "NO") : "-");
  }
  printf("=> only medvault combines WORM integrity with corrections "
         "(the paper's missing hybrid).\n");
}

}  // namespace
}  // namespace medvault::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  medvault::bench::PrintRefusals();
  return 0;
}
