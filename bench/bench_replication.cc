// E16 — verified replication: log-shipping throughput and the warm
// standby's read-serving cost (DESIGN.md "Replication & promotion";
// paper §3: availability requires a standby that is provably identical,
// not merely "probably caught up").
//
// Two tables:
//
//   1. Ship throughput vs window size: a 2-shard primary ingests K
//      records per group-commit window, then one pull round (cursor →
//      CutAll → ApplyAll) ships the window to a sharded standby.
//      Cut and apply are timed separately; throughput is verified
//      payload MB/s (every shipped byte is Merkle-checked on apply).
//   2. Standby read-view latency vs lag: p50/p99 of authenticated
//      record reads served from a replica read view while the primary
//      runs ahead by 0 / ~128 KiB / ~512 KiB of unshipped bytes. The
//      claim being quantified: serving reads neither disturbs the
//      byte-exact replica nor degrades as lag grows (the view is a
//      snapshot copy; catch-up stays one pull round away).
//
// Writes BENCH_replication.json (google-benchmark result format,
// consumed by tools/bench_compare.py against
// bench/baselines/BENCH_replication.json) and HEALTH_replication.json
// (with the conditional repl section filled from the live endpoints)
// next to the binary.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/replication.h"
#include "core/sharded_vault.h"
#include "core/vault.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "storage/mem_env.h"
#include "storage/posix_env.h"

namespace medvault::bench {
namespace {

using core::ReplicaApplier;
using core::ReplicationSource;
using core::Role;
using core::ShardedReplicaApplier;
using core::ShardedReplicationSource;
using core::ShardedVault;
using core::ShardedVaultOptions;
using core::Vault;
using core::VaultOptions;

constexpr char kEntropy[] = "bench-repl-entropy";
constexpr int kPatients = 8;
constexpr size_t kPayloadBytes = 2048;

double NowUs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0;
  std::sort(sorted_us->begin(), sorted_us->end());
  size_t idx = static_cast<size_t>(p * (sorted_us->size() - 1));
  return (*sorted_us)[idx];
}

void Register(ShardedVault* vault) {
  (void)vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"});
  (void)vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"});
  for (int p = 0; p < kPatients; p++) {
    std::string pat = "pat-" + std::to_string(p);
    (void)vault->RegisterPrincipal("admin", {pat, Role::kPatient, pat});
    (void)vault->AssignCare("admin", "dr", pat);
  }
}

void MustCreate(ShardedVault* vault, int seq) {
  auto id = vault->CreateRecord(
      "dr", "pat-" + std::to_string(seq % kPatients), "text/plain",
      "note " + std::to_string(seq) + std::string(kPayloadBytes, 'r'),
      {"note"}, "hipaa-6y");
  if (!id.ok()) {
    fprintf(stderr, "create failed: %s\n", id.status().ToString().c_str());
    abort();
  }
}

struct ShipPoint {
  int records;
  uint64_t payload_bytes;
  double cut_us;
  double apply_us;
  double mb_per_sec;  ///< verified payload through cut+apply
  uint64_t lag_at_cut;
};

/// One pull round; aborts on any failure (a bench must not silently
/// measure an error path).
uint64_t PullRound(ShardedReplicationSource* source,
                   ShardedReplicaApplier* applier, double* cut_us,
                   double* apply_us, uint64_t* lag_at_cut) {
  auto cursors = applier->Cursors();
  if (!cursors.ok()) abort();
  double t0 = NowUs();
  auto batches = source->CutAll(*cursors);
  double t1 = NowUs();
  if (!batches.ok()) {
    fprintf(stderr, "cut failed: %s\n", batches.status().ToString().c_str());
    abort();
  }
  uint64_t payload = 0;
  uint64_t lag = 0;
  for (const auto& b : *batches) {
    payload += b.PayloadBytes();
    lag += b.lag_at_cut;
  }
  double t2 = NowUs();
  Status applied = applier->ApplyAll(*batches);
  double t3 = NowUs();
  if (!applied.ok()) {
    fprintf(stderr, "apply failed: %s\n", applied.ToString().c_str());
    abort();
  }
  if (cut_us != nullptr) *cut_us = t1 - t0;
  if (apply_us != nullptr) *apply_us = t3 - t2;
  if (lag_at_cut != nullptr) *lag_at_cut = lag;
  return payload;
}

struct ViewPoint {
  int unshipped;  ///< baseline-stable key; measured lag is table-only
  uint64_t lag_kb;
  double p50_us;
  double p99_us;
};

void WriteBenchJson(const std::vector<ShipPoint>& ship,
                    const std::vector<ViewPoint>& views) {
  FILE* f = fopen("BENCH_replication.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_replication.json\n");
    return;
  }
  fprintf(f, "{\n  \"context\": {\n");
  fprintf(f, "    \"executable\": \"./bench_replication\",\n");
  fprintf(f, "    \"library_build_type\": \"release\"\n  },\n");
  fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  auto entry = [&](const std::string& name, double real_time_us,
                   double items_per_second) {
    fprintf(f, "%s    {\n      \"name\": \"%s\",\n", first ? "" : ",\n",
            name.c_str());
    fprintf(f, "      \"run_type\": \"iteration\",\n");
    fprintf(f, "      \"iterations\": 1,\n");
    fprintf(f, "      \"real_time\": %.3f,\n", real_time_us);
    fprintf(f, "      \"cpu_time\": %.3f,\n", real_time_us);
    fprintf(f, "      \"time_unit\": \"us\",\n");
    fprintf(f, "      \"items_per_second\": %.3f\n    }", items_per_second);
    first = false;
  };
  for (const ShipPoint& p : ship) {
    entry("BM_ReplicationShip/records:" + std::to_string(p.records),
          p.cut_us + p.apply_us, p.mb_per_sec * 1e6);
  }
  for (const ViewPoint& v : views) {
    entry("BM_ReplicaViewRead/unshipped:" + std::to_string(v.unshipped),
          v.p99_us, v.p50_us > 0 ? 1e6 / v.p50_us : 0);
  }
  fprintf(f, "\n  ]\n}\n");
  fclose(f);
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;

  printf("E16a: verified ship throughput vs group-commit window size "
         "(2 shards, MemEnv, %zu-byte payloads)\n", kPayloadBytes);
  printf("%8s %12s %10s %10s %10s %12s\n", "records", "payload-KB", "cut-us",
         "apply-us", "MB/s", "lag-at-cut");
  std::vector<ShipPoint> ship;
  medvault::obs::HealthReport health;
  {
    medvault::storage::MemEnv env;
    medvault::ManualClock clock(1000000);
    ShardedVaultOptions vopt;
    vopt.env = &env;
    vopt.dir = "primary";
    vopt.clock = &clock;
    vopt.master_key = std::string(32, 'B');
    vopt.entropy = kEntropy;
    vopt.num_shards = 2;
    vopt.signer_height = 8;
    vopt.metrics = medvault::obs::MetricsRegistry::Default();
    auto opened = ShardedVault::Open(vopt);
    if (!opened.ok()) abort();
    Register(opened->get());
    ShardedReplicationSource source(opened->get());

    medvault::storage::MemEnv replica_env;
    ShardedReplicaApplier::Options aopt;
    aopt.env = &replica_env;
    aopt.dir = "standby";
    aopt.entropy = kEntropy;
    aopt.num_shards = 2;
    aopt.metrics = medvault::obs::MetricsRegistry::Default();
    auto applier = ShardedReplicaApplier::Open(aopt);
    if (!applier.ok()) abort();

    // Bootstrap pull: principals + empty artifacts, outside the table.
    if (!opened->get()->SyncAll().ok()) abort();
    (void)PullRound(&source, applier->get(), nullptr, nullptr, nullptr);

    int seq = 0;
    for (int records : {4, 16, 64}) {
      for (int i = 0; i < records; i++) MustCreate(opened->get(), seq++);
      if (!opened->get()->SyncAll().ok()) abort();
      ShipPoint p;
      p.records = records;
      p.payload_bytes = PullRound(&source, applier->get(), &p.cut_us,
                                  &p.apply_us, &p.lag_at_cut);
      p.mb_per_sec =
          (p.payload_bytes / 1048576.0) / ((p.cut_us + p.apply_us) / 1e6);
      printf("%8d %12.1f %10.1f %10.1f %10.1f %12llu\n", p.records,
             p.payload_bytes / 1024.0, p.cut_us, p.apply_us, p.mb_per_sec,
             static_cast<unsigned long long>(p.lag_at_cut));
      ship.push_back(p);
    }
    if (applier->get()->lag_bytes() != 0) abort();

    // Health snapshot while both endpoints are live: the conditional
    // repl section carries the shipped/applied/lag posture.
    int64_t now_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    health = medvault::obs::CollectProcessHealth(
        now_micros, medvault::obs::MetricsRegistry::Default(),
        medvault::obs::ProcessIoStats());
    medvault::obs::FillReplicationHealth(&health, &source, applier->get());
  }

  printf("\nE16b: standby read-view latency vs unshipped primary lag "
         "(unsharded pair, 64 replicated records)\n");
  printf("%10s %10s %10s\n", "lag-KB", "p50-us", "p99-us");
  std::vector<ViewPoint> views;
  {
    medvault::storage::MemEnv env;
    medvault::ManualClock clock(1000000);
    VaultOptions vopt;
    vopt.env = &env;
    vopt.dir = "primary";
    vopt.clock = &clock;
    vopt.master_key = std::string(32, 'B');
    vopt.entropy = kEntropy;
    vopt.signer_height = 8;
    auto opened = Vault::Open(vopt);
    if (!opened.ok()) abort();
    Vault* primary = opened->get();
    (void)primary->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"});
    (void)primary->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"});
    (void)primary->RegisterPrincipal("admin", {"p", Role::kPatient, "P"});
    (void)primary->AssignCare("admin", "dr", "p");
    std::vector<std::string> ids;
    for (int i = 0; i < 64; i++) {
      auto id = primary->CreateRecord(
          "dr", "p", "text/plain",
          "replicated " + std::to_string(i) + std::string(kPayloadBytes, 'v'),
          {"note"}, "hipaa-6y");
      if (!id.ok()) abort();
      ids.push_back(*id);
    }
    if (!primary->SyncAll().ok()) abort();

    medvault::storage::MemEnv replica_env;
    ReplicaApplier::Options aopt;
    aopt.env = &replica_env;
    aopt.dir = "replica";
    aopt.entropy = kEntropy;
    auto applier = ReplicaApplier::Open(aopt);
    if (!applier.ok()) abort();
    ReplicationSource source(primary);
    auto cursor = (*applier)->Cursor();
    if (!cursor.ok()) abort();
    auto batch = source.CutBatch(*cursor);
    if (!batch.ok()) abort();
    if (!(*applier)->Apply(*batch).ok()) abort();

    int extra = 0;
    for (int stage = 0; stage < 3; stage++) {
      // Grow the primary ahead of the standby WITHOUT shipping: the
      // standby's read view must not care.
      int unshipped = stage == 0 ? 0 : (stage == 1 ? 8 : 32);
      for (int i = 0; i < unshipped; i++) {
        auto id = primary->CreateRecord(
            "dr", "p", "text/plain",
            "unshipped " + std::to_string(extra++) +
                std::string(kPayloadBytes * 2, 'u'),
            {"note"}, "hipaa-6y");
        if (!id.ok()) abort();
      }
      if (!primary->SyncAll().ok()) abort();
      auto probe_cursor = (*applier)->Cursor();
      if (!probe_cursor.ok()) abort();
      auto probe = source.CutBatch(*probe_cursor);
      if (!probe.ok()) abort();
      uint64_t lag = probe->lag_at_cut;  // measured, deliberately unapplied

      VaultOptions view_base = vopt;
      view_base.env = &replica_env;
      auto view = (*applier)->OpenReadView(
          view_base, "view-" + std::to_string(stage));
      if (!view.ok()) {
        fprintf(stderr, "view failed: %s\n",
                view.status().ToString().c_str());
        abort();
      }
      std::vector<double> lat;
      lat.reserve(ids.size() * 2);
      for (int pass = 0; pass < 2; pass++) {
        for (const std::string& id : ids) {
          double t0 = NowUs();
          auto read = (*view)->ReadRecord("dr", id);
          double t1 = NowUs();
          if (!read.ok()) abort();
          lat.push_back(t1 - t0);
        }
      }
      ViewPoint v;
      v.unshipped = unshipped;
      v.lag_kb = lag / 1024;
      v.p50_us = Percentile(&lat, 0.50);
      v.p99_us = Percentile(&lat, 0.99);
      printf("%10llu %10.1f %10.1f\n",
             static_cast<unsigned long long>(v.lag_kb), v.p50_us, v.p99_us);
      views.push_back(v);
    }
    printf("\nshape check: MB/s grows with window size (per-cut overhead "
           "amortizes); view p50/p99 stay flat as lag grows.\n");
  }

  WriteBenchJson(ship, views);
  medvault::Status health_status = medvault::obs::WriteHealthFile(
      medvault::storage::PosixEnv::Default(), health,
      "HEALTH_replication.json");
  if (!health_status.ok()) {
    fprintf(stderr, "health report write failed: %s\n",
            health_status.ToString().c_str());
  }
  return 0;
}
