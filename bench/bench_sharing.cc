// E18 — patient-driven sharing: what a consent check costs on the read
// path, and how fast a revocation actually closes the door (DESIGN.md
// "Patient-driven sharing"; paper §3: the patient controls disclosure,
// so revocation must be synchronous — no cached grant may outlive it).
//
// Two tables:
//
//   1. Grant-check overhead: the same record set read over HTTP by the
//      treating physician (care-relation basis) and by a specialist
//      whose only basis is a patient-wide consent grant. p50/p99 per
//      read and reads/s for both; the delta IS the registry lookup +
//      basis attribution cost.
//   2. Revocation churn: tenant threads each loop grant → grantee read
//      (must succeed) → revoke → grantee read (must be refused on the
//      FIRST try — synchronous revocation, measured as revoke-POST
//      start to refused-read completion). Any post-revoke 200 is a
//      correctness violation and aborts the bench.
//
// Writes BENCH_sharing.json (google-benchmark result format, consumed
// by tools/bench_compare.py against bench/baselines/BENCH_sharing.json)
// and HEALTH_sharing.json next to the binary.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_vault.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/instrumented_env.h"
#include "storage/mem_env.h"
#include "storage/posix_env.h"

namespace medvault::bench {
namespace {

using core::Role;
using core::ShardedVault;
using core::ShardedVaultOptions;
using server::HttpClient;
using server::MedVaultServer;
using server::ServerOptions;

constexpr char kSecret[] = "bench-sharing-secret";
constexpr int kPatients = 8;
constexpr int64_t kGrantDuration = 3600ll * 1000 * 1000;  // one hour

struct Instance {
  storage::MemEnv env;
  std::unique_ptr<storage::InstrumentedEnv> ienv;
  ManualClock clock{1000000};
  std::unique_ptr<ShardedVault> vault;
  std::unique_ptr<MedVaultServer> server;
  std::vector<std::string> record_ids;  // record i belongs to pat-(i%8)

  ~Instance() {
    if (server) server->Stop();
  }
};

std::unique_ptr<Instance> MakeServer(int records) {
  auto in = std::make_unique<Instance>();
  in->ienv = std::make_unique<storage::InstrumentedEnv>(
      &in->env, obs::ProcessIoStats());

  ShardedVaultOptions vopt;
  vopt.env = in->ienv.get();
  vopt.dir = "shared";
  vopt.clock = &in->clock;
  vopt.master_key = std::string(32, 'B');
  vopt.entropy = "bench-sharing-entropy";
  vopt.num_shards = 2;
  vopt.signer_height = 8;
  vopt.metrics = obs::MetricsRegistry::Default();
  auto opened = ShardedVault::Open(vopt);
  if (!opened.ok()) {
    fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    abort();
  }
  in->vault = std::move(*opened);
  ShardedVault* v = in->vault.get();
  (void)v->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"});
  (void)v->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"});
  // The specialist has NO care relation with anyone: every read they
  // make rides a consent grant or fails.
  (void)v->RegisterPrincipal("admin", {"spec", Role::kPhysician, "S"});
  for (int p = 0; p < kPatients; p++) {
    std::string pat = "pat-" + std::to_string(p);
    (void)v->RegisterPrincipal("admin", {pat, Role::kPatient, pat});
    (void)v->AssignCare("admin", "dr", pat);
  }
  for (int i = 0; i < records; i++) {
    auto id = v->CreateRecord("dr", "pat-" + std::to_string(i % kPatients),
                              "text/plain",
                              "shared note " + std::to_string(i) +
                                  std::string(400, 's'),
                              {"note"}, "hipaa-6y");
    if (!id.ok()) {
      fprintf(stderr, "create failed: %s\n", id.status().ToString().c_str());
      abort();
    }
    in->record_ids.push_back(*id);
  }
  Status synced = v->SyncAll();
  if (!synced.ok()) {
    fprintf(stderr, "sync failed: %s\n", synced.ToString().c_str());
    abort();
  }

  ServerOptions sopt;
  sopt.port = 0;
  sopt.worker_threads = 4;
  sopt.admission.max_queue = 64;
  sopt.api_secret = kSecret;
  sopt.session_entropy = "bench-sharing-session-entropy";
  sopt.clock = &in->clock;
  sopt.durable_writes = false;  // latency story, not the fsync one (E14)
  auto started = MedVaultServer::Start(v, sopt);
  if (!started.ok()) {
    fprintf(stderr, "server start failed: %s\n",
            started.status().ToString().c_str());
    abort();
  }
  in->server = std::move(*started);
  return in;
}

std::string Login(HttpClient* client, const std::string& principal) {
  auto r = client->Do("POST", "/v1/login",
                      std::string("{\"principal\": \"") + principal +
                          "\", \"secret\": \"" + kSecret + "\"}");
  if (!r.ok() || r->status != 200) {
    fprintf(stderr, "login failed for %s\n", principal.c_str());
    abort();
  }
  const std::string& body = r->body;
  size_t key = body.find("\"token\"");
  size_t open = body.find('"', body.find(':', key));
  size_t close = body.find('"', open + 1);
  return body.substr(open + 1, close - open - 1);
}

/// Pulls a JSON string field out of a response body (the bench only
/// needs grant ids, not a full parser).
std::string JsonField(const std::string& body, const std::string& field) {
  size_t key = body.find("\"" + field + "\"");
  if (key == std::string::npos) return "";
  size_t open = body.find('"', body.find(':', key));
  size_t close = body.find('"', open + 1);
  return body.substr(open + 1, close - open - 1);
}

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0;
  std::sort(sorted_us->begin(), sorted_us->end());
  size_t idx = static_cast<size_t>(p * (sorted_us->size() - 1));
  return (*sorted_us)[idx];
}

double NowUs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

struct ReadPoint {
  double reads_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Closed-loop read sweep over every record, `rounds` times, as one
/// principal. Every read must return 200.
ReadPoint RunReads(Instance* in, const std::string& principal, int rounds) {
  HttpClient client;
  if (!client.Connect(in->server->port()).ok()) abort();
  std::string token = Login(&client, principal);
  std::vector<double> lat;
  lat.reserve(rounds * in->record_ids.size());
  double start = NowUs();
  for (int r = 0; r < rounds; r++) {
    for (const std::string& id : in->record_ids) {
      double t0 = NowUs();
      auto resp = client.Do("GET", "/v1/records/" + id, "", token);
      double t1 = NowUs();
      if (!resp.ok() || resp->status != 200) {
        fprintf(stderr, "%s read of %s failed (%d)\n", principal.c_str(),
                id.c_str(), resp.ok() ? resp->status : -1);
        abort();
      }
      lat.push_back(t1 - t0);
    }
  }
  double elapsed_us = NowUs() - start;
  ReadPoint point;
  point.reads_per_sec = lat.size() / (elapsed_us / 1e6);
  point.p50_us = Percentile(&lat, 0.50);
  point.p99_us = Percentile(&lat, 0.99);
  return point;
}

struct ChurnResult {
  double grants_per_sec = 0;
  double revoke_p50_us = 0;   ///< revoke POST -> first refused read
  double revoke_p99_us = 0;
  size_t violations = 0;      ///< post-revoke reads that still returned 200
};

/// Tenant threads: each patient grants the specialist patient-wide
/// access, the specialist reads one of the patient's records, the
/// patient revokes, and the specialist's next read must already be
/// refused. The revoke latency includes that first refused read — the
/// externally observable "door actually closed" instant.
ChurnResult RunChurn(Instance* in, int tenants, int iterations) {
  std::vector<std::vector<double>> revoke_lat(tenants);
  std::atomic<size_t> violations{0};
  std::atomic<int> grants{0};
  double start = NowUs();
  std::vector<std::thread> threads;
  threads.reserve(tenants);
  for (int t = 0; t < tenants; t++) {
    threads.emplace_back([&, t] {
      const std::string patient = "pat-" + std::to_string(t % kPatients);
      // The tenant's record: any record belonging to this patient.
      std::string record_id;
      for (size_t i = 0; i < in->record_ids.size(); i++) {
        if (static_cast<int>(i) % kPatients == t % kPatients) {
          record_id = in->record_ids[i];
          break;
        }
      }
      HttpClient pat_client, spec_client;
      if (!pat_client.Connect(in->server->port()).ok()) abort();
      if (!spec_client.Connect(in->server->port()).ok()) abort();
      std::string pat_token = Login(&pat_client, patient);
      std::string spec_token = Login(&spec_client, "spec");
      const std::string grant_body =
          "{\"grantee\": \"spec\", \"purpose\": \"churn\", "
          "\"duration_micros\": " + std::to_string(kGrantDuration) + "}";
      for (int i = 0; i < iterations; i++) {
        auto granted =
            pat_client.Do("POST", "/v1/consent", grant_body, pat_token);
        if (!granted.ok() || granted->status != 201) abort();
        std::string grant_id = JsonField(granted->body, "grant_id");
        grants.fetch_add(1);

        auto open_read = spec_client.Do("GET", "/v1/records/" + record_id,
                                        "", spec_token);
        if (!open_read.ok() || open_read->status != 200) abort();

        double t0 = NowUs();
        auto revoked = pat_client.Do(
            "POST", "/v1/consent/revoke",
            "{\"grant_id\": \"" + grant_id + "\"}", pat_token);
        if (!revoked.ok() || revoked->status != 200) abort();
        auto closed_read = spec_client.Do("GET", "/v1/records/" + record_id,
                                          "", spec_token);
        double t1 = NowUs();
        if (!closed_read.ok()) abort();
        if (closed_read->status == 200) {
          violations.fetch_add(1);  // a revoked grant still served a read
        }
        revoke_lat[t].push_back(t1 - t0);
      }
    });
  }
  for (auto& th : threads) th.join();
  double elapsed_us = NowUs() - start;

  ChurnResult result;
  std::vector<double> all;
  for (auto& per_tenant : revoke_lat) {
    all.insert(all.end(), per_tenant.begin(), per_tenant.end());
  }
  result.grants_per_sec = grants.load() / (elapsed_us / 1e6);
  result.revoke_p50_us = Percentile(&all, 0.50);
  result.revoke_p99_us = Percentile(&all, 0.99);
  result.violations = violations.load();
  return result;
}

void WriteBenchJson(const ReadPoint& care, const ReadPoint& consent,
                    const ChurnResult& churn) {
  FILE* f = fopen("BENCH_sharing.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_sharing.json\n");
    return;
  }
  fprintf(f, "{\n  \"context\": {\n");
  fprintf(f, "    \"executable\": \"./bench_sharing\",\n");
  fprintf(f, "    \"library_build_type\": \"release\"\n  },\n");
  fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  auto entry = [&](const std::string& name, double real_time_us,
                   double items_per_second) {
    fprintf(f, "%s    {\n      \"name\": \"%s\",\n", first ? "" : ",\n",
            name.c_str());
    fprintf(f, "      \"run_type\": \"iteration\",\n");
    fprintf(f, "      \"iterations\": 1,\n");
    fprintf(f, "      \"real_time\": %.3f,\n", real_time_us);
    fprintf(f, "      \"cpu_time\": %.3f,\n", real_time_us);
    fprintf(f, "      \"time_unit\": \"us\",\n");
    fprintf(f, "      \"items_per_second\": %.3f\n    }", items_per_second);
    first = false;
  };
  entry("BM_SharingRead/basis:care", care.p99_us, care.reads_per_sec);
  entry("BM_SharingRead/basis:consent", consent.p99_us,
        consent.reads_per_sec);
  if (churn.revoke_p50_us > 0) {
    entry("BM_SharingRevoke", churn.revoke_p99_us,
          1e6 / churn.revoke_p50_us);
  }
  fprintf(f, "\n  ]\n}\n");
  fclose(f);
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;

  printf("E18a: grant-check overhead — the same 32 records read over "
         "HTTP on a care basis (dr) vs a consent basis (spec, "
         "patient-wide grants)\n");
  printf("%10s %10s %10s %10s\n", "basis", "reads/s", "p50-us", "p99-us");
  ReadPoint care, consent;
  ChurnResult churn;
  {
    auto in = MakeServer(/*records=*/32);
    // Every patient delegates patient-wide to the specialist, once.
    for (int p = 0; p < kPatients; p++) {
      auto g = in->vault->GrantConsent("pat-" + std::to_string(p), "spec",
                                       "", "second opinion",
                                       kGrantDuration);
      if (!g.ok()) {
        fprintf(stderr, "grant failed: %s\n", g.status().ToString().c_str());
        abort();
      }
    }
    care = RunReads(in.get(), "dr", /*rounds=*/8);
    consent = RunReads(in.get(), "spec", /*rounds=*/8);
    printf("%10s %10.0f %10.1f %10.1f\n", "care", care.reads_per_sec,
           care.p50_us, care.p99_us);
    printf("%10s %10.0f %10.1f %10.1f\n", "consent", consent.reads_per_sec,
           consent.p50_us, consent.p99_us);
    printf("consent/care p50 ratio: %.2fx\n",
           care.p50_us > 0 ? consent.p50_us / care.p50_us : 0.0);
    in->server->Stop();
  }

  printf("\nE18b: revocation churn — 4 tenant threads, each looping "
         "grant -> grantee read -> revoke -> refused read (24 "
         "iterations each)\n");
  {
    // A fresh instance: no standing grants, so after each revocation
    // the specialist has NO remaining basis and the refused read is a
    // real revocation probe.
    auto in = MakeServer(/*records=*/32);
    churn = RunChurn(in.get(), /*tenants=*/4, /*iterations=*/24);
    printf("%10s %14s %14s %12s\n", "grants/s", "revoke-p50-us",
           "revoke-p99-us", "violations");
    printf("%10.0f %14.1f %14.1f %12zu\n", churn.grants_per_sec,
           churn.revoke_p50_us, churn.revoke_p99_us, churn.violations);
    printf("\nshape check: consent reads cost within a small constant of "
           "care reads (one registry probe + basis tag), and violations "
           "is 0 — no read ever succeeds after its grant's revocation "
           "was acknowledged.\n");
    if (churn.violations != 0) {
      fprintf(stderr, "revoked grants served %zu reads\n", churn.violations);
      abort();
    }
    in->server->Stop();
  }

  WriteBenchJson(care, consent, churn);

  int64_t now_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  medvault::obs::HealthReport health = medvault::obs::CollectProcessHealth(
      now_micros, medvault::obs::MetricsRegistry::Default(),
      medvault::obs::ProcessIoStats());
  medvault::Status health_status = medvault::obs::WriteHealthFile(
      medvault::storage::PosixEnv::Default(), health, "HEALTH_sharing.json");
  if (!health_status.ok()) {
    fprintf(stderr, "health report write failed: %s\n",
            health_status.ToString().c_str());
  }
  return 0;
}
