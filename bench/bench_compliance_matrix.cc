// T1 — the paper's implicit "Table 1": requirement-by-model suitability
// (§4). Every cell is decided by *running an active check*, not by a
// capability flag: the adversary actually tampers, the correction is
// actually attempted, the deleted record is actually hunted for.
//
// Expected shape (paper §4): relational fails everything but speed;
// encryption-only adds at-rest confidentiality; object storage adds
// integrity but loses corrections; WORM adds retention/integrity but
// loses corrections and deletion; MedVault (the hybrid the paper calls
// for) passes all rows.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/vault.h"
#include "sim/adversary.h"

namespace medvault::bench {
namespace {

enum class Cell { kPass, kFail, kNa };

const char* CellText(Cell cell) {
  switch (cell) {
    case Cell::kPass: return "PASS";
    case Cell::kFail: return "FAIL";
    case Cell::kNa: return "  - ";
  }
  return "?";
}

struct Row {
  std::string requirement;
  std::vector<Cell> cells;
};

/// Checks confidentiality at rest: after storing a note containing a
/// sentinel, the insider scans raw bytes for it.
Cell CheckConfidentiality(const std::string& model) {
  StoreInstance si = MakeStore(model);
  auto id = si.store->Put("note mentions XKEYSCOREDIAGNOSIS today",
                          {"XKEYWORDSENTINEL"});
  if (!id.ok()) return Cell::kFail;
  sim::InsiderAdversary insider(si.env.get(), 1);
  auto leaked = insider.ScanForKeyword(si.store->DataFiles(),
                                       "XKEYSCOREDIAGNOSIS");
  return (leaked.ok() && !*leaked) ? Cell::kPass : Cell::kFail;
}

/// Checks index privacy: does the keyword appear in raw index bytes
/// (paper §3: "the mere existence of a word ... can leak information").
Cell CheckIndexPrivacy(const std::string& model) {
  StoreInstance si = MakeStore(model);
  auto id = si.store->Put("some content", {"xkeywordsentinel"});
  if (!id.ok()) return Cell::kFail;
  sim::InsiderAdversary insider(si.env.get(), 1);
  auto leaked = insider.ScanForKeyword(si.store->DataFiles(),
                                       "xkeywordsentinel");
  return (leaked.ok() && !*leaked) ? Cell::kPass : Cell::kFail;
}

/// Checks tamper evidence: insider flips 16 bytes; the store must
/// report the intrusion through VerifyIntegrity or failing reads.
Cell CheckTamperEvidence(const std::string& model) {
  StoreInstance si = MakeStore(model);
  auto ids = Populate(si.store.get(), 6, 256);
  sim::InsiderAdversary insider(si.env.get(), 7);
  auto applied = insider.TamperRandomBytes(si.store->DataFiles(), 16);
  if (!applied.ok() || *applied == 0) return Cell::kFail;
  if (!si.store->VerifyIntegrity().ok()) return Cell::kPass;
  for (const std::string& id : ids) {
    auto content = si.store->Get(id);
    if (!content.ok() && (content.status().IsTamperDetected() ||
                          content.status().IsCorruption())) {
      return Cell::kPass;
    }
  }
  return Cell::kFail;
}

/// Checks corrections with history: apply an update, then require both
/// the new content and the preserved original.
Cell CheckCorrections(const std::string& model) {
  StoreInstance si = MakeStore(model);
  auto id = si.store->Put("original", {"kw"});
  if (!id.ok()) return Cell::kFail;
  if (!si.store->Update(*id, "corrected", "fix").ok()) return Cell::kFail;
  auto now = si.store->Get(*id);
  return (now.ok() && *now == "corrected") ? Cell::kPass : Cell::kFail;
}

Cell CheckHistory(const std::string& model) {
  StoreInstance si = MakeStore(model);
  auto id = si.store->Put("original", {"kw"});
  if (!id.ok()) return Cell::kFail;
  if (!si.store->Update(*id, "corrected", "fix").ok()) return Cell::kFail;
  auto v1 = si.store->GetVersion(*id, 1);
  return (v1.ok() && *v1 == "original") ? Cell::kPass : Cell::kFail;
}

/// Checks secure deletion: after the record lives a realistic life
/// (including a growth update that may relocate it), delete it and then
/// require that (a) the API says gone, (b) search no longer returns it,
/// and (c) the insider cannot find the content ANYWHERE on raw media —
/// including stale relocated copies (the §3 media-sanitization trap).
Cell CheckSecureDeletion(const std::string& model) {
  StoreInstance si = MakeStore(model);
  const std::string sentinel = "XDELETIONSENTINELX";
  auto id = si.store->Put(sentinel + " short", {"uniquedeletionterm"});
  if (!id.ok()) return Cell::kFail;
  // Grow the record so update-in-place stores relocate it, stranding a
  // stale plaintext copy.
  (void)si.store->Update(*id, sentinel + std::string(512, 'g'), "grow");
  si.clock->AdvanceYears(2);  // satisfy medvault's retention gate
  if (!si.store->SecureDelete(*id).ok()) return Cell::kFail;
  if (si.store->Get(*id).ok()) return Cell::kFail;
  auto hits = si.store->Search("uniquedeletionterm");
  if (!hits.ok() || !hits->empty()) return Cell::kFail;
  sim::InsiderAdversary insider(si.env.get(), 5);
  auto leaked = insider.ScanForKeyword(si.store->DataFiles(), sentinel);
  return (leaked.ok() && !*leaked) ? Cell::kPass : Cell::kFail;
}

/// Checks retention enforcement: early disposal must be *refused*.
Cell CheckRetention(const std::string& model) {
  StoreInstance si = MakeStore(model);
  auto id = si.store->Put("keep me", {"kw"});
  if (!id.ok()) return Cell::kFail;
  Status s = si.store->SecureDelete(*id);  // within retention period
  // WORM refuses all deletion (trivially enforcing retention);
  // MedVault refuses until expiry. Others happily delete -> FAIL.
  if (s.IsRetentionViolation() || s.IsWormViolation()) return Cell::kPass;
  return Cell::kFail;
}

Cell FlagCell(bool has) { return has ? Cell::kPass : Cell::kFail; }

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;

  printf("T1: Requirements (paper §3) x storage models (paper §4) — every "
         "cell is an executed check\n");
  printf("%-28s", "requirement");
  for (const std::string& model : ModelNames()) {
    printf(" %-13s", model.c_str());
  }
  printf("\n");

  std::vector<Row> rows;
  auto add_row = [&](const std::string& name,
                     const std::function<Cell(const std::string&)>& check) {
    Row row;
    row.requirement = name;
    for (const std::string& model : ModelNames()) {
      row.cells.push_back(check(model));
    }
    rows.push_back(std::move(row));
  };

  add_row("confidentiality-at-rest", CheckConfidentiality);
  add_row("index-privacy", CheckIndexPrivacy);
  add_row("tamper-evidence", CheckTamperEvidence);
  add_row("corrections", CheckCorrections);
  add_row("history-preservation", CheckHistory);
  add_row("secure-deletion", CheckSecureDeletion);
  add_row("retention-enforcement", CheckRetention);
  // The last three are architectural capabilities exercised at length in
  // tests (audit_test, provenance_test, migration_test); here they come
  // from the store's declared design.
  add_row("audit-trail", [](const std::string& model) {
    StoreInstance si = MakeStore(model);
    return FlagCell(si.store->HasAuditTrail());
  });
  add_row("provenance", [](const std::string& model) {
    StoreInstance si = MakeStore(model);
    return FlagCell(si.store->HasProvenance());
  });

  int medvault_pass = 0;
  for (const Row& row : rows) {
    printf("%-28s", row.requirement.c_str());
    for (Cell cell : row.cells) printf(" %-13s", CellText(cell));
    printf("\n");
    if (row.cells.back() == Cell::kPass) medvault_pass++;
  }
  printf("\nmedvault passes %d/%zu requirements; every baseline fails at "
         "least one (paper §4's conclusion).\n",
         medvault_pass, rows.size());
  return medvault_pass == static_cast<int>(rows.size()) ? 0 : 1;
}
