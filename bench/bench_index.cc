// E3 — trustworthy index vs plaintext index (paper §3 [9]): the privacy
// property (raw index bytes must not reveal "cancer") and the price of
// blinding+sealing postings, measured against a plaintext inverted
// index of the same shape.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/keystore.h"
#include "core/secure_index.h"
#include "sim/adversary.h"

namespace medvault::bench {
namespace {

struct SecureIndexFixture {
  storage::MemEnv env;
  std::unique_ptr<core::KeyStore> keystore;
  std::unique_ptr<core::SecureIndex> index;

  SecureIndexFixture() {
    keystore = std::make_unique<core::KeyStore>(&env, "keys.db",
                                                std::string(32, 'M'),
                                                "seed");
    (void)keystore->Open();
    index = std::make_unique<core::SecureIndex>(&env, "index.log",
                                                std::string(32, 'I'),
                                                keystore.get());
    (void)index->Open();
  }
};

void BM_SecureIndex_AddPosting(benchmark::State& state) {
  SecureIndexFixture fx;
  sim::EhrGenerator gen(3, {});
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string id = "r-" + std::to_string(i++);
    (void)fx.keystore->CreateKey(id);
    sim::EhrRecord r = gen.Next();
    state.ResumeTiming();
    Status s = fx.index->AddPostings(id, r.keywords);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SecureIndex_AddPosting);

void BM_PlaintextIndex_AddPosting(benchmark::State& state) {
  // The baseline: an in-memory term -> ids multimap persisted as a
  // plain log (what the relational/WORM baselines do).
  std::map<std::string, std::vector<std::string>> index;
  sim::EhrGenerator gen(3, {});
  int i = 0;
  for (auto _ : state) {
    std::string id = "r-" + std::to_string(i++);
    sim::EhrRecord r = gen.Next();
    for (const std::string& kw : r.keywords) index[kw].push_back(id);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlaintextIndex_AddPosting);

void BM_SecureIndex_Search(benchmark::State& state) {
  SecureIndexFixture fx;
  sim::EhrGenerator gen(3, {});
  for (int i = 0; i < 500; i++) {
    std::string id = "r-" + std::to_string(i);
    (void)fx.keystore->CreateKey(id);
    (void)fx.index->AddPostings(id, gen.Next().keywords);
  }
  sim::EhrGenerator queries(9, {});
  for (auto _ : state) {
    auto hits = fx.index->Search(queries.QueryTerm());
    if (!hits.ok()) state.SkipWithError(hits.status().ToString().c_str());
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SecureIndex_Search);

void BM_PlaintextIndex_Search(benchmark::State& state) {
  std::map<std::string, std::vector<std::string>> index;
  sim::EhrGenerator gen(3, {});
  for (int i = 0; i < 500; i++) {
    for (const std::string& kw : gen.Next().keywords) {
      index[kw].push_back("r-" + std::to_string(i));
    }
  }
  sim::EhrGenerator queries(9, {});
  for (auto _ : state) {
    auto it = index.find(queries.QueryTerm());
    benchmark::DoNotOptimize(it);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlaintextIndex_Search);

/// The privacy half of E3 as a printed check.
void PrintPrivacyCheck() {
  printf("\nE3 privacy check — can an insider with raw disk access learn "
         "that any record mentions \"cancer\"?\n");
  // Secure index:
  {
    SecureIndexFixture fx;
    (void)fx.keystore->CreateKey("r-1");
    (void)fx.index->AddPostings("r-1", {"cancer"});
    sim::InsiderAdversary insider(&fx.env, 1);
    bool leaked = *insider.ScanForKeyword({"index.log"}, "cancer");
    printf("  medvault blinded index : %s\n",
           leaked ? "LEAKED" : "no leak");
  }
  // Plaintext-index baselines:
  for (const std::string& model :
       {std::string("relational"), std::string("worm")}) {
    StoreInstance si = MakeStore(model);
    (void)si.store->Put("note", {"cancer"});
    sim::InsiderAdversary insider(si.env.get(), 1);
    bool leaked = *insider.ScanForKeyword(si.store->DataFiles(), "cancer");
    printf("  %-22s : %s\n", (model + " index").c_str(),
           leaked ? "LEAKED" : "no leak");
  }
}

}  // namespace
}  // namespace medvault::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  medvault::bench::PrintPrivacyCheck();
  return 0;
}
