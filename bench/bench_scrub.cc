// E13 — media scrub throughput and read-repair cost (DESIGN.md "Media
// faults & repair"; paper §3: reliability of long-horizon archival
// media). Two tables:
//
//   1. Structural scrub MB/s vs vault size, plus the full deep scrub
//      (Merkle/hash-binding verification) for scale, answering "how
//      often can we afford to scrub the archive?".
//   2. Repair time vs corruption fraction: flip one byte in each of k
//      vault files, scrub to localize, then BackupManager::Repair from
//      a full backup — repair cost should track the number of damaged
//      files, not the vault size.
//
// Writes HEALTH_scrub.json (process registry incl. vault.scrub.*
// counters + accumulated env I/O) next to the binary.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/backup.h"
#include "core/scrub.h"
#include "core/vault.h"

namespace medvault::bench {
namespace {

using core::BackupManager;
using core::ScrubReport;
using core::Scrubber;
using core::Vault;
using core::VaultOptions;

constexpr int kPatients = 16;

struct VaultInstance {
  storage::MemEnv env;
  std::unique_ptr<storage::InstrumentedEnv> ienv;
  ManualClock clock{1000000};
  std::unique_ptr<Vault> vault;
};

std::unique_ptr<VaultInstance> MakeVault(int records, size_t note_bytes) {
  auto vi = std::make_unique<VaultInstance>();
  vi->ienv = std::make_unique<storage::InstrumentedEnv>(
      &vi->env, obs::ProcessIoStats());
  VaultOptions options;
  options.env = vi->ienv.get();
  options.dir = "vault";
  options.clock = &vi->clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "bench-scrub-entropy";
  options.signer_height = 8;
  auto opened = Vault::Open(options);
  if (!opened.ok()) {
    fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    abort();
  }
  vi->vault = std::move(*opened);
  Vault* v = vi->vault.get();
  (void)v->RegisterPrincipal("boot", {"admin-r", core::Role::kAdmin, "Root"});
  (void)v->RegisterPrincipal("admin-r",
                             {"dr-a", core::Role::kPhysician, "Dr A"});
  for (int p = 0; p < kPatients; p++) {
    std::string pat = "pat-" + std::to_string(p);
    (void)v->RegisterPrincipal("admin-r", {pat, core::Role::kPatient, pat});
    (void)v->AssignCare("admin-r", "dr-a", pat);
  }
  sim::EhrGenerator::Options gopt;
  gopt.note_bytes = note_bytes;
  sim::EhrGenerator gen(42, gopt);
  for (int i = 0; i < records; i++) {
    sim::EhrRecord r = gen.Next();
    std::string pat = "pat-" + std::to_string(i % kPatients);
    auto id = v->CreateRecord("dr-a", pat, "text/plain", r.text, r.keywords,
                              "hipaa-6y");
    if (!id.ok()) {
      fprintf(stderr, "create failed: %s\n",
              id.status().ToString().c_str());
      abort();
    }
  }
  Status s = v->SyncAll();
  if (!s.ok()) {
    fprintf(stderr, "sync failed: %s\n", s.ToString().c_str());
    abort();
  }
  return vi;
}

void ScrubThroughputTable() {
  printf("E13a: scrub cost vs vault size (MemEnv, 512B notes)\n");
  printf("%8s %10s %12s %12s %10s\n", "records", "bytes", "struct-ms",
         "deep-ms", "MB/s");
  for (int records : {64, 256, 1024}) {
    auto vi = MakeVault(records, 512);
    ScrubReport structural;
    double struct_us = TimeUs([&] {
      auto r = Scrubber::ScrubVaultDir(vi->ienv.get(), "vault", 0);
      if (r.ok()) structural = std::move(*r);
    });
    double deep_us = TimeUs([&] {
      auto r = vi->vault->Scrub();
      if (!r.ok() || !r->clean()) {
        fprintf(stderr, "deep scrub dirty on a healthy vault\n");
        abort();
      }
    });
    double mbps = structural.bytes_scanned / struct_us;  // bytes/us == MB/s
    printf("%8d %10llu %12.2f %12.2f %10.1f\n", records,
           static_cast<unsigned long long>(structural.bytes_scanned),
           struct_us / 1000.0, deep_us / 1000.0, mbps);
  }
  printf("\n");
}

void RepairCostTable() {
  printf("E13b: read-repair cost vs damaged files (256-record vault, "
         "full backup)\n");
  printf("%13s %10s %10s %9s %9s\n", "damaged-files", "scrub-ms",
         "repair-ms", "restored", "verified");
  auto vi = MakeVault(256, 512);
  auto backup = BackupManager::Backup(vi->vault.get(), "admin-r",
                                      vi->ienv.get(), "bk-full");
  if (!backup.ok()) {
    fprintf(stderr, "backup failed: %s\n",
            backup.status().ToString().c_str());
    abort();
  }
  vi->vault.reset();  // repair operates on a closed vault
  auto chain = BackupManager::LoadChain(vi->ienv.get(), {"bk-full"});
  if (!chain.ok()) abort();

  // The repairable file inventory, from a clean scrub.
  auto clean = Scrubber::ScrubVaultDir(vi->ienv.get(), "vault", 0);
  if (!clean.ok()) abort();
  std::vector<std::string> files;
  for (const auto& f : clean->files) files.push_back(f.path);

  for (size_t damage : {size_t{1}, size_t{3}, files.size()}) {
    if (damage > files.size()) damage = files.size();
    // One flipped byte per victim file — silent bit rot.
    for (size_t i = 0; i < damage; i++) {
      const std::string path = "vault/" + files[i];
      std::string data;
      if (!storage::ReadFileToString(vi->ienv.get(), path, &data).ok() ||
          data.size() < 11) {
        continue;
      }
      const char flipped = static_cast<char>(data[10] ^ 0x40);
      (void)vi->ienv->UnsafeOverwrite(path, 10, Slice(&flipped, 1));
    }
    ScrubReport report;
    double scrub_us = TimeUs([&] {
      auto r = Scrubber::ScrubVaultDir(vi->ienv.get(), "vault", 0);
      if (r.ok()) report = std::move(*r);
    });
    BackupManager::RepairSummary summary;
    double repair_us = TimeUs([&] {
      auto r = BackupManager::Repair(vi->ienv.get(), *chain, vi->ienv.get(),
                                     "vault", report);
      if (r.ok()) summary = std::move(*r);
    });
    printf("%13zu %10.2f %10.2f %9zu %9s\n", damage, scrub_us / 1000.0,
           repair_us / 1000.0, summary.restored.size(),
           summary.verified_clean ? "clean" : "DIRTY");
  }
  printf("\nshape check: repair-ms tracks damaged-files (restore is "
         "surgical), not vault size; every round verifies clean.\n");
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;
  ScrubThroughputTable();
  RepairCostTable();

  int64_t now_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  medvault::obs::HealthReport health = medvault::obs::CollectProcessHealth(
      now_micros, medvault::obs::MetricsRegistry::Default(),
      medvault::obs::ProcessIoStats());
  medvault::Status health_status = medvault::obs::WriteHealthFile(
      medvault::storage::PosixEnv::Default(), health, "HEALTH_scrub.json");
  if (!health_status.ok()) {
    fprintf(stderr, "health report write failed: %s\n",
            health_status.ToString().c_str());
  }
  return 0;
}
