// E10 — the 30-year lifecycle (paper §2.2 OSHA, §3 long retention):
// a population of records lives through corrections, audit
// checkpoints, an off-site backup, a hardware-refresh migration, a
// master-key rotation, and final disposal. Each phase is timed and
// followed by a full verification pass — the property the paper says
// existing systems cannot sustain.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/backup.h"
#include "core/migration.h"
#include "core/vault.h"

namespace medvault::bench {
namespace {

using core::BackupManager;
using core::Migrator;
using core::Role;
using core::Vault;
using core::VaultOptions;

constexpr int kRecords = 40;

std::unique_ptr<Vault> OpenVault(storage::Env* env, const ManualClock* clock,
                                 const std::string& system,
                                 const std::string& entropy) {
  VaultOptions options;
  options.env = env;
  options.dir = "vault";
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = entropy;
  options.signer_height = 6;
  options.system_id = system;
  auto vault = Vault::Open(options);
  if (!vault.ok()) abort();
  (void)(*vault)->RegisterPrincipal("boot",
                                    {"admin", Role::kAdmin, "Admin"});
  (void)(*vault)->RegisterPrincipal("admin",
                                    {"dr-a", Role::kPhysician, "Dr"});
  (void)(*vault)->RegisterPrincipal("admin",
                                    {"pat-p", Role::kPatient, "P"});
  (void)(*vault)->AssignCare("admin", "dr-a", "pat-p");
  return std::move(*vault);
}

void Phase(const char* year, const char* name, double ms, Status verify) {
  printf("%6s  %-34s %10.2f ms   verify: %s\n", year, name, ms,
         verify.ToString().c_str());
  if (!verify.ok()) abort();
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault;
  using namespace medvault::bench;
  printf("E10: 30-year compliance lifecycle, %d records under osha-30y\n\n",
         kRecords);

  ManualClock clock(0);
  storage::MemEnv gen1_disk, gen2_disk, offsite;
  auto gen1 = OpenVault(&gen1_disk, &clock, "ehr-gen1", "entropy-1");

  // Year 0: ingest.
  std::vector<std::string> ids;
  double ms = TimeUs([&] {
                sim::EhrGenerator gen(1, {});
                for (int i = 0; i < kRecords; i++) {
                  sim::EhrRecord r = gen.Next();
                  auto id = gen1->CreateRecord("dr-a", "pat-p", "text/plain",
                                               r.text, r.keywords,
                                               "osha-30y");
                  if (!id.ok()) abort();
                  ids.push_back(*id);
                }
              }) /
              1000.0;
  Phase("y0", "ingest", ms, gen1->VerifyEverything());

  // Year 2: corrections on a quarter of the records.
  clock.AdvanceYears(2);
  ms = TimeUs([&] {
         for (int i = 0; i < kRecords / 4; i++) {
           auto h = gen1->CorrectRecord("dr-a", ids[i],
                                        "corrected content body",
                                        "routine amendment", {"amended"});
           if (!h.ok()) abort();
         }
       }) /
       1000.0;
  Phase("y2", "corrections (25% of records)", ms, gen1->VerifyEverything());

  // Year 2: signed audit checkpoint.
  core::SignedCheckpoint retained;
  ms = TimeUs([&] { retained = *gen1->CheckpointAudit(); }) / 1000.0;
  Phase("y2", "audit checkpoint", ms, gen1->VerifyAudit());

  // Year 5: off-site backup + verification.
  clock.AdvanceYears(3);
  core::BackupManifest manifest;
  ms = TimeUs([&] {
         manifest =
             *BackupManager::Backup(gen1.get(), "admin", &offsite, "off");
       }) /
       1000.0;
  Phase("y5", "off-site backup", ms,
        BackupManager::Verify(&offsite, "off", manifest));

  // Year 12: hardware refresh -> verifiable migration.
  clock.AdvanceYears(7);
  auto gen2 = OpenVault(&gen2_disk, &clock, "ehr-gen2", "entropy-2");
  core::MigrationReceipt receipt;
  ms = TimeUs([&] {
         auto r = Migrator::Migrate(gen1.get(), gen2.get(), "admin");
         if (!r.ok()) {
           fprintf(stderr, "migrate: %s\n", r.status().ToString().c_str());
           abort();
         }
         receipt = *r;
       }) /
       1000.0;
  Phase("y12", "verifiable migration", ms,
        Migrator::VerifyReceipt(receipt, gen1.get(), gen2.get()));

  // Year 20: master key rotation on the new system.
  clock.AdvanceYears(8);
  ms = TimeUs([&] {
         Status s = gen2->RotateMasterKey("admin", std::string(32, 'R'));
         if (!s.ok()) abort();
       }) /
       1000.0;
  Phase("y20", "master key rotation", ms, gen2->VerifyEverything());

  // Year 29: early disposal must be refused.
  clock.AdvanceYears(9);
  Status early = gen2->DisposeRecord("admin", ids[0]).status();
  printf("%6s  %-34s %10s      gate: %s\n", "y29", "early disposal attempt",
         "-", early.IsRetentionViolation() ? "refused (correct)" : "BUG");
  if (!early.IsRetentionViolation()) abort();

  // Year 31: disposal of the whole cohort with certificates.
  clock.AdvanceYears(2);
  int certified = 0;
  ms = TimeUs([&] {
         for (const std::string& id : ids) {
           auto cert = gen2->DisposeRecord("admin", id);
           if (!cert.ok()) abort();
           if (core::RetentionManager::VerifyCertificate(
                   *cert, gen2->SignerPublicKey(), gen2->SignerPublicSeed(),
                   gen2->SignerHeight())
                   .ok()) {
             certified++;
           }
         }
       }) /
       1000.0;
  Phase("y31", "disposal of all records", ms, gen2->VerifyEverything());
  printf("\n%d/%d disposal certificates verify; reads after disposal: %s\n",
         certified, kRecords,
         gen2->ReadRecord("dr-a", ids[0]).status().ToString().c_str());
  printf("custody chains intact end-to-end: %s\n",
         gen2->provenance()->VerifyAllChains().ToString().c_str());
  return 0;
}
