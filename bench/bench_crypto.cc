// E9 — crypto primitive throughput: the overhead budget behind every
// other experiment. SHA-256, HMAC, AES-CTR, AEAD, Merkle operations,
// WOTS/XMSS signing & verification, and XMSS key generation vs height.

// Run with MEDVAULT_FORCE_SCALAR=1 to measure the portable fallback
// kernels; the default run uses whatever the CPU dispatch selected
// (SHA-NI / AES-NI where available).

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "crypto/aead.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernels.h"
#include "crypto/wots.h"
#include "crypto/xmss.h"

namespace medvault::bench {
namespace {

using namespace medvault::crypto;
using namespace medvault::crypto::internal;  // raw SHA-256 block kernels

void BM_Sha256(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

// Raw block-kernel comparison: the runtime-dispatched kernel against the
// scalar fallback, in the same process (the E9 accelerated-vs-scalar
// row without needing a MEDVAULT_FORCE_SCALAR rerun).
void RunSha256Kernel(benchmark::State& state, Sha256BlockFn fn) {
  const size_t nblocks = static_cast<size_t>(state.range(0));
  std::string blocks(nblocks * 64, 'x');
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  for (auto _ : state) {
    fn(h, reinterpret_cast<const uint8_t*>(blocks.data()), nblocks);
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(nblocks * 64));
}
void BM_Sha256KernelActive(benchmark::State& state) {
  RunSha256Kernel(state, ActiveSha256Kernel());
}
void BM_Sha256KernelScalar(benchmark::State& state) {
  RunSha256Kernel(state, &Sha256BlocksScalar);
}
BENCHMARK(BM_Sha256KernelActive)->Arg(1024);
BENCHMARK(BM_Sha256KernelScalar)->Arg(1024);

void BM_HmacSha256(benchmark::State& state) {
  std::string key(32, 'k');
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_AesCtr(benchmark::State& state) {
  AesCtr ctr;
  (void)ctr.Init(std::string(32, 'k'));
  std::string nonce(16, 'n');
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr.Crypt(nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(4096)->Arg(65536);

void BM_AeadSeal(benchmark::State& state) {
  Aead aead;
  (void)aead.Init(std::string(32, 'k'));
  std::string nonce(16, 'n');
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.Seal(nonce, data, "aad"));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(4096)->Arg(65536);

void BM_AeadOpen(benchmark::State& state) {
  Aead aead;
  (void)aead.Init(std::string(32, 'k'));
  std::string nonce(16, 'n');
  std::string data(state.range(0), 'x');
  std::string sealed = *aead.Seal(nonce, data, "aad");
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.Open(sealed, "aad"));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(64)->Arg(4096)->Arg(65536);

void BM_MerkleAppendAndRoot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MerkleTree tree;
    for (int i = 0; i < n; i++) tree.Append("leaf");
    benchmark::DoNotOptimize(tree.Root());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MerkleAppendAndRoot)->Arg(256)->Arg(4096);

void BM_MerkleInclusionProof(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MerkleTree tree;
  for (int i = 0; i < n; i++) tree.Append("leaf-" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.InclusionProof(n / 2, n));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MerkleInclusionProof)->Arg(1024)->Arg(16384);

void BM_WotsSign(benchmark::State& state) {
  Wots wots("secret-seed", "public-seed", 0);
  std::string digest = Sha256Digest("message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(wots.Sign(digest));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
  Wots wots("secret-seed", "public-seed", 0);
  std::string digest = Sha256Digest("message");
  auto sig = *wots.Sign(digest);
  std::string pk = wots.PublicKey();
  for (auto _ : state) {
    Status s = Wots::Verify(digest, sig, pk, "public-seed", 0);
    if (!s.ok()) state.SkipWithError("verify failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WotsVerify);

void BM_XmssKeygen(benchmark::State& state) {
  const int height = static_cast<int>(state.range(0));
  for (auto _ : state) {
    XmssSigner signer("secret", "public", height);
    benchmark::DoNotOptimize(signer.public_key());
  }
  state.counters["signatures"] = static_cast<double>(1 << height);
}
BENCHMARK(BM_XmssKeygen)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_XmssSign(benchmark::State& state) {
  XmssSigner signer("secret", "public", 10);  // 1024 signatures
  for (auto _ : state) {
    auto sig = signer.Sign("audit checkpoint payload");
    if (!sig.ok()) {
      state.SkipWithError("signer exhausted");
      return;
    }
    benchmark::DoNotOptimize(sig);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmssSign)->Iterations(64);

void BM_XmssVerify(benchmark::State& state) {
  XmssSigner signer("secret", "public", 4);
  auto sig = *signer.Sign("payload");
  for (auto _ : state) {
    Status s = XmssSigner::Verify("payload", sig, signer.public_key(),
                                  "public", 4);
    if (!s.ok()) state.SkipWithError("verify failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmssVerify);

}  // namespace
}  // namespace medvault::bench

int main(int argc, char** argv) {
  return medvault::bench::RunBenchmarkMain("crypto", argc, argv);
}
