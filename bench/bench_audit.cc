// E5 — audit trail costs (paper §3: "verifiable audit trails"): append
// latency, full-log verification vs log size, and the O(log n) proof
// sizes that make spot-checks cheap for an external auditor.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/audit.h"
#include "crypto/xmss.h"
#include "storage/mem_env.h"

namespace medvault::bench {
namespace {

using core::AuditAction;
using core::AuditLog;

void BM_AuditAppend(benchmark::State& state) {
  storage::MemEnv env;
  AuditLog log(&env, "audit.log");
  (void)log.Open();
  Timestamp t = 0;
  for (auto _ : state) {
    auto seq = log.Append("dr-a", AuditAction::kRead, "r-1", "ok", t++);
    if (!seq.ok()) state.SkipWithError(seq.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuditAppend);

void BM_AuditVerifyAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  storage::MemEnv env;
  crypto::XmssSigner signer("bench-secret", "bench-public", 4);
  AuditLog log(&env, "audit.log");
  (void)log.Open();
  for (int i = 0; i < n; i++) {
    (void)log.Append("dr-a", AuditAction::kRead, "r-1", "ok", i);
  }
  (void)log.Checkpoint(&signer, n);

  for (auto _ : state) {
    Status s = log.VerifyAll(signer.public_key(), "bench-public", 4);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["events"] = n;
}
BENCHMARK(BM_AuditVerifyAll)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_InclusionProofGenerate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  storage::MemEnv env;
  AuditLog log(&env, "audit.log");
  (void)log.Open();
  for (int i = 0; i < n; i++) {
    (void)log.Append("dr-a", AuditAction::kRead, "r-1", "ok", i);
  }
  uint64_t seq = 0;
  for (auto _ : state) {
    auto proof = log.ProveEvent(seq % n);
    if (!proof.ok()) state.SkipWithError(proof.status().ToString().c_str());
    benchmark::DoNotOptimize(proof);
    seq += 17;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InclusionProofGenerate)->Arg(1024)->Arg(16384);

void BM_InclusionProofVerify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  storage::MemEnv env;
  AuditLog log(&env, "audit.log");
  (void)log.Open();
  for (int i = 0; i < n; i++) {
    (void)log.Append("dr-a", AuditAction::kRead, "r-1", "ok", i);
  }
  auto proof = log.ProveEvent(n / 2);
  std::string root = log.Root();
  for (auto _ : state) {
    Status s = AuditLog::VerifyEventProof(*proof, root);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["proof_hashes"] = static_cast<double>(proof->path.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InclusionProofVerify)->Arg(1024)->Arg(16384);

void BM_ConsistencyProof(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  storage::MemEnv env;
  AuditLog log(&env, "audit.log");
  (void)log.Open();
  for (int i = 0; i < n; i++) {
    (void)log.Append("dr-a", AuditAction::kRead, "r-1", "ok", i);
  }
  // Build the trusted head the auditor would have retained at n/2.
  core::SignedCheckpoint trusted;
  trusted.tree_size = n / 2;
  {
    storage::MemEnv env2;
    AuditLog half(&env2, "audit.log");
    (void)half.Open();
    for (int i = 0; i < n / 2; i++) {
      (void)half.Append("dr-a", AuditAction::kRead, "r-1", "ok", i);
    }
    trusted.root = half.Root();
  }
  for (auto _ : state) {
    Status s = log.VerifyAgainstTrusted(trusted);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistencyProof)->Arg(1024)->Arg(16384);

void PrintProofSizes() {
  printf("\nE5 proof-size growth (hashes per inclusion proof — O(log n)):\n");
  printf("%10s %14s\n", "events", "proof hashes");
  for (int n : {16, 256, 4096, 65536}) {
    storage::MemEnv env;
    AuditLog log(&env, "audit.log");
    (void)log.Open();
    for (int i = 0; i < n; i++) {
      (void)log.Append("a", AuditAction::kRead, "r", "", i);
    }
    auto proof = log.ProveEvent(n / 2);
    printf("%10d %14zu\n", n, proof->path.size());
  }
}

}  // namespace
}  // namespace medvault::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  medvault::bench::PrintProofSizes();
  return 0;
}
