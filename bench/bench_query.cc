// E2 — read-path latency across the five models (paper §3: "the
// health-care records must be accessible in a timely manner"): point
// reads of individual records and keyword queries over the index.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace medvault::bench {
namespace {

constexpr int kRecords = 300;

void RunPointRead(benchmark::State& state, const std::string& model) {
  StoreInstance si = MakeStore(model);
  std::vector<std::string> ids = Populate(si.store.get(), kRecords);
  Random rng(55);
  int64_t reads = 0;
  for (auto _ : state) {
    const std::string& id = ids[rng.Uniform(ids.size())];
    auto content = si.store->Get(id);
    if (!content.ok()) state.SkipWithError(content.status().ToString().c_str());
    benchmark::DoNotOptimize(content);
    reads++;
  }
  state.SetItemsProcessed(reads);
}

void RunSearch(benchmark::State& state, const std::string& model) {
  StoreInstance si = MakeStore(model);
  Populate(si.store.get(), kRecords);
  sim::EhrGenerator gen(55, {});
  int64_t queries = 0;
  for (auto _ : state) {
    auto hits = si.store->Search(gen.QueryTerm());
    if (!hits.ok()) state.SkipWithError(hits.status().ToString().c_str());
    benchmark::DoNotOptimize(hits);
    queries++;
  }
  state.SetItemsProcessed(queries);
}

void BM_PointRead_Relational(benchmark::State& s) { RunPointRead(s, "relational"); }
void BM_PointRead_EncryptedDb(benchmark::State& s) { RunPointRead(s, "encrypted-db"); }
void BM_PointRead_ObjectStore(benchmark::State& s) { RunPointRead(s, "object-store"); }
void BM_PointRead_Worm(benchmark::State& s) { RunPointRead(s, "worm"); }
void BM_PointRead_MedVault(benchmark::State& s) { RunPointRead(s, "medvault"); }

BENCHMARK(BM_PointRead_Relational);
BENCHMARK(BM_PointRead_EncryptedDb);
BENCHMARK(BM_PointRead_ObjectStore);
BENCHMARK(BM_PointRead_Worm);
BENCHMARK(BM_PointRead_MedVault);

void BM_Search_Relational(benchmark::State& s) { RunSearch(s, "relational"); }
void BM_Search_EncryptedDb(benchmark::State& s) { RunSearch(s, "encrypted-db"); }
void BM_Search_ObjectStore(benchmark::State& s) { RunSearch(s, "object-store"); }
void BM_Search_Worm(benchmark::State& s) { RunSearch(s, "worm"); }
void BM_Search_MedVault(benchmark::State& s) { RunSearch(s, "medvault"); }

BENCHMARK(BM_Search_Relational);
BENCHMARK(BM_Search_EncryptedDb);
BENCHMARK(BM_Search_ObjectStore);
BENCHMARK(BM_Search_Worm);
BENCHMARK(BM_Search_MedVault);

}  // namespace
}  // namespace medvault::bench

BENCHMARK_MAIN();
