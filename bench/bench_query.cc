// E2 — read-path latency across the five models (paper §3: "the
// health-care records must be accessible in a timely manner"): point
// reads of individual records and keyword queries over the index.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/record_cache.h"
#include "core/sharded_vault.h"

namespace medvault::bench {
namespace {

constexpr int kRecords = 300;

void RunPointRead(benchmark::State& state, const std::string& model) {
  StoreInstance si = MakeStore(model);
  std::vector<std::string> ids = Populate(si.store.get(), kRecords);
  Random rng(55);
  int64_t reads = 0;
  for (auto _ : state) {
    const std::string& id = ids[rng.Uniform(ids.size())];
    auto content = si.store->Get(id);
    if (!content.ok()) state.SkipWithError(content.status().ToString().c_str());
    benchmark::DoNotOptimize(content);
    reads++;
  }
  state.SetItemsProcessed(reads);
}

void RunSearch(benchmark::State& state, const std::string& model) {
  StoreInstance si = MakeStore(model);
  Populate(si.store.get(), kRecords);
  sim::EhrGenerator gen(55, {});
  int64_t queries = 0;
  for (auto _ : state) {
    auto hits = si.store->Search(gen.QueryTerm());
    if (!hits.ok()) state.SkipWithError(hits.status().ToString().c_str());
    benchmark::DoNotOptimize(hits);
    queries++;
  }
  state.SetItemsProcessed(queries);
}

void BM_PointRead_Relational(benchmark::State& s) { RunPointRead(s, "relational"); }
void BM_PointRead_EncryptedDb(benchmark::State& s) { RunPointRead(s, "encrypted-db"); }
void BM_PointRead_ObjectStore(benchmark::State& s) { RunPointRead(s, "object-store"); }
void BM_PointRead_Worm(benchmark::State& s) { RunPointRead(s, "worm"); }
void BM_PointRead_MedVault(benchmark::State& s) { RunPointRead(s, "medvault"); }

BENCHMARK(BM_PointRead_Relational);
BENCHMARK(BM_PointRead_EncryptedDb);
BENCHMARK(BM_PointRead_ObjectStore);
BENCHMARK(BM_PointRead_Worm);
BENCHMARK(BM_PointRead_MedVault);

// Cached point read: the same vault read path with the authenticated
// RecordCache enabled (VaultOptions::cache). After the first pass over
// the working set every read is a cache hit: one catalog-hash lookup +
// one hash compare instead of a version-store read + AEAD open. The
// delta against BM_PointRead_MedVault is the headline E2 number; the
// audit append still happens on every read, cached or not, so this
// also bounds how much the mandatory audit path costs.
void BM_PointRead_MedVaultCached(benchmark::State& state) {
  storage::MemEnv env;
  storage::InstrumentedEnv ienv(&env, obs::ProcessIoStats());
  ManualClock clock(1000000);
  core::RecordCache cache(8u << 20);
  core::VaultOptions options;
  options.env = &ienv;
  options.dir = "store";
  options.clock = &clock;
  options.master_key = std::string(32, 'K');
  options.entropy = "bench-query-cached-entropy";
  options.signer_height = 8;
  options.cache = &cache;
  auto opened = core::Vault::Open(options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  core::Vault* vault = opened->get();
  (void)vault->RegisterPrincipal("boot", {"admin", core::Role::kAdmin, "A"});
  (void)vault->RegisterPrincipal("admin", {"dr", core::Role::kPhysician, "D"});
  (void)vault->RegisterPrincipal("admin", {"pat", core::Role::kPatient, "P"});
  (void)vault->AssignCare("admin", "dr", "pat");
  sim::EhrGenerator gen(42, {});
  std::vector<core::RecordId> ids;
  for (int i = 0; i < kRecords; ++i) {
    sim::EhrRecord r = gen.Next();
    auto id = vault->CreateRecord("dr", "pat", "text/plain", r.text,
                                  r.keywords, "hipaa-6y");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    ids.push_back(*id);
  }
  Random rng(55);
  int64_t reads = 0;
  for (auto _ : state) {
    const core::RecordId& id = ids[rng.Uniform(ids.size())];
    auto content = vault->ReadRecord("dr", id);
    if (!content.ok()) state.SkipWithError(content.status().ToString().c_str());
    benchmark::DoNotOptimize(content);
    reads++;
  }
  state.SetItemsProcessed(reads);
}
BENCHMARK(BM_PointRead_MedVaultCached);

// Sharded point read: random reads routed across N shards sharing one
// authenticated cache. Single-threaded, so this measures routing +
// shared-cache overhead per shard count rather than parallel speedup.
void BM_PointRead_Sharded(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  storage::MemEnv env;
  storage::InstrumentedEnv ienv(&env, obs::ProcessIoStats());
  ManualClock clock(1000000);
  core::ShardedVaultOptions options;
  options.env = &ienv;
  options.dir = "sharded";
  options.clock = &clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "bench-query-sharded-entropy";
  options.num_shards = shards;
  options.signer_height = 8;
  auto opened = core::ShardedVault::Open(options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  core::ShardedVault* vault = opened->get();
  (void)vault->RegisterPrincipal("boot", {"admin", core::Role::kAdmin, "A"});
  (void)vault->RegisterPrincipal("admin", {"dr", core::Role::kPhysician, "D"});
  constexpr int kPatients = 32;
  for (int p = 0; p < kPatients; ++p) {
    std::string patient = "pat-" + std::to_string(p);
    (void)vault->RegisterPrincipal(
        "admin", {patient, core::Role::kPatient, patient});
    (void)vault->AssignCare("admin", "dr", patient);
  }
  sim::EhrGenerator gen(42, {});
  std::vector<core::RecordId> ids;
  for (int i = 0; i < kRecords; ++i) {
    sim::EhrRecord r = gen.Next();
    auto id = vault->CreateRecord("dr", "pat-" + std::to_string(i % kPatients),
                                  "text/plain", r.text, r.keywords,
                                  "hipaa-6y");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    ids.push_back(*id);
  }
  Random rng(55);
  int64_t reads = 0;
  for (auto _ : state) {
    const core::RecordId& id = ids[rng.Uniform(ids.size())];
    auto content = vault->ReadRecord("dr", id);
    if (!content.ok()) state.SkipWithError(content.status().ToString().c_str());
    benchmark::DoNotOptimize(content);
    reads++;
  }
  state.SetItemsProcessed(reads);
}
BENCHMARK(BM_PointRead_Sharded)->ArgName("shards")->Arg(1)->Arg(4);

void BM_Search_Relational(benchmark::State& s) { RunSearch(s, "relational"); }
void BM_Search_EncryptedDb(benchmark::State& s) { RunSearch(s, "encrypted-db"); }
void BM_Search_ObjectStore(benchmark::State& s) { RunSearch(s, "object-store"); }
void BM_Search_Worm(benchmark::State& s) { RunSearch(s, "worm"); }
void BM_Search_MedVault(benchmark::State& s) { RunSearch(s, "medvault"); }

BENCHMARK(BM_Search_Relational);
BENCHMARK(BM_Search_EncryptedDb);
BENCHMARK(BM_Search_ObjectStore);
BENCHMARK(BM_Search_Worm);
BENCHMARK(BM_Search_MedVault);

}  // namespace
}  // namespace medvault::bench

int main(int argc, char** argv) {
  return medvault::bench::RunBenchmarkMain("query", argc, argv);
}
