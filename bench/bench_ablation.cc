// Ablations of the design choices DESIGN.md calls out: what each
// security/performance mechanism costs, measured by switching it off.
//
//  A1  Merkle subtree memoization (on/off)   — proof generation cost
//  A2  encrypt-then-MAC AEAD vs raw AES-CTR  — integrity's price
//  A3  checkpoint signing: XMSS vs none      — hash-based signature cost
//  A4  per-record keys vs one shared key     — key-wrap overhead of the
//                                              granularity that enables
//                                              crypto-shredding

#include <benchmark/benchmark.h>

#include <string>

#include "core/keystore.h"
#include "crypto/aead.h"
#include "crypto/ctr.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/xmss.h"
#include "storage/mem_env.h"

namespace medvault::bench {
namespace {

using namespace medvault::crypto;

// ---- A1: Merkle memoization ---------------------------------------------------

void RunMerkleProofs(benchmark::State& state, bool memoize) {
  const int n = static_cast<int>(state.range(0));
  MerkleTree tree(memoize);
  for (int i = 0; i < n; i++) tree.Append("leaf-" + std::to_string(i));
  uint64_t index = 0;
  for (auto _ : state) {
    auto proof = tree.InclusionProof(index % n, n);
    if (!proof.ok()) state.SkipWithError("proof failed");
    benchmark::DoNotOptimize(proof);
    index += 131;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_A1_MerkleProof_Memoized(benchmark::State& s) {
  RunMerkleProofs(s, true);
}
void BM_A1_MerkleProof_Naive(benchmark::State& s) {
  RunMerkleProofs(s, false);
}
BENCHMARK(BM_A1_MerkleProof_Memoized)->Arg(1024)->Arg(16384);
BENCHMARK(BM_A1_MerkleProof_Naive)->Arg(1024)->Arg(16384);

void RunMerkleAppendRoot(benchmark::State& state, bool memoize) {
  // The audit-log pattern: append then read the root (checkpointing).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MerkleTree tree(memoize);
    for (int i = 0; i < n; i++) {
      tree.Append("event");
      if (i % 64 == 63) benchmark::DoNotOptimize(tree.Root());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_A1_AppendWithRoots_Memoized(benchmark::State& s) {
  RunMerkleAppendRoot(s, true);
}
void BM_A1_AppendWithRoots_Naive(benchmark::State& s) {
  RunMerkleAppendRoot(s, false);
}
BENCHMARK(BM_A1_AppendWithRoots_Memoized)->Arg(4096);
BENCHMARK(BM_A1_AppendWithRoots_Naive)->Arg(4096);

// ---- A2: integrity's price ------------------------------------------------------

void BM_A2_AeadSeal(benchmark::State& state) {
  Aead aead;
  (void)aead.Init(std::string(32, 'k'));
  std::string nonce(16, 'n');
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.Seal(nonce, data, "aad"));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
void BM_A2_CtrOnly(benchmark::State& state) {
  AesCtr ctr;
  (void)ctr.Init(std::string(32, 'k'));
  std::string nonce(16, 'n');
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr.Crypt(nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_A2_AeadSeal)->Arg(512)->Arg(8192);
BENCHMARK(BM_A2_CtrOnly)->Arg(512)->Arg(8192);

// ---- A3: checkpoint signing cost ---------------------------------------------------

void BM_A3_CheckpointSigned(benchmark::State& state) {
  XmssSigner signer("secret", "public", 10);
  std::string payload(100, 'p');
  for (auto _ : state) {
    auto sig = signer.Sign(payload);
    if (!sig.ok()) {
      state.SkipWithError("exhausted");
      return;
    }
    benchmark::DoNotOptimize(sig);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_A3_CheckpointHashOnly(benchmark::State& state) {
  std::string payload(100, 'p');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_A3_CheckpointSigned)->Iterations(64);
BENCHMARK(BM_A3_CheckpointHashOnly);

// ---- A4: key granularity -------------------------------------------------------------

void BM_A4_PerRecordKeys(benchmark::State& state) {
  storage::MemEnv env;
  core::KeyStore keystore(&env, "keys.db", std::string(32, 'M'), "seed");
  (void)keystore.Open();
  int i = 0;
  for (auto _ : state) {
    Status s = keystore.CreateKey("r-" + std::to_string(i++));
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_A4_SharedKeyLookup(benchmark::State& state) {
  // The encryption-only model's "key management": one key, no per-record
  // wrap or log write. (What you give up: per-record shredding.)
  std::string shared(32, 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_A4_PerRecordKeys);
BENCHMARK(BM_A4_SharedKeyLookup);

}  // namespace
}  // namespace medvault::bench

BENCHMARK_MAIN();
