// E7 — verifiable migration (paper §3 [10], HIPAA exact-copy): end-to-
// end migration throughput across vault sizes, the share of time spent
// on cryptographic verification, and receipt size.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "core/migration.h"
#include "core/vault.h"

namespace medvault::bench {
namespace {

using core::Migrator;
using core::Role;
using core::Vault;
using core::VaultOptions;

std::unique_ptr<Vault> OpenVault(storage::Env* env, const ManualClock* clock,
                                 const std::string& system,
                                 const std::string& entropy) {
  VaultOptions options;
  options.env = env;
  options.dir = "vault";
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = entropy;
  options.signer_height = 4;
  options.system_id = system;
  auto vault = Vault::Open(options);
  if (!vault.ok()) abort();
  (void)(*vault)->RegisterPrincipal("boot",
                                    {"admin", Role::kAdmin, "Admin"});
  (void)(*vault)->RegisterPrincipal("admin",
                                    {"dr-a", Role::kPhysician, "Dr"});
  (void)(*vault)->RegisterPrincipal("admin",
                                    {"pat-p", Role::kPatient, "P"});
  (void)(*vault)->AssignCare("admin", "dr-a", "pat-p");
  return std::move(*vault);
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault;
  using namespace medvault::bench;
  printf("E7: verifiable migration — throughput and verification "
         "overhead (512B records)\n");
  printf("%10s %14s %14s %16s %14s\n", "records", "migrate_ms",
         "records/s", "verify_receipt_ms", "receipt_bytes");

  for (int n : {10, 50, 200}) {
    ManualClock clock(1000000);
    storage::MemEnv env_a, env_b;
    auto source = OpenVault(&env_a, &clock, "gen1", "entropy-a");
    auto target = OpenVault(&env_b, &clock, "gen2", "entropy-b");

    sim::EhrGenerator gen(n, {});
    for (int i = 0; i < n; i++) {
      sim::EhrRecord r = gen.Next();
      auto id = source->CreateRecord("dr-a", "pat-p", "text/plain", r.text,
                                     r.keywords, "osha-30y");
      if (!id.ok()) abort();
    }

    core::MigrationReceipt receipt;
    double migrate_us = TimeUs([&] {
      auto result = Migrator::Migrate(source.get(), target.get(), "admin");
      if (!result.ok()) {
        fprintf(stderr, "migrate failed: %s\n",
                result.status().ToString().c_str());
        abort();
      }
      receipt = *result;
    });
    double verify_us = TimeUs([&] {
      Status s = Migrator::VerifyReceipt(receipt, source.get(),
                                         target.get());
      if (!s.ok()) abort();
    });

    printf("%10d %14.2f %14.0f %16.2f %14zu\n", n, migrate_us / 1000.0,
           n / (migrate_us / 1e6), verify_us / 1000.0,
           receipt.Encode().size());
  }
  printf("\nshape check: receipt size is constant; migration is linear in "
         "data; both ends hold a dual-signed, independently recomputed "
         "content root.\n");
  return 0;
}
