#ifndef MEDVAULT_BENCH_BENCH_UTIL_H_
#define MEDVAULT_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses: store factory over all
// five models, population with the synthetic EHR workload, wall-clock
// timing.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/encrypted_db_store.h"
#include "baselines/object_store.h"
#include "baselines/record_store.h"
#include "baselines/relational_store.h"
#include "baselines/vault_store.h"
#include "baselines/worm_store.h"
#include "common/clock.h"
#include "obs/health.h"
#include "sim/workload.h"
#include "storage/instrumented_env.h"
#include "storage/mem_env.h"
#include "storage/posix_env.h"

namespace medvault::bench {

/// The five storage models compared throughout the evaluation
/// (paper §4 + MedVault).
inline const std::vector<std::string>& ModelNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "relational", "encrypted-db", "object-store", "worm", "medvault"};
  return *names;
}

/// A store bundled with the Env/clock it lives on. The MemEnv is
/// wrapped in an InstrumentedEnv feeding obs::ProcessIoStats(), so
/// every bench's physical I/O shows up in its HEALTH_<name>.json.
struct StoreInstance {
  std::unique_ptr<storage::MemEnv> env;
  std::unique_ptr<storage::InstrumentedEnv> ienv;
  std::unique_ptr<ManualClock> clock;
  std::unique_ptr<baselines::RecordStore> store;
};

inline StoreInstance MakeStore(const std::string& model) {
  StoreInstance instance;
  instance.env = std::make_unique<storage::MemEnv>();
  instance.ienv = std::make_unique<storage::InstrumentedEnv>(
      instance.env.get(), obs::ProcessIoStats());
  instance.clock = std::make_unique<ManualClock>(1000000);
  if (model == "relational") {
    instance.store = std::make_unique<baselines::RelationalStore>(
        instance.ienv.get(), "store");
  } else if (model == "encrypted-db") {
    instance.store = std::make_unique<baselines::EncryptedDbStore>(
        instance.ienv.get(), "store", std::string(32, 'D'));
  } else if (model == "object-store") {
    instance.store = std::make_unique<baselines::ObjectStore>(
        instance.ienv.get(), "store");
  } else if (model == "worm") {
    instance.store = std::make_unique<baselines::WormStore>(
        instance.ienv.get(), "store");
  } else if (model == "medvault") {
    instance.store = std::make_unique<baselines::VaultStore>(
        instance.ienv.get(), "store", instance.clock.get());
  }
  Status s = instance.store->Open();
  if (!s.ok()) {
    fprintf(stderr, "open %s failed: %s\n", model.c_str(),
            s.ToString().c_str());
    abort();
  }
  return instance;
}

/// Inserts `n` synthetic EHR notes; returns the assigned ids.
inline std::vector<std::string> Populate(baselines::RecordStore* store,
                                         int n, size_t note_bytes = 512,
                                         uint64_t seed = 42) {
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(seed, options);
  std::vector<std::string> ids;
  ids.reserve(n);
  for (int i = 0; i < n; i++) {
    sim::EhrRecord r = gen.Next();
    auto id = store->Put(r.text, r.keywords);
    if (!id.ok()) {
      fprintf(stderr, "populate failed: %s\n", id.status().ToString().c_str());
      abort();
    }
    ids.push_back(*id);
  }
  return ids;
}

/// Drop-in replacement for BENCHMARK_MAIN() that persists results: unless
/// the caller already passed --benchmark_out, the JSON reporter writes to
/// BENCH_<name>.json in the working directory, so perf trajectories can
/// be tracked across commits. Console output is unchanged. A
/// HEALTH_<name>.json observability snapshot (process-default registry
/// op histograms + accumulated env I/O) is written next to it.
inline int RunBenchmarkMain(const std::string& name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_" + name + ".json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int argc_final = static_cast<int>(args.size());
  benchmark::Initialize(&argc_final, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_final, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The vaults under test are gone by now, but their op histograms
  // accumulated in the process-wide registry and their I/O in
  // ProcessIoStats() — snapshot both for the experiment scripts.
  int64_t now_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  obs::HealthReport health = obs::CollectProcessHealth(
      now_micros, obs::MetricsRegistry::Default(), obs::ProcessIoStats());
  Status health_status = obs::WriteHealthFile(
      storage::PosixEnv::Default(), health, "HEALTH_" + name + ".json");
  if (!health_status.ok()) {
    fprintf(stderr, "health report write failed: %s\n",
            health_status.ToString().c_str());
  }
  return 0;
}

/// Wall-clock of fn() in microseconds.
inline double TimeUs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
             .count() /
         1000.0;
}

}  // namespace medvault::bench

#endif  // MEDVAULT_BENCH_BENCH_UTIL_H_
