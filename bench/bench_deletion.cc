// E6 — secure deletion (paper §2.1 Disposal / §3): cost of
// crypto-shredding vs overwrite-deletion vs WORM (impossible), plus an
// unrecoverability check: after deletion, can the insider still find
// the content anywhere on disk?
//
// Expected shape: medvault's crypto-shred is O(key-log rewrite),
// independent of record count/size; relational overwrite is O(record);
// WORM refuses; and only medvault also kills index postings.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/adversary.h"

namespace medvault::bench {
namespace {

struct DeletionResult {
  bool supported = false;
  double delete_us = 0;
  bool content_unrecoverable = false;
  bool search_clean = false;
};

DeletionResult RunDeletion(const std::string& model, size_t note_bytes) {
  DeletionResult result;
  StoreInstance si = MakeStore(model);
  // A recognizable sentinel the adversary will hunt for afterwards.
  std::string sentinel = "ZDELETIONSENTINELZ";
  std::string content = sentinel + std::string(note_bytes, 'd');
  auto id = si.store->Put(content, {"deletionterm"});
  if (!id.ok()) return result;
  // A second record that must survive.
  auto keeper = si.store->Put("keeper" + std::string(note_bytes, 'k'),
                              {"keeperterm"});
  si.clock->AdvanceYears(2);  // pass medvault's retention gate

  Status status;
  result.delete_us = TimeUs([&] { status = si.store->SecureDelete(*id); });
  result.supported = status.ok();
  if (!result.supported) return result;

  // Unrecoverability: the API refuses AND raw bytes contain no sentinel.
  bool api_gone = !si.store->Get(*id).ok();
  sim::InsiderAdversary insider(si.env.get(), 3);
  std::vector<std::string> all_files = si.store->DataFiles();
  bool raw_gone = !*insider.ScanForKeyword(all_files, sentinel);
  result.content_unrecoverable = api_gone && raw_gone;

  auto hits = si.store->Search("deletionterm");
  auto keeper_hits = si.store->Search("keeperterm");
  result.search_clean = hits.ok() && hits->empty() && keeper_hits.ok() &&
                        keeper_hits->size() == 1 &&
                        si.store->Get(*keeper).ok();
  return result;
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;
  printf("E6: secure deletion — cost and actual unrecoverability "
         "(4KB records)\n");
  printf("%-14s %10s %12s %16s %14s\n", "model", "supported", "latency_us",
         "unrecoverable", "index clean");
  for (const std::string& model : ModelNames()) {
    DeletionResult r = RunDeletion(model, 4096);
    if (!r.supported) {
      printf("%-14s %10s %12s %16s %14s\n", model.c_str(), "no", "-", "-",
             "-");
    } else {
      printf("%-14s %10s %12.1f %16s %14s\n", model.c_str(), "yes",
             r.delete_us, r.content_unrecoverable ? "yes" : "NO",
             r.search_clean ? "yes" : "NO");
    }
  }

  // Scaling: crypto-shred cost vs number of versions in the record
  // (shred is per-key: should stay flat while overwrite grows).
  printf("\ncrypto-shred latency vs record version count (medvault):\n");
  printf("%10s %14s\n", "versions", "shred_us");
  for (int versions : {1, 4, 16, 64}) {
    StoreInstance si = MakeStore("medvault");
    auto id = si.store->Put(std::string(1024, 'v'), {"kw"});
    for (int v = 1; v < versions; v++) {
      (void)si.store->Update(*id, std::string(1024, 'v'), "amend");
    }
    si.clock->AdvanceYears(2);
    double us = TimeUs([&] { (void)si.store->SecureDelete(*id); });
    printf("%10d %14.1f\n", versions, us);
  }
  printf("\nshape check: medvault deletes on un-erasable media via key "
         "destruction; WORM cannot delete at all (paper §4).\n");
  return 0;
}
