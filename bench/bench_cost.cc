// E11 — storage cost (paper §3: "the storage system must also be cost
// effective … should not be cost-prohibitive"). Space amplification:
// physical bytes on media per logical byte of record content, for a
// write-only load and for a load with corrections (where update-in-
// place models reclaim space and versioned/WORM models deliberately
// keep history — the cost of the integrity guarantee, quantified).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace medvault::bench {
namespace {

constexpr int kRecords = 200;
constexpr size_t kNoteBytes = 512;
constexpr int kCorrectionsPercent = 25;

struct CostResult {
  double write_only_amp = 0;
  double with_corrections_amp = 0;  // 0 = corrections unsupported
};

CostResult MeasureCost(const std::string& model) {
  CostResult result;
  {
    StoreInstance si = MakeStore(model);
    Populate(si.store.get(), kRecords, kNoteBytes);
    (void)si.store->DataFiles();  // flush caches
    uint64_t physical = si.env->TotalBytes();
    result.write_only_amp =
        static_cast<double>(physical) / (kRecords * kNoteBytes);
  }
  {
    StoreInstance si = MakeStore(model);
    std::vector<std::string> ids =
        Populate(si.store.get(), kRecords, kNoteBytes);
    bool supported = true;
    for (int i = 0; i < kRecords * kCorrectionsPercent / 100; i++) {
      Status s = si.store->Update(ids[i], std::string(kNoteBytes, 'c'),
                                  "amendment");
      if (!s.ok()) {
        supported = false;
        break;
      }
    }
    if (supported) {
      (void)si.store->DataFiles();
      uint64_t physical = si.env->TotalBytes();
      // Logical content from the user's perspective: latest versions.
      result.with_corrections_amp =
          static_cast<double>(physical) / (kRecords * kNoteBytes);
    }
  }
  return result;
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;
  printf("E11: space amplification (physical bytes / logical byte), %d "
         "records x %zuB, then %d%% corrected\n",
         kRecords, kNoteBytes, kCorrectionsPercent);
  printf("%-14s %14s %20s\n", "model", "write-only", "with corrections");
  for (const std::string& model : ModelNames()) {
    CostResult r = MeasureCost(model);
    if (r.with_corrections_amp > 0) {
      printf("%-14s %13.2fx %19.2fx\n", model.c_str(), r.write_only_amp,
             r.with_corrections_amp);
    } else {
      printf("%-14s %13.2fx %20s\n", model.c_str(), r.write_only_amp,
             "unsupported");
    }
  }
  printf("\nshape check: commodity hardware works for every model (no "
         "special media required); medvault's overhead is metadata + "
         "ciphertext expansion + audit/custody trails + kept history — "
         "the paper's integrity requirements, priced in bytes.\n");
  return 0;
}
