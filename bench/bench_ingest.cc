// E1 — ingest throughput across the five storage models vs record size
// ("the trade-off between security and performance", paper §4).
// Expected shape: relational fastest; encrypted-db pays cipher cost;
// medvault pays AEAD + audit + provenance + index blinding — a
// small-constant factor, not an order of magnitude.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "core/sharded_vault.h"
#include "storage/async_env.h"

namespace medvault::bench {
namespace {

void RunIngest(benchmark::State& state, const std::string& model) {
  const size_t note_bytes = static_cast<size_t>(state.range(0));
  StoreInstance si = MakeStore(model);
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(7, options);

  int64_t records = 0;
  for (auto _ : state) {
    sim::EhrRecord r = gen.Next();
    auto id = si.store->Put(r.text, r.keywords);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    records++;
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * static_cast<int64_t>(note_bytes));
}

void BM_Ingest_Relational(benchmark::State& state) {
  RunIngest(state, "relational");
}
void BM_Ingest_EncryptedDb(benchmark::State& state) {
  RunIngest(state, "encrypted-db");
}
void BM_Ingest_ObjectStore(benchmark::State& state) {
  RunIngest(state, "object-store");
}
void BM_Ingest_Worm(benchmark::State& state) { RunIngest(state, "worm"); }
void BM_Ingest_MedVault(benchmark::State& state) {
  RunIngest(state, "medvault");
}

// Batched ingest: Vault::CreateRecordsBatch coalesces the state-log
// flush, index posting appends, and audit entries for the whole batch.
// Compare records/s against BM_Ingest_MedVault (one-at-a-time) at the
// same note size.
void BM_Ingest_MedVaultBatch(benchmark::State& state) {
  const size_t note_bytes = static_cast<size_t>(state.range(0));
  const size_t batch_size = static_cast<size_t>(state.range(1));
  StoreInstance si = MakeStore("medvault");
  auto* vault =
      static_cast<baselines::VaultStore*>(si.store.get())->vault();
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(7, options);

  int64_t records = 0;
  for (auto _ : state) {
    std::vector<core::Vault::NewRecord> batch(batch_size);
    for (core::Vault::NewRecord& r : batch) {
      sim::EhrRecord e = gen.Next();
      r.patient_id = baselines::VaultStore::kPatient;
      r.content_type = "text/plain";
      r.plaintext = std::move(e.text);
      r.keywords = std::move(e.keywords);
      r.retention_policy = "short-1y";
    }
    auto ids = vault->CreateRecordsBatch(baselines::VaultStore::kClinician,
                                         batch);
    if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
    records += static_cast<int64_t>(batch_size);
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * static_cast<int64_t>(note_bytes));
}

BENCHMARK(BM_Ingest_Relational)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_EncryptedDb)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_ObjectStore)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_Worm)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_MedVault)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_MedVaultBatch)
    ->Args({1024, 16})
    ->Args({1024, 64})
    ->Args({1024, 256});

// E12 — shard scaling: the same batched ingest fanned out across 1/2/4/8
// Vault shards by the ShardedVault worker pool. Each shard has its own
// lock and log domain, so on a multi-core host records/s should rise
// with the shard count until cores run out (on a single-core box the
// curve is flat and the delta is pure fan-out overhead — see
// EXPERIMENTS.md E12 for the interpretation rules). Wall-clock
// (UseRealTime) is the honest metric: the work happens on pool threads.
void BM_Ingest_ShardedBatch(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  constexpr size_t kBatchSize = 64;
  constexpr int kPatients = 64;

  storage::MemEnv env;
  storage::InstrumentedEnv ienv(&env, obs::ProcessIoStats());
  ManualClock clock(1000000);
  core::ShardedVaultOptions options;
  options.env = &ienv;
  options.dir = "sharded";
  options.clock = &clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "bench-ingest-entropy";
  options.num_shards = shards;
  options.signer_height = 8;
  auto opened = core::ShardedVault::Open(options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  core::ShardedVault* vault = opened->get();
  (void)vault->RegisterPrincipal("boot", {"admin", core::Role::kAdmin, "A"});
  (void)vault->RegisterPrincipal("admin", {"dr", core::Role::kPhysician, "D"});
  std::vector<std::string> patients;
  for (int p = 0; p < kPatients; ++p) {
    std::string patient = "pat-" + std::to_string(p);
    (void)vault->RegisterPrincipal(
        "admin", {patient, core::Role::kPatient, patient});
    (void)vault->AssignCare("admin", "dr", patient);
    patients.push_back(std::move(patient));
  }

  sim::EhrGenerator::Options gen_options;
  gen_options.note_bytes = 1024;
  sim::EhrGenerator gen(7, gen_options);
  int64_t records = 0;
  size_t next_patient = 0;
  for (auto _ : state) {
    std::vector<core::Vault::NewRecord> batch(kBatchSize);
    for (core::Vault::NewRecord& r : batch) {
      sim::EhrRecord e = gen.Next();
      r.patient_id = patients[next_patient++ % patients.size()];
      r.content_type = "text/plain";
      r.plaintext = std::move(e.text);
      r.keywords = std::move(e.keywords);
      r.retention_policy = "short-1y";
    }
    auto ids = vault->CreateRecordsBatch("dr", batch);
    if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
    records += static_cast<int64_t>(kBatchSize);
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * 1024);
}

BENCHMARK(BM_Ingest_ShardedBatch)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// E14 — durability cost and group commit: what an fsync-per-op policy
// costs, and how the batched/windowed commit path collapses it.
// ---------------------------------------------------------------------------
//
// All durable benchmarks run on the same stack the production path
// would use:  MemEnv (simulated ~100us media sync) → AsyncEnv (the
// batched completion backend, so one commit window's barriers overlap)
// → InstrumentedEnv (fsync tallies).  Every variant reports
// `fsync_per_op` — syncs per acknowledged record — which is the number
// group commit is supposed to drive toward flat: 6000 milli-fsyncs/op
// for the per-op policy, and a curve falling toward zero as the batch
// or window grows, at IDENTICAL durability (nothing is acknowledged
// before a covering sync wave completes).

/// Simulated media sync latency. ~100us sits between an enterprise SSD
/// flush and an NVMe one; what matters is that it is large enough for
/// overlap and coalescing to be visible in wall-clock.
constexpr uint64_t kSimSyncMicros = 100;

/// MemEnv → AsyncEnv → InstrumentedEnv + an open vault, for the
/// durable-ingest variants.
class DurableVault {
 public:
  explicit DurableVault(uint64_t commit_window_micros)
      : aenv_(&env_,
              [] {
                storage::AsyncEnv::Options o;
                o.threads = 8;
                return o;
              }()),
        ienv_(&aenv_, obs::ProcessIoStats()),
        clock_(1000000) {
    env_.SetSyncDelayMicros(kSimSyncMicros);
    core::VaultOptions options;
    options.env = &ienv_;
    options.dir = "durable";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "bench-durable-entropy";
    options.signer_height = 8;
    options.commit_window_micros = commit_window_micros;
    auto opened = core::Vault::Open(options);
    if (!opened.ok()) {
      fprintf(stderr, "durable vault open failed: %s\n",
              opened.status().ToString().c_str());
      abort();
    }
    vault_ = std::move(*opened);
    (void)vault_->RegisterPrincipal("boot",
                                    {"admin", core::Role::kAdmin, "A"});
    (void)vault_->RegisterPrincipal(
        "admin", {"dr", core::Role::kPhysician, "D"});
    (void)vault_->RegisterPrincipal("admin",
                                    {"p", core::Role::kPatient, "P"});
    (void)vault_->AssignCare("admin", "dr", "p");
    (void)vault_->SyncAll();
  }

  core::Vault* vault() { return vault_.get(); }

 private:
  storage::MemEnv env_;
  storage::AsyncEnv aenv_;
  storage::InstrumentedEnv ienv_;
  ManualClock clock_;
  std::unique_ptr<core::Vault> vault_;
};

core::Vault::NewRecord MakeDurableRecord(sim::EhrGenerator* gen) {
  sim::EhrRecord e = gen->Next();
  core::Vault::NewRecord r;
  r.patient_id = "p";
  r.content_type = "text/plain";
  r.plaintext = std::move(e.text);
  r.keywords = std::move(e.keywords);
  r.retention_policy = "short-1y";
  return r;
}

/// Records/s and syncs/record over the timed section.
void ReportFsyncPerOp(benchmark::State& state, int64_t records,
                      const storage::IoStatsSnapshot& before) {
  const storage::IoStatsSnapshot after =
      obs::ProcessIoStats()->TakeSnapshot();
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * 1024);
  if (records > 0) {
    state.counters["fsync_per_op"] = benchmark::Counter(
        static_cast<double>(after.syncs - before.syncs) /
        static_cast<double>(records));
  }
}

// The equal-durability baseline: one record, one SyncAll, every time —
// the fsync-per-op policy E1's caption warns about.
void BM_Ingest_DurablePerOp(benchmark::State& state) {
  DurableVault fixture(/*commit_window_micros=*/0);
  sim::EhrGenerator::Options gen_options;
  gen_options.note_bytes = 1024;
  sim::EhrGenerator gen(7, gen_options);

  const storage::IoStatsSnapshot before =
      obs::ProcessIoStats()->TakeSnapshot();
  int64_t records = 0;
  for (auto _ : state) {
    auto id = fixture.vault()->CreateRecord(
        "dr", "p", "text/plain", MakeDurableRecord(&gen).plaintext,
        {"bench"}, "short-1y");
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    if (auto s = fixture.vault()->SyncAll(); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
    }
    records++;
  }
  ReportFsyncPerOp(state, records, before);
}

// Batched durable ingest: the whole batch is acknowledged by ONE group-
// committed sync wave. fsync_per_op must fall roughly as 1/batch.
void BM_Ingest_DurableBatch(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  DurableVault fixture(/*commit_window_micros=*/0);
  sim::EhrGenerator::Options gen_options;
  gen_options.note_bytes = 1024;
  sim::EhrGenerator gen(7, gen_options);

  const storage::IoStatsSnapshot before =
      obs::ProcessIoStats()->TakeSnapshot();
  int64_t records = 0;
  for (auto _ : state) {
    std::vector<core::Vault::NewRecord> batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(MakeDurableRecord(&gen));
    }
    auto ids = fixture.vault()->CreateRecordsBatchDurable("dr", batch);
    if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
    records += static_cast<int64_t>(batch_size);
  }
  ReportFsyncPerOp(state, records, before);
}

// Concurrent writers sharing a commit window: kWriters threads each
// durably commit a small batch per iteration; the window axis
// (`--commit_window_us`) trades acknowledgement latency for coalescing.
// Window 0 still coalesces opportunistically behind in-flight waves.
void BM_Ingest_DurableConcurrent(benchmark::State& state) {
  const uint64_t window_us = static_cast<uint64_t>(state.range(0));
  constexpr int kWriters = 4;
  constexpr size_t kBatch = 8;
  DurableVault fixture(window_us);

  // Pre-built per-writer batches (copied each iteration): generation
  // cost stays out of the contended section, and the generator is not
  // shared across threads.
  std::vector<std::vector<core::Vault::NewRecord>> templates(kWriters);
  sim::EhrGenerator::Options gen_options;
  gen_options.note_bytes = 1024;
  sim::EhrGenerator gen(7, gen_options);
  for (auto& batch : templates) {
    for (size_t i = 0; i < kBatch; ++i) {
      batch.push_back(MakeDurableRecord(&gen));
    }
  }

  const storage::IoStatsSnapshot before =
      obs::ProcessIoStats()->TakeSnapshot();
  int64_t records = 0;
  for (auto _ : state) {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&fixture, &templates, t] {
        auto ids =
            fixture.vault()->CreateRecordsBatchDurable("dr", templates[t]);
        if (!ids.ok()) {
          fprintf(stderr, "durable batch failed: %s\n",
                  ids.status().ToString().c_str());
        }
      });
    }
    for (auto& w : writers) w.join();
    records += static_cast<int64_t>(kWriters * kBatch);
  }
  ReportFsyncPerOp(state, records, before);
}

// Cross-shard durable batch: CreateRecordsBatchDurable on a 2-shard
// vault — one group-committed wave syncs BOTH shards concurrently on
// the AsyncEnv backend. Compare against BM_Ingest_ShardedDurablePerOp
// (same stack, SyncAll per record) for the headline at-equal-durability
// speedup.
void RunShardedDurable(benchmark::State& state, size_t batch_size) {
  constexpr int kPatients = 16;
  storage::MemEnv env;
  env.SetSyncDelayMicros(kSimSyncMicros);
  storage::AsyncEnv::Options async_options;
  async_options.threads = 8;
  storage::AsyncEnv aenv(&env, async_options);
  storage::InstrumentedEnv ienv(&aenv, obs::ProcessIoStats());
  ManualClock clock(1000000);
  core::ShardedVaultOptions options;
  options.env = &ienv;
  options.dir = "sharded-durable";
  options.clock = &clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "bench-sharded-durable-entropy";
  options.num_shards = 2;
  options.signer_height = 8;
  auto opened = core::ShardedVault::Open(options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  core::ShardedVault* vault = opened->get();
  (void)vault->RegisterPrincipal("boot", {"admin", core::Role::kAdmin, "A"});
  (void)vault->RegisterPrincipal("admin",
                                 {"dr", core::Role::kPhysician, "D"});
  std::vector<std::string> patients;
  for (int p = 0; p < kPatients; ++p) {
    std::string patient = "pat-" + std::to_string(p);
    (void)vault->RegisterPrincipal(
        "admin", {patient, core::Role::kPatient, patient});
    (void)vault->AssignCare("admin", "dr", patient);
    patients.push_back(std::move(patient));
  }
  (void)vault->SyncAll();

  sim::EhrGenerator::Options gen_options;
  gen_options.note_bytes = 1024;
  sim::EhrGenerator gen(7, gen_options);
  const storage::IoStatsSnapshot before =
      obs::ProcessIoStats()->TakeSnapshot();
  int64_t records = 0;
  size_t next_patient = 0;
  for (auto _ : state) {
    std::vector<core::Vault::NewRecord> batch(batch_size);
    for (core::Vault::NewRecord& r : batch) {
      sim::EhrRecord e = gen.Next();
      r.patient_id = patients[next_patient++ % patients.size()];
      r.content_type = "text/plain";
      r.plaintext = std::move(e.text);
      r.keywords = std::move(e.keywords);
      r.retention_policy = "short-1y";
    }
    if (batch_size == 1) {
      // Per-op policy on the sharded stack: create, then SyncAll.
      auto ids = vault->CreateRecordsBatch("dr", batch);
      if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
      if (auto s = vault->SyncAll(); !s.ok()) {
        state.SkipWithError(s.ToString().c_str());
      }
    } else {
      auto ids = vault->CreateRecordsBatchDurable("dr", batch);
      if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
    }
    records += static_cast<int64_t>(batch_size);
  }
  ReportFsyncPerOp(state, records, before);
}

void BM_Ingest_ShardedDurablePerOp(benchmark::State& state) {
  RunShardedDurable(state, 1);
}
void BM_Ingest_ShardedDurableBatch(benchmark::State& state) {
  RunShardedDurable(state, static_cast<size_t>(state.range(0)));
}

BENCHMARK(BM_Ingest_DurablePerOp)->UseRealTime();
BENCHMARK(BM_Ingest_DurableBatch)
    ->ArgName("batch")
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->UseRealTime();
BENCHMARK(BM_Ingest_DurableConcurrent)
    ->ArgName("window_us")
    ->Arg(0)
    ->Arg(200)
    ->Arg(1000)
    ->UseRealTime();
BENCHMARK(BM_Ingest_ShardedDurablePerOp)->UseRealTime();
BENCHMARK(BM_Ingest_ShardedDurableBatch)
    ->ArgName("batch")
    ->Arg(64)
    ->Arg(256)
    ->UseRealTime();

}  // namespace
}  // namespace medvault::bench

// Axis selectors rewritten into benchmark filters (all other flags pass
// through untouched):
//   --shards=N            the sharded-ingest curve at that shard count
//   --commit_window_us=N  the concurrent durable curve at that window
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string filter;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      filter = "--benchmark_filter=ShardedBatch/shards:" + arg.substr(9) +
               "/real_time$";
    } else if (arg.rfind("--commit_window_us=", 0) == 0) {
      filter = "--benchmark_filter=DurableConcurrent/window_us:" +
               arg.substr(19) + "/real_time$";
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!filter.empty()) args.push_back(filter.data());
  return medvault::bench::RunBenchmarkMain(
      "ingest", static_cast<int>(args.size()), args.data());
}
