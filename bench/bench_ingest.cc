// E1 — ingest throughput across the five storage models vs record size
// ("the trade-off between security and performance", paper §4).
// Expected shape: relational fastest; encrypted-db pays cipher cost;
// medvault pays AEAD + audit + provenance + index blinding — a
// small-constant factor, not an order of magnitude.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/sharded_vault.h"

namespace medvault::bench {
namespace {

void RunIngest(benchmark::State& state, const std::string& model) {
  const size_t note_bytes = static_cast<size_t>(state.range(0));
  StoreInstance si = MakeStore(model);
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(7, options);

  int64_t records = 0;
  for (auto _ : state) {
    sim::EhrRecord r = gen.Next();
    auto id = si.store->Put(r.text, r.keywords);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    records++;
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * static_cast<int64_t>(note_bytes));
}

void BM_Ingest_Relational(benchmark::State& state) {
  RunIngest(state, "relational");
}
void BM_Ingest_EncryptedDb(benchmark::State& state) {
  RunIngest(state, "encrypted-db");
}
void BM_Ingest_ObjectStore(benchmark::State& state) {
  RunIngest(state, "object-store");
}
void BM_Ingest_Worm(benchmark::State& state) { RunIngest(state, "worm"); }
void BM_Ingest_MedVault(benchmark::State& state) {
  RunIngest(state, "medvault");
}

// Batched ingest: Vault::CreateRecordsBatch coalesces the state-log
// flush, index posting appends, and audit entries for the whole batch.
// Compare records/s against BM_Ingest_MedVault (one-at-a-time) at the
// same note size.
void BM_Ingest_MedVaultBatch(benchmark::State& state) {
  const size_t note_bytes = static_cast<size_t>(state.range(0));
  const size_t batch_size = static_cast<size_t>(state.range(1));
  StoreInstance si = MakeStore("medvault");
  auto* vault =
      static_cast<baselines::VaultStore*>(si.store.get())->vault();
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(7, options);

  int64_t records = 0;
  for (auto _ : state) {
    std::vector<core::Vault::NewRecord> batch(batch_size);
    for (core::Vault::NewRecord& r : batch) {
      sim::EhrRecord e = gen.Next();
      r.patient_id = baselines::VaultStore::kPatient;
      r.content_type = "text/plain";
      r.plaintext = std::move(e.text);
      r.keywords = std::move(e.keywords);
      r.retention_policy = "short-1y";
    }
    auto ids = vault->CreateRecordsBatch(baselines::VaultStore::kClinician,
                                         batch);
    if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
    records += static_cast<int64_t>(batch_size);
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * static_cast<int64_t>(note_bytes));
}

BENCHMARK(BM_Ingest_Relational)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_EncryptedDb)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_ObjectStore)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_Worm)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_MedVault)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_MedVaultBatch)
    ->Args({1024, 16})
    ->Args({1024, 64})
    ->Args({1024, 256});

// E12 — shard scaling: the same batched ingest fanned out across 1/2/4/8
// Vault shards by the ShardedVault worker pool. Each shard has its own
// lock and log domain, so on a multi-core host records/s should rise
// with the shard count until cores run out (on a single-core box the
// curve is flat and the delta is pure fan-out overhead — see
// EXPERIMENTS.md E12 for the interpretation rules). Wall-clock
// (UseRealTime) is the honest metric: the work happens on pool threads.
void BM_Ingest_ShardedBatch(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  constexpr size_t kBatchSize = 64;
  constexpr int kPatients = 64;

  storage::MemEnv env;
  storage::InstrumentedEnv ienv(&env, obs::ProcessIoStats());
  ManualClock clock(1000000);
  core::ShardedVaultOptions options;
  options.env = &ienv;
  options.dir = "sharded";
  options.clock = &clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "bench-ingest-entropy";
  options.num_shards = shards;
  options.signer_height = 8;
  auto opened = core::ShardedVault::Open(options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  core::ShardedVault* vault = opened->get();
  (void)vault->RegisterPrincipal("boot", {"admin", core::Role::kAdmin, "A"});
  (void)vault->RegisterPrincipal("admin", {"dr", core::Role::kPhysician, "D"});
  std::vector<std::string> patients;
  for (int p = 0; p < kPatients; ++p) {
    std::string patient = "pat-" + std::to_string(p);
    (void)vault->RegisterPrincipal(
        "admin", {patient, core::Role::kPatient, patient});
    (void)vault->AssignCare("admin", "dr", patient);
    patients.push_back(std::move(patient));
  }

  sim::EhrGenerator::Options gen_options;
  gen_options.note_bytes = 1024;
  sim::EhrGenerator gen(7, gen_options);
  int64_t records = 0;
  size_t next_patient = 0;
  for (auto _ : state) {
    std::vector<core::Vault::NewRecord> batch(kBatchSize);
    for (core::Vault::NewRecord& r : batch) {
      sim::EhrRecord e = gen.Next();
      r.patient_id = patients[next_patient++ % patients.size()];
      r.content_type = "text/plain";
      r.plaintext = std::move(e.text);
      r.keywords = std::move(e.keywords);
      r.retention_policy = "short-1y";
    }
    auto ids = vault->CreateRecordsBatch("dr", batch);
    if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
    records += static_cast<int64_t>(kBatchSize);
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * 1024);
}

BENCHMARK(BM_Ingest_ShardedBatch)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace medvault::bench

// Accepts `--shards=N` as a convenience axis selector: it is rewritten
// into a --benchmark_filter that runs only the sharded-ingest curve at
// that shard count (all other flags pass through untouched).
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string filter;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      filter = "--benchmark_filter=ShardedBatch/shards:" + arg.substr(9) +
               "/real_time$";
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!filter.empty()) args.push_back(filter.data());
  return medvault::bench::RunBenchmarkMain(
      "ingest", static_cast<int>(args.size()), args.data());
}
