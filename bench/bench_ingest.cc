// E1 — ingest throughput across the five storage models vs record size
// ("the trade-off between security and performance", paper §4).
// Expected shape: relational fastest; encrypted-db pays cipher cost;
// medvault pays AEAD + audit + provenance + index blinding — a
// small-constant factor, not an order of magnitude.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace medvault::bench {
namespace {

void RunIngest(benchmark::State& state, const std::string& model) {
  const size_t note_bytes = static_cast<size_t>(state.range(0));
  StoreInstance si = MakeStore(model);
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(7, options);

  int64_t records = 0;
  for (auto _ : state) {
    sim::EhrRecord r = gen.Next();
    auto id = si.store->Put(r.text, r.keywords);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    records++;
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * static_cast<int64_t>(note_bytes));
}

void BM_Ingest_Relational(benchmark::State& state) {
  RunIngest(state, "relational");
}
void BM_Ingest_EncryptedDb(benchmark::State& state) {
  RunIngest(state, "encrypted-db");
}
void BM_Ingest_ObjectStore(benchmark::State& state) {
  RunIngest(state, "object-store");
}
void BM_Ingest_Worm(benchmark::State& state) { RunIngest(state, "worm"); }
void BM_Ingest_MedVault(benchmark::State& state) {
  RunIngest(state, "medvault");
}

// Batched ingest: Vault::CreateRecordsBatch coalesces the state-log
// flush, index posting appends, and audit entries for the whole batch.
// Compare records/s against BM_Ingest_MedVault (one-at-a-time) at the
// same note size.
void BM_Ingest_MedVaultBatch(benchmark::State& state) {
  const size_t note_bytes = static_cast<size_t>(state.range(0));
  const size_t batch_size = static_cast<size_t>(state.range(1));
  StoreInstance si = MakeStore("medvault");
  auto* vault =
      static_cast<baselines::VaultStore*>(si.store.get())->vault();
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(7, options);

  int64_t records = 0;
  for (auto _ : state) {
    std::vector<core::Vault::NewRecord> batch(batch_size);
    for (core::Vault::NewRecord& r : batch) {
      sim::EhrRecord e = gen.Next();
      r.patient_id = baselines::VaultStore::kPatient;
      r.content_type = "text/plain";
      r.plaintext = std::move(e.text);
      r.keywords = std::move(e.keywords);
      r.retention_policy = "short-1y";
    }
    auto ids = vault->CreateRecordsBatch(baselines::VaultStore::kClinician,
                                         batch);
    if (!ids.ok()) state.SkipWithError(ids.status().ToString().c_str());
    records += static_cast<int64_t>(batch_size);
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * static_cast<int64_t>(note_bytes));
}

BENCHMARK(BM_Ingest_Relational)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_EncryptedDb)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_ObjectStore)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_Worm)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_MedVault)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_MedVaultBatch)
    ->Args({1024, 16})
    ->Args({1024, 64})
    ->Args({1024, 256});

}  // namespace
}  // namespace medvault::bench

int main(int argc, char** argv) {
  return medvault::bench::RunBenchmarkMain("ingest", argc, argv);
}
