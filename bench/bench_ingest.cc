// E1 — ingest throughput across the five storage models vs record size
// ("the trade-off between security and performance", paper §4).
// Expected shape: relational fastest; encrypted-db pays cipher cost;
// medvault pays AEAD + audit + provenance + index blinding — a
// small-constant factor, not an order of magnitude.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace medvault::bench {
namespace {

void RunIngest(benchmark::State& state, const std::string& model) {
  const size_t note_bytes = static_cast<size_t>(state.range(0));
  StoreInstance si = MakeStore(model);
  sim::EhrGenerator::Options options;
  options.note_bytes = note_bytes;
  sim::EhrGenerator gen(7, options);

  int64_t records = 0;
  for (auto _ : state) {
    sim::EhrRecord r = gen.Next();
    auto id = si.store->Put(r.text, r.keywords);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    records++;
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(records * static_cast<int64_t>(note_bytes));
}

void BM_Ingest_Relational(benchmark::State& state) {
  RunIngest(state, "relational");
}
void BM_Ingest_EncryptedDb(benchmark::State& state) {
  RunIngest(state, "encrypted-db");
}
void BM_Ingest_ObjectStore(benchmark::State& state) {
  RunIngest(state, "object-store");
}
void BM_Ingest_Worm(benchmark::State& state) { RunIngest(state, "worm"); }
void BM_Ingest_MedVault(benchmark::State& state) {
  RunIngest(state, "medvault");
}

BENCHMARK(BM_Ingest_Relational)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_EncryptedDb)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_ObjectStore)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_Worm)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Ingest_MedVault)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace medvault::bench

BENCHMARK_MAIN();
