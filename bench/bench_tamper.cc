// E4 — tamper-detection rate vs attack size (paper §3: integrity "even
// in the case of malicious insiders"). For each model and each number
// of flipped bytes, an insider with raw disk access corrupts the data
// files of a populated store; we record whether the store notices
// (failed verification OR loud read errors).
//
// Expected shape: relational/encrypted-db ~0% (silent corruption);
// object/worm/medvault ~100% even for a single flipped byte.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/adversary.h"

namespace medvault::bench {
namespace {

constexpr int kTrials = 10;
constexpr int kRecords = 12;

bool DetectsTamper(const std::string& model, int flips, uint64_t seed) {
  StoreInstance si = MakeStore(model);
  std::vector<std::string> ids = Populate(si.store.get(), kRecords, 256,
                                          seed);
  sim::InsiderAdversary insider(si.env.get(), seed);
  auto applied = insider.TamperRandomBytes(si.store->DataFiles(), flips);
  if (!applied.ok() || *applied == 0) return false;

  if (!si.store->VerifyIntegrity().ok()) return true;
  for (const std::string& id : ids) {
    auto content = si.store->Get(id);
    if (!content.ok() && (content.status().IsTamperDetected() ||
                          content.status().IsCorruption())) {
      return true;
    }
  }
  return false;
}

}  // namespace
}  // namespace medvault::bench

int main() {
  using namespace medvault::bench;
  const std::vector<int> attack_sizes = {1, 4, 16, 64};

  printf("E4: tamper-detection rate (%% of %d trials) vs flipped bytes\n",
         kTrials);
  printf("%-14s", "model");
  for (int flips : attack_sizes) printf(" %5d-byte", flips);
  printf("\n");

  for (const std::string& model : ModelNames()) {
    printf("%-14s", model.c_str());
    for (int flips : attack_sizes) {
      int detected = 0;
      for (int trial = 0; trial < kTrials; trial++) {
        if (DetectsTamper(model, flips, 1000 + trial)) detected++;
      }
      printf(" %8d%%", detected * 100 / kTrials);
    }
    printf("\n");
  }
  printf("\nshape check: medvault detects 100%% at every attack size; "
         "relational/encrypted-db mostly miss (silent corruption, §4).\n");
  return 0;
}
