# Empty dependencies file for disclosure_test.
# This may be replaced when dependencies are built.
