file(REMOVE_RECURSE
  "CMakeFiles/disclosure_test.dir/disclosure_test.cc.o"
  "CMakeFiles/disclosure_test.dir/disclosure_test.cc.o.d"
  "disclosure_test"
  "disclosure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disclosure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
