file(REMOVE_RECURSE
  "CMakeFiles/hold_search_test.dir/hold_search_test.cc.o"
  "CMakeFiles/hold_search_test.dir/hold_search_test.cc.o.d"
  "hold_search_test"
  "hold_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hold_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
