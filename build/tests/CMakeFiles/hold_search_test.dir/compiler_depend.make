# Empty compiler generated dependencies file for hold_search_test.
# This may be replaced when dependencies are built.
