file(REMOVE_RECURSE
  "CMakeFiles/vault_test.dir/vault_test.cc.o"
  "CMakeFiles/vault_test.dir/vault_test.cc.o.d"
  "vault_test"
  "vault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
