file(REMOVE_RECURSE
  "CMakeFiles/reclaim_test.dir/reclaim_test.cc.o"
  "CMakeFiles/reclaim_test.dir/reclaim_test.cc.o.d"
  "reclaim_test"
  "reclaim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
