file(REMOVE_RECURSE
  "CMakeFiles/secure_index_test.dir/secure_index_test.cc.o"
  "CMakeFiles/secure_index_test.dir/secure_index_test.cc.o.d"
  "secure_index_test"
  "secure_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
