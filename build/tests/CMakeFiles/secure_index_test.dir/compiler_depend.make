# Empty compiler generated dependencies file for secure_index_test.
# This may be replaced when dependencies are built.
