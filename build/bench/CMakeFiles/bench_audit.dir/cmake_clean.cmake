file(REMOVE_RECURSE
  "CMakeFiles/bench_audit.dir/bench_audit.cc.o"
  "CMakeFiles/bench_audit.dir/bench_audit.cc.o.d"
  "bench_audit"
  "bench_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
