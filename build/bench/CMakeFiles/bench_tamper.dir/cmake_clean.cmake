file(REMOVE_RECURSE
  "CMakeFiles/bench_tamper.dir/bench_tamper.cc.o"
  "CMakeFiles/bench_tamper.dir/bench_tamper.cc.o.d"
  "bench_tamper"
  "bench_tamper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tamper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
