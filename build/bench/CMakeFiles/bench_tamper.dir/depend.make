# Empty dependencies file for bench_tamper.
# This may be replaced when dependencies are built.
