file(REMOVE_RECURSE
  "CMakeFiles/bench_deletion.dir/bench_deletion.cc.o"
  "CMakeFiles/bench_deletion.dir/bench_deletion.cc.o.d"
  "bench_deletion"
  "bench_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
