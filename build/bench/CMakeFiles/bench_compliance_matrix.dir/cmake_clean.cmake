file(REMOVE_RECURSE
  "CMakeFiles/bench_compliance_matrix.dir/bench_compliance_matrix.cc.o"
  "CMakeFiles/bench_compliance_matrix.dir/bench_compliance_matrix.cc.o.d"
  "bench_compliance_matrix"
  "bench_compliance_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compliance_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
