# Empty dependencies file for bench_compliance_matrix.
# This may be replaced when dependencies are built.
