file(REMOVE_RECURSE
  "CMakeFiles/bench_lifecycle.dir/bench_lifecycle.cc.o"
  "CMakeFiles/bench_lifecycle.dir/bench_lifecycle.cc.o.d"
  "bench_lifecycle"
  "bench_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
