file(REMOVE_RECURSE
  "CMakeFiles/medvault_cli.dir/medvault_cli.cpp.o"
  "CMakeFiles/medvault_cli.dir/medvault_cli.cpp.o.d"
  "medvault_cli"
  "medvault_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medvault_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
