# Empty dependencies file for medvault_cli.
# This may be replaced when dependencies are built.
