file(REMOVE_RECURSE
  "CMakeFiles/hospital_workflow.dir/hospital_workflow.cpp.o"
  "CMakeFiles/hospital_workflow.dir/hospital_workflow.cpp.o.d"
  "hospital_workflow"
  "hospital_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
