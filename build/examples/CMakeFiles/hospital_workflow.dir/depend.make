# Empty dependencies file for hospital_workflow.
# This may be replaced when dependencies are built.
