# Empty dependencies file for medvault.
# This may be replaced when dependencies are built.
