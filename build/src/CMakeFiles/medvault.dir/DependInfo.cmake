
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/encrypted_db_store.cc" "src/CMakeFiles/medvault.dir/baselines/encrypted_db_store.cc.o" "gcc" "src/CMakeFiles/medvault.dir/baselines/encrypted_db_store.cc.o.d"
  "/root/repo/src/baselines/object_store.cc" "src/CMakeFiles/medvault.dir/baselines/object_store.cc.o" "gcc" "src/CMakeFiles/medvault.dir/baselines/object_store.cc.o.d"
  "/root/repo/src/baselines/record_store.cc" "src/CMakeFiles/medvault.dir/baselines/record_store.cc.o" "gcc" "src/CMakeFiles/medvault.dir/baselines/record_store.cc.o.d"
  "/root/repo/src/baselines/relational_store.cc" "src/CMakeFiles/medvault.dir/baselines/relational_store.cc.o" "gcc" "src/CMakeFiles/medvault.dir/baselines/relational_store.cc.o.d"
  "/root/repo/src/baselines/vault_store.cc" "src/CMakeFiles/medvault.dir/baselines/vault_store.cc.o" "gcc" "src/CMakeFiles/medvault.dir/baselines/vault_store.cc.o.d"
  "/root/repo/src/baselines/worm_store.cc" "src/CMakeFiles/medvault.dir/baselines/worm_store.cc.o" "gcc" "src/CMakeFiles/medvault.dir/baselines/worm_store.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/medvault.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/medvault.dir/common/clock.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/medvault.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/medvault.dir/common/coding.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/medvault.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/medvault.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/hex.cc" "src/CMakeFiles/medvault.dir/common/hex.cc.o" "gcc" "src/CMakeFiles/medvault.dir/common/hex.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/medvault.dir/common/status.cc.o" "gcc" "src/CMakeFiles/medvault.dir/common/status.cc.o.d"
  "/root/repo/src/core/access.cc" "src/CMakeFiles/medvault.dir/core/access.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/access.cc.o.d"
  "/root/repo/src/core/audit.cc" "src/CMakeFiles/medvault.dir/core/audit.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/audit.cc.o.d"
  "/root/repo/src/core/backup.cc" "src/CMakeFiles/medvault.dir/core/backup.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/backup.cc.o.d"
  "/root/repo/src/core/keystore.cc" "src/CMakeFiles/medvault.dir/core/keystore.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/keystore.cc.o.d"
  "/root/repo/src/core/migration.cc" "src/CMakeFiles/medvault.dir/core/migration.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/migration.cc.o.d"
  "/root/repo/src/core/provenance.cc" "src/CMakeFiles/medvault.dir/core/provenance.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/provenance.cc.o.d"
  "/root/repo/src/core/record.cc" "src/CMakeFiles/medvault.dir/core/record.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/record.cc.o.d"
  "/root/repo/src/core/retention.cc" "src/CMakeFiles/medvault.dir/core/retention.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/retention.cc.o.d"
  "/root/repo/src/core/secure_index.cc" "src/CMakeFiles/medvault.dir/core/secure_index.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/secure_index.cc.o.d"
  "/root/repo/src/core/vault.cc" "src/CMakeFiles/medvault.dir/core/vault.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/vault.cc.o.d"
  "/root/repo/src/core/version_store.cc" "src/CMakeFiles/medvault.dir/core/version_store.cc.o" "gcc" "src/CMakeFiles/medvault.dir/core/version_store.cc.o.d"
  "/root/repo/src/crypto/aead.cc" "src/CMakeFiles/medvault.dir/crypto/aead.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/aead.cc.o.d"
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/medvault.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/ctr.cc" "src/CMakeFiles/medvault.dir/crypto/ctr.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/ctr.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/CMakeFiles/medvault.dir/crypto/drbg.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/drbg.cc.o.d"
  "/root/repo/src/crypto/hkdf.cc" "src/CMakeFiles/medvault.dir/crypto/hkdf.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/hkdf.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/medvault.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/merkle.cc" "src/CMakeFiles/medvault.dir/crypto/merkle.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/merkle.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/medvault.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/wots.cc" "src/CMakeFiles/medvault.dir/crypto/wots.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/wots.cc.o.d"
  "/root/repo/src/crypto/xmss.cc" "src/CMakeFiles/medvault.dir/crypto/xmss.cc.o" "gcc" "src/CMakeFiles/medvault.dir/crypto/xmss.cc.o.d"
  "/root/repo/src/sim/adversary.cc" "src/CMakeFiles/medvault.dir/sim/adversary.cc.o" "gcc" "src/CMakeFiles/medvault.dir/sim/adversary.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/CMakeFiles/medvault.dir/sim/workload.cc.o" "gcc" "src/CMakeFiles/medvault.dir/sim/workload.cc.o.d"
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/medvault.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/CMakeFiles/medvault.dir/storage/env.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/env.cc.o.d"
  "/root/repo/src/storage/fault_env.cc" "src/CMakeFiles/medvault.dir/storage/fault_env.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/fault_env.cc.o.d"
  "/root/repo/src/storage/log_reader.cc" "src/CMakeFiles/medvault.dir/storage/log_reader.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/log_reader.cc.o.d"
  "/root/repo/src/storage/log_writer.cc" "src/CMakeFiles/medvault.dir/storage/log_writer.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/log_writer.cc.o.d"
  "/root/repo/src/storage/mem_env.cc" "src/CMakeFiles/medvault.dir/storage/mem_env.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/mem_env.cc.o.d"
  "/root/repo/src/storage/posix_env.cc" "src/CMakeFiles/medvault.dir/storage/posix_env.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/posix_env.cc.o.d"
  "/root/repo/src/storage/segment.cc" "src/CMakeFiles/medvault.dir/storage/segment.cc.o" "gcc" "src/CMakeFiles/medvault.dir/storage/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
