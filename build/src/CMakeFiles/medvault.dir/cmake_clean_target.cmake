file(REMOVE_RECURSE
  "libmedvault.a"
)
