// health_dump — print an obs::HealthReport JSON snapshot for a vault.
//
//   health_dump --demo [dir]
//       Builds a throwaway PosixEnv vault (under `dir`, default
//       ./health-demo-vault), runs a few representative operations so
//       every section of the report is populated, prints the report to
//       stdout, and removes nothing (rerun-safe: uses a fresh subdir
//       per invocation only if the caller passes one). Uses a
//       ManualClock so `generated_at` and retention math are
//       deterministic — this mode doubles as the ctest-level smoke for
//       the tools-invocable health path.
//
//   health_dump <vault-dir>
//       Opens an existing on-disk vault read-only-ish (Open replays the
//       state log but performs no workload) and prints its health. The
//       master key / entropy come from MEDVAULT_MASTER_KEY /
//       MEDVAULT_ENTROPY, same convention as medvault_cli (the key is
//       padded/truncated to 32 bytes; demo-grade custody only).
//
// All vault I/O in both modes goes through an InstrumentedEnv, so the
// env_io section reflects the physical reads/writes the dump itself
// (and, in demo mode, the workload) performed.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/record_cache.h"
#include "core/vault.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "storage/instrumented_env.h"
#include "storage/posix_env.h"

namespace {

using medvault::Status;
using medvault::core::Role;
using medvault::core::Vault;
using medvault::core::VaultOptions;

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

int Fail(const Status& status) {
  fprintf(stderr, "health_dump: %s\n", status.ToString().c_str());
  return 1;
}

int DumpVault(Vault* vault, const medvault::storage::IoStats* io) {
  medvault::obs::HealthReport report =
      medvault::obs::CollectHealth(*vault, io);
  printf("%s\n", report.Dump().c_str());
  return 0;
}

// Demo mode: a self-contained vault with enough workload that the ops,
// cache, env_io, shards, and last_scrub sections are all non-trivial.
// The demo dir is wiped first (vault files plus the segments/ subdir)
// so reruns start from the same state instead of replaying and growing
// an old vault.
void WipeFlatDir(medvault::storage::Env* env, const std::string& dir) {
  std::vector<std::string> children;
  if (!env->GetChildren(dir, &children).ok()) return;
  for (const std::string& child : children) {
    std::vector<std::string> nested;
    if (env->GetChildren(dir + "/" + child, &nested).ok() && !nested.empty()) {
      for (const std::string& inner : nested) {
        (void)env->RemoveFile(dir + "/" + child + "/" + inner);
      }
    }
    (void)env->RemoveFile(dir + "/" + child);
  }
}

int RunDemo(const std::string& dir) {
  medvault::obs::MetricsRegistry registry;
  medvault::storage::IoStats io;
  medvault::storage::InstrumentedEnv env(
      medvault::storage::PosixEnv::Default(), &io);
  medvault::ManualClock clock(1700000000000000);  // fixed epoch, micros
  medvault::core::RecordCache cache(1u << 20);
  WipeFlatDir(&env, dir);

  VaultOptions options;
  options.env = &env;
  options.dir = dir;
  options.clock = &clock;
  options.master_key = std::string(32, 'K');
  options.entropy = "health-dump-demo-entropy";
  options.signer_height = 8;  // 256 leaves: safe to rerun in place
  options.cache = &cache;
  options.metrics = &registry;

  auto opened = Vault::Open(options);
  if (!opened.ok()) return Fail(opened.status());
  Vault* vault = opened->get();

  (void)vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "Admin"});
  (void)vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "Dr"});
  (void)vault->RegisterPrincipal("admin", {"pat", Role::kPatient, "Pat"});
  (void)vault->AssignCare("admin", "dr", "pat");

  auto id = vault->CreateRecord("dr", "pat", "text/plain",
                                "demo note: routine checkup, no findings",
                                {"checkup"}, "hipaa-6y");
  if (!id.ok()) return Fail(id.status());
  // Two reads: the first misses the cache and populates it, the second
  // hits — both paths show up in the cache stats.
  if (auto r = vault->ReadRecord("dr", *id); !r.ok()) return Fail(r.status());
  if (auto r = vault->ReadRecord("dr", *id); !r.ok()) return Fail(r.status());
  if (auto s = vault->SearchKeyword("dr", "checkup"); !s.ok()) {
    return Fail(s.status());
  }
  if (Status s = vault->VerifyAudit(); !s.ok()) return Fail(s);
  if (Status s = vault->SyncAll(); !s.ok()) return Fail(s);
  // Media scrub so the report carries a last_scrub section (and the
  // vault.scrub.* counters); its per-file findings go to stderr, the
  // JSON report to stdout.
  auto scrub = vault->Scrub();
  if (!scrub.ok()) return Fail(scrub.status());
  fprintf(stderr, "%s\n", scrub->Summary().c_str());

  return DumpVault(vault, &io);
}

int OpenExisting(const std::string& dir) {
  medvault::storage::IoStats io;
  medvault::storage::InstrumentedEnv env(
      medvault::storage::PosixEnv::Default(), &io);
  medvault::SystemClock clock;
  medvault::obs::MetricsRegistry registry;

  std::string master = EnvOr("MEDVAULT_MASTER_KEY", "demo-master-key");
  master.resize(32, '#');

  VaultOptions options;
  options.env = &env;
  options.dir = dir;
  options.clock = &clock;
  options.master_key = master;
  options.entropy = EnvOr("MEDVAULT_ENTROPY", "demo-entropy:" + dir);
  options.signer_height = 8;

  auto opened = Vault::Open(options);
  if (!opened.ok()) return Fail(opened.status());
  return DumpVault(opened->get(), &io);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--demo") {
    return RunDemo(argc >= 3 ? argv[2] : "health-demo-vault");
  }
  if (argc == 2) return OpenExisting(argv[1]);
  fprintf(stderr, "usage: health_dump --demo [dir] | health_dump <vault-dir>\n");
  return 2;
}
