#!/usr/bin/env bash
# Line-coverage gate: builds the tree with MEDVAULT_COVERAGE=ON, runs
# the full ctest battery, aggregates gcov line data for everything under
# src/, and fails if coverage drops below the floor. The floor is the
# seed line measured on this harness — raise it as coverage grows, never
# lower it to make a regression pass.
#
# Usage: tools/coverage.sh [build-dir]
#   MEDVAULT_COVERAGE_FLOOR=<pct> overrides the floor (e.g. for a local
#   quick check on a subset build).
#
# Implementation note: uses `gcov --json-format --stdout` directly (no
# gcovr/lcov dependency) and merges the per-test-binary counters in
# python3 — a line is covered if ANY test executed it.
set -euo pipefail

cd "$(dirname "$0")/.."
dir="${1:-build-cov}"
# Measured 92.5% on the full suite when this gate landed; 90 leaves
# headroom for counter noise without letting real regressions through.
floor="${MEDVAULT_COVERAGE_FLOOR:-90.0}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== coverage build (${dir}) ==="
cmake -B "$dir" -S . -DMEDVAULT_COVERAGE=ON >/dev/null
cmake --build "$dir" -j "$jobs" >/dev/null

# Stale counters from a previous run would inflate the number.
find "$dir" -name '*.gcda' -delete

echo "=== running tests ==="
ctest --test-dir "$dir" --output-on-failure -j "$jobs"

echo "=== aggregating gcov line data ==="
dump="$dir/coverage-gcov.jsonl"
: > "$dump"
while IFS= read -r -d '' gcda; do
  gcov --json-format --stdout "$gcda" >> "$dump" 2>/dev/null || true
done < <(find "$dir" -name '*.gcda' -print0)

python3 - "$dump" "$floor" <<'PYEOF'
import json
import os
import sys

dump_path, floor = sys.argv[1], float(sys.argv[2])
repo = os.getcwd()

# (file, line) -> executed?  Merged across every test binary: the suite
# covers a line if any test ran it.
lines = {}
with open(dump_path, "r", encoding="utf-8") as f:
    for raw in f:
        raw = raw.strip()
        if not raw:
            continue
        doc = json.loads(raw)
        for entry in doc.get("files", []):
            path = os.path.normpath(os.path.join(repo, entry["file"]))
            rel = os.path.relpath(path, repo)
            # Gate on the library proper, not tests/benches/vendored code.
            if not rel.startswith("src" + os.sep):
                continue
            for line in entry.get("lines", []):
                key = (rel, line["line_number"])
                lines[key] = lines.get(key, False) or line["count"] > 0

total = len(lines)
covered = sum(1 for hit in lines.values() if hit)
if total == 0:
    print("no coverage data for src/ — did the instrumented tests run?")
    sys.exit(2)

pct = 100.0 * covered / total
per_file = {}
for (rel, _), hit in lines.items():
    t, c = per_file.get(rel, (0, 0))
    per_file[rel] = (t + 1, c + (1 if hit else 0))
worst = sorted(per_file.items(), key=lambda kv: kv[1][1] / kv[1][0])[:5]
print(f"src/ line coverage: {covered}/{total} = {pct:.1f}% "
      f"(floor {floor:.1f}%)")
print("least-covered files:")
for rel, (t, c) in worst:
    print(f"  {100.0 * c / t:5.1f}%  {rel}")
if pct < floor:
    print(f"FAIL: coverage {pct:.1f}% is below the floor {floor:.1f}%")
    sys.exit(1)
print("coverage gate passed")
PYEOF
