#!/usr/bin/env bash
# Smoke suite: the tier-1 test battery in the default configuration,
# then the crash/fault matrix (`ctest -L crash`) rebuilt under
# AddressSanitizer and UndefinedBehaviorSanitizer so the recovery paths
# run instrumented. Usage: tools/smoke.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1" sanitize="$2" label="$3"
  local flags=()
  [ -n "$sanitize" ] && flags+=("-DMEDVAULT_SANITIZE=${sanitize}")
  echo "=== ${dir} (sanitize='${sanitize:-none}', tests: ${label:-all}) ==="
  cmake -B "$dir" -S . "${flags[@]}" >/dev/null
  cmake --build "$dir" -j "$jobs" >/dev/null
  if [ -n "$label" ]; then
    ctest --test-dir "$dir" -L "$label" --output-on-failure -j "$jobs"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

run_config "$prefix" "" ""
run_config "${prefix}-asan" address crash
run_config "${prefix}-ubsan" undefined crash

echo "smoke suite passed"
