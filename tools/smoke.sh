#!/usr/bin/env bash
# Smoke suite: the tier-1 test battery in the default configuration,
# then the crash/fault matrix, the cross-shard stress battery, the
# observability battery, the media-fault scrub/repair battery, the
# async-env/group-commit batteries, the HTTP server battery, the
# verified-replication battery, the audit-transparency battery, and the
# patient-driven-sharing consent battery (`ctest -L
# "crash|stress|obs|scrub|env|commit|serve|repl|transparency|consent"`)
# rebuilt under AddressSanitizer and UndefinedBehaviorSanitizer, then the
# stress + obs + commit + serve + repl + transparency + consent
# batteries under
# ThreadSanitizer — the shared cache / ingest-pool races, the lock-free
# metrics hot path, the group-commit leader/follower handoff, the
# acceptor/worker socket hand-off, the cut-under-exclusive-lock vs
# apply-pool interplay, and the proof-serving-vs-concurrent-append
# interleaving only surface instrumented.
# A final configuration forces -DMEDVAULT_IO_URING=OFF and re-runs the
# env + commit batteries so the thread-pool sync fallback stays proven
# even on hosts where liburing is found. The bench_compare fixture
# self-test runs once up front (pure python, no build needed).
# Usage: tools/smoke.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 4)"

python3 tools/bench_compare.py --self-test

run_config() {
  local dir="$1" sanitize="$2" label="$3"
  shift 3
  local flags=("$@")
  [ -n "$sanitize" ] && flags+=("-DMEDVAULT_SANITIZE=${sanitize}")
  echo "=== ${dir} (sanitize='${sanitize:-none}', tests: ${label:-all}) ==="
  cmake -B "$dir" -S . "${flags[@]}" >/dev/null
  cmake --build "$dir" -j "$jobs" >/dev/null
  if [ -n "$label" ]; then
    ctest --test-dir "$dir" -L "$label" --output-on-failure -j "$jobs"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

run_config "$prefix" "" ""
run_config "${prefix}-asan" address "crash|stress|obs|scrub|env|commit|serve|repl|transparency|consent"
run_config "${prefix}-ubsan" undefined "crash|stress|obs|scrub|env|commit|serve|repl|transparency|consent"
run_config "${prefix}-tsan" thread "stress|obs|commit|serve|repl|transparency|consent"
run_config "${prefix}-nouring" "" "env|commit" "-DMEDVAULT_IO_URING=OFF"

echo "smoke suite passed"
