#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against the committed baselines.

Usage:
    tools/bench_compare.py [--current DIR] [--baseline DIR] [--threshold PCT]

Each benchmark binary (bench_ingest, bench_query, ...) writes
BENCH_<name>.json into its working directory via RunBenchmarkMain. This
tool pairs those files with the same-named files under bench/baselines/,
matches individual benchmarks by full name (e.g.
"BM_Ingest_MedVaultBatch/1024/64"), and compares throughput
(items_per_second when present, otherwise inverse real_time).

A benchmark is flagged as a REGRESSION when it is more than --threshold
percent slower than its baseline (default 15%, per EXPERIMENTS.md).
Speed-ups and new benchmarks are reported informationally. Exit status
is 1 if any regression was found, 0 otherwise — suitable for CI.

Baselines are machine-specific: they were recorded on the development
container (single core, debug-adjacent flags). Regenerate them with

    (cd build/bench && ./bench_ingest --benchmark_min_time=0.05 \
        --benchmark_out=../../bench/baselines/BENCH_ingest.json \
        --benchmark_out_format=json)

whenever the hardware or the expected performance profile changes.
"""

import argparse
import glob
import json
import os
import sys


def load_results(path):
    """Returns {benchmark name -> throughput (higher is better)}."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    results = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if not name:
            continue
        if "items_per_second" in bench:
            results[name] = float(bench["items_per_second"])
        elif bench.get("real_time"):
            results[name] = 1.0 / float(bench["real_time"])
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default=".",
                        help="directory holding fresh BENCH_*.json "
                             "(default: cwd)")
    parser.add_argument("--baseline", default=None,
                        help="directory holding baseline BENCH_*.json "
                             "(default: <repo>/bench/baselines)")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent (default 15)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baseline or os.path.join(repo_root, "bench",
                                                 "baselines")

    current_files = sorted(glob.glob(os.path.join(args.current,
                                                  "BENCH_*.json")))
    if not current_files:
        print(f"no BENCH_*.json found in {args.current!r}; run the bench "
              "binaries first", file=sys.stderr)
        return 2

    regressions = 0
    compared = 0
    for current_path in current_files:
        fname = os.path.basename(current_path)
        baseline_path = os.path.join(baseline_dir, fname)
        if not os.path.exists(baseline_path):
            print(f"[skip] {fname}: no committed baseline")
            continue
        current = load_results(current_path)
        baseline = load_results(baseline_path)
        print(f"== {fname} (threshold {args.threshold:.0f}%) ==")
        for name in sorted(baseline):
            if name not in current:
                print(f"  [gone] {name}: in baseline but not in current run")
                continue
            compared += 1
            base = baseline[name]
            cur = current[name]
            if base <= 0:
                continue
            delta_pct = (cur - base) / base * 100.0
            if delta_pct < -args.threshold:
                regressions += 1
                print(f"  [REGRESSION] {name}: {delta_pct:+.1f}% "
                      f"({base:.3g} -> {cur:.3g} items/s)")
            else:
                tag = "faster" if delta_pct > args.threshold else "ok"
                print(f"  [{tag}] {name}: {delta_pct:+.1f}%")
        for name in sorted(set(current) - set(baseline)):
            print(f"  [new] {name}: no baseline yet")

    print(f"\ncompared {compared} benchmarks, "
          f"{regressions} regression(s) beyond {args.threshold:.0f}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
