#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against the committed baselines.

Usage:
    tools/bench_compare.py [--current DIR] [--baseline DIR] [--threshold PCT]
    tools/bench_compare.py --self-test

Each benchmark binary (bench_ingest, bench_query, ...) writes
BENCH_<name>.json into its working directory via RunBenchmarkMain. This
tool pairs those files with the same-named files under bench/baselines/,
matches individual benchmarks by full name (e.g.
"BM_Ingest_MedVaultBatch/1024/64"), and compares throughput
(items_per_second when present, otherwise inverse real_time normalized
to seconds via the benchmark's time_unit — real_time alone is a raw
number in ns/us/ms/s, so 1/real_time across differing units would be
off by the unit ratio, up to 1000x per step).

A benchmark is flagged as a REGRESSION when it is more than --threshold
percent slower than its baseline (default 15%, per EXPERIMENTS.md).
Speed-ups and new benchmarks are reported informationally. Exit status
is 1 if any regression was found, 0 otherwise — suitable for CI.

`--self-test` exercises the comparison logic against synthetic fixtures
in a temporary directory (in particular the cross-unit case that the
naive 1/real_time fallback gets wrong) and exits 0 iff all cases pass.

Baselines are machine-specific: they were recorded on the development
container (single core, debug-adjacent flags). Regenerate them with

    (cd build/bench && ./bench_ingest --benchmark_min_time=0.05 \
        --benchmark_out=../../bench/baselines/BENCH_ingest.json \
        --benchmark_out_format=json)

whenever the hardware or the expected performance profile changes.
"""

import argparse
import glob
import json
import os
import sys
import tempfile

# Google Benchmark time_unit values -> seconds per unit. real_time is
# reported in this unit, so inverse-time throughput must be computed as
# 1 / (real_time * unit_seconds) to be comparable across files that
# chose different units.
TIME_UNIT_SECONDS = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
}


def load_results(path):
    """Returns {benchmark name -> throughput (higher is better)}.

    Throughput is items_per_second when the benchmark reported it,
    otherwise operations per second (1 / real_time-in-seconds). Both are
    in per-second units, so entries are comparable across files even
    when their time_unit differs.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    results = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if not name:
            continue
        if "items_per_second" in bench:
            results[name] = float(bench["items_per_second"])
        elif bench.get("real_time"):
            unit = bench.get("time_unit", "ns")
            if unit not in TIME_UNIT_SECONDS:
                print(f"[warn] {os.path.basename(path)}: {name}: unknown "
                      f"time_unit {unit!r}, skipping", file=sys.stderr)
                continue
            seconds = float(bench["real_time"]) * TIME_UNIT_SECONDS[unit]
            if seconds > 0:
                results[name] = 1.0 / seconds
    return results


def compare_dirs(current_dir, baseline_dir, threshold, out=sys.stdout):
    """Compares every BENCH_*.json pair; returns (compared, regressions).

    Returns (None, None) when current_dir holds no BENCH_*.json at all.
    """
    current_files = sorted(glob.glob(os.path.join(current_dir,
                                                  "BENCH_*.json")))
    if not current_files:
        return None, None

    regressions = 0
    compared = 0
    for current_path in current_files:
        fname = os.path.basename(current_path)
        baseline_path = os.path.join(baseline_dir, fname)
        if not os.path.exists(baseline_path):
            print(f"[skip] {fname}: no committed baseline", file=out)
            continue
        current = load_results(current_path)
        baseline = load_results(baseline_path)
        print(f"== {fname} (threshold {threshold:.0f}%) ==", file=out)
        for name in sorted(baseline):
            if name not in current:
                print(f"  [gone] {name}: in baseline but not in current run",
                      file=out)
                continue
            base = baseline[name]
            cur = current[name]
            if base <= 0:
                continue
            compared += 1
            delta_pct = (cur - base) / base * 100.0
            if delta_pct < -threshold:
                regressions += 1
                print(f"  [REGRESSION] {name}: {delta_pct:+.1f}% "
                      f"({base:.3g} -> {cur:.3g} items/s)", file=out)
            else:
                tag = "faster" if delta_pct > threshold else "ok"
                print(f"  [{tag}] {name}: {delta_pct:+.1f}%", file=out)
        for name in sorted(set(current) - set(baseline)):
            print(f"  [new] {name}: no baseline yet", file=out)

    print(f"\ncompared {compared} benchmarks, "
          f"{regressions} regression(s) beyond {threshold:.0f}%", file=out)
    return compared, regressions


def _write_fixture(dirname, fname, entries):
    doc = {"benchmarks": entries}
    with open(os.path.join(dirname, fname), "w", encoding="utf-8") as f:
        json.dump(doc, f)


def self_test():
    """Synthetic-fixture checks of the comparison logic. Returns 0/1."""
    failures = []

    def check(label, condition):
        status = "ok" if condition else "FAIL"
        print(f"[self-test] {label}: {status}")
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory(prefix="bench_compare_selftest") as tmp:
        case_index = [0]

        def fresh_dirs():
            """Per-case directory pair so fixtures cannot leak across cases."""
            case_index[0] += 1
            baseline = os.path.join(tmp, f"case{case_index[0]}", "baseline")
            current = os.path.join(tmp, f"case{case_index[0]}", "current")
            os.makedirs(baseline)
            os.makedirs(current)
            return baseline, current

        devnull = open(os.devnull, "w", encoding="utf-8")

        # Case 1 — unit mismatch, same real speed. Baseline recorded in
        # ns (200000 ns/op), current run in us (200 us/op). The naive
        # 1/real_time comparison sees 200000 -> 200 and reports a 1000x
        # "speedup" (or, reversed, a catastrophic regression); the
        # normalized comparison must say: no change.
        baseline_dir, current_dir = fresh_dirs()
        _write_fixture(baseline_dir, "BENCH_unit.json", [
            {"name": "BM_X", "run_type": "iteration",
             "real_time": 200000.0, "time_unit": "ns"},
        ])
        _write_fixture(current_dir, "BENCH_unit.json", [
            {"name": "BM_X", "run_type": "iteration",
             "real_time": 200.0, "time_unit": "us"},
        ])
        compared, regressions = compare_dirs(current_dir, baseline_dir,
                                             15.0, out=devnull)
        check("unit mismatch, same speed -> no regression",
              compared == 1 and regressions == 0)

        # Case 2 — true 2x slowdown expressed across units: 1 ms/op
        # baseline vs 2000 us/op current. Must be flagged.
        baseline_dir, current_dir = fresh_dirs()
        _write_fixture(baseline_dir, "BENCH_unit.json", [
            {"name": "BM_X", "run_type": "iteration",
             "real_time": 1.0, "time_unit": "ms"},
        ])
        _write_fixture(current_dir, "BENCH_unit.json", [
            {"name": "BM_X", "run_type": "iteration",
             "real_time": 2000.0, "time_unit": "us"},
        ])
        compared, regressions = compare_dirs(current_dir, baseline_dir,
                                             15.0, out=devnull)
        check("true 2x slowdown across units -> regression",
              compared == 1 and regressions == 1)

        # Case 3 — items_per_second wins over real_time when present,
        # and a within-threshold wobble is not flagged.
        baseline_dir, current_dir = fresh_dirs()
        _write_fixture(baseline_dir, "BENCH_items.json", [
            {"name": "BM_Y", "run_type": "iteration",
             "items_per_second": 1000.0, "real_time": 999999.0,
             "time_unit": "ns"},
        ])
        _write_fixture(current_dir, "BENCH_items.json", [
            {"name": "BM_Y", "run_type": "iteration",
             "items_per_second": 950.0, "real_time": 1.0,
             "time_unit": "ns"},
        ])
        compared, regressions = compare_dirs(current_dir, baseline_dir,
                                             15.0, out=devnull)
        check("items_per_second preferred, -5% within threshold",
              compared == 1 and regressions == 0)

        # Case 4 — a genuine 50% items/s drop is flagged (same baseline
        # as case 3; only the current run is replaced).
        _write_fixture(current_dir, "BENCH_items.json", [
            {"name": "BM_Y", "run_type": "iteration",
             "items_per_second": 500.0},
        ])
        compared, regressions = compare_dirs(current_dir, baseline_dir,
                                             15.0, out=devnull)
        check("50% items/s drop -> regression", regressions == 1)

        # Case 5 — aggregate rows (mean/median/stddev) are ignored, and
        # missing time_unit defaults to ns (Google Benchmark's default).
        baseline_dir, current_dir = fresh_dirs()
        _write_fixture(baseline_dir, "BENCH_agg.json", [
            {"name": "BM_Z", "run_type": "iteration", "real_time": 100.0},
            {"name": "BM_Z_mean", "run_type": "aggregate",
             "real_time": 1.0, "time_unit": "ns"},
        ])
        _write_fixture(current_dir, "BENCH_agg.json", [
            {"name": "BM_Z", "run_type": "iteration", "real_time": 100.0},
            {"name": "BM_Z_mean", "run_type": "aggregate",
             "real_time": 500.0, "time_unit": "ns"},
        ])
        compared, regressions = compare_dirs(current_dir, baseline_dir,
                                             15.0, out=devnull)
        check("aggregates ignored, default-ns equal times -> no regression",
              compared == 1 and regressions == 0)

        devnull.close()

    print(f"[self-test] {5 - len(failures)}/5 passed")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default=".",
                        help="directory holding fresh BENCH_*.json "
                             "(default: cwd)")
    parser.add_argument("--baseline", default=None,
                        help="directory holding baseline BENCH_*.json "
                             "(default: <repo>/bench/baselines)")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent (default 15)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baseline or os.path.join(repo_root, "bench",
                                                 "baselines")

    compared, regressions = compare_dirs(args.current, baseline_dir,
                                         args.threshold)
    if compared is None:
        print(f"no BENCH_*.json found in {args.current!r}; run the bench "
              "binaries first", file=sys.stderr)
        return 2
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
