// medvaultd — the MedVault HTTP front door as a daemon.
//
//   medvaultd --dir <vault-dir> [--port N] [--shards K] [--workers N]
//             [--max-queue N] [--bootstrap] [--no-durable]
//   medvaultd --dir <replica-dir> --replica-of <port> [--shards K]
//             [--poll-ms N]
//
// Opens (or creates) a sharded vault under --dir on the real
// filesystem and serves the JSON/REST API on 127.0.0.1:<port> until
// SIGINT/SIGTERM. Loopback only: TLS termination and network exposure
// are an outer proxy's job, outside the vault's tamper-evidence
// boundary (see DESIGN.md, "Server & admission control").
//
// Patients direct their own sharing over the same API: POST/GET
// /v1/consent grants and lists delegated read access (per-record or
// patient-wide, time-boxed), POST /v1/consent/revoke kills a grant
// synchronously; every exercise is audited and lands in the §164.528
// disclosure accounting under the grantee's identity.
//
// A primary always runs the audit-transparency service: an in-process
// witness cosigns periodic checkpoints (--checkpoint-interval events,
// polled every --checkpoint-poll-ms) and the server answers
// GET /v1/transparency/* with cosigned checkpoints plus inclusion and
// consistency proofs anyone can verify offline.
//
// A primary always ships: it serves POST /v1/replication/cut/<shard>
// (cursor-HMAC authenticated) and GET /v1/replication. With
// --replica-of the daemon is a warm standby instead: it polls the
// primary's cut endpoint per shard, applies Merkle-verified batches to
// --dir, and exits non-zero if the replica quarantines on tamper
// evidence. MEDVAULT_ENTROPY must match the primary's — without the
// shared secret the cut endpoint refuses the cursor, by design.
//
// Secrets come from the environment, same demo-grade custody as the
// other tools: MEDVAULT_MASTER_KEY / MEDVAULT_ENTROPY for the vault,
// MEDVAULT_API_SECRET for POST /v1/login (no secret = logins refused;
// the health endpoint still works).
//
// --bootstrap registers a starter principal set (admin/clerk/
// physician dr/patient pat/auditor aud, with dr treating pat) so a
// fresh vault is immediately usable; reruns on an existing vault
// ignore the resulting kAlreadyExists.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "core/replication.h"
#include "core/sharded_vault.h"
#include "core/transparency.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/posix_env.h"

namespace {

using medvault::Status;
using medvault::core::Role;
using medvault::core::ShardedVault;
using medvault::core::ShardedVaultOptions;
using medvault::server::MedVaultServer;
using medvault::server::ServerOptions;

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

int Fail(const Status& status) {
  fprintf(stderr, "medvaultd: %s\n", status.ToString().c_str());
  return 1;
}

void Bootstrap(ShardedVault* vault) {
  auto ignore_exists = [](const Status& s) {
    if (!s.ok() && !s.IsAlreadyExists()) {
      fprintf(stderr, "medvaultd: bootstrap: %s\n", s.ToString().c_str());
    }
  };
  ignore_exists(vault->RegisterPrincipal("boot", {"admin", Role::kAdmin,
                                                  "Administrator"}));
  ignore_exists(vault->RegisterPrincipal("admin", {"clerk", Role::kClerk,
                                                   "Registration"}));
  ignore_exists(vault->RegisterPrincipal("admin", {"dr", Role::kPhysician,
                                                   "Physician"}));
  ignore_exists(vault->RegisterPrincipal("admin", {"pat", Role::kPatient,
                                                   "Patient"}));
  ignore_exists(vault->RegisterPrincipal("admin", {"aud", Role::kAuditor,
                                                   "Auditor"}));
  ignore_exists(vault->AssignCare("admin", "dr", "pat"));
}

/// Warm-standby loop: poll the primary's cut endpoint per shard, apply
/// verified batches, stop on SIGINT/SIGTERM (or quarantine).
int RunReplica(medvault::storage::Env* env, const std::string& dir,
               uint32_t shards, uint16_t primary_port, int poll_ms,
               sigset_t* sigs) {
  medvault::core::ShardedReplicaApplier::Options options;
  options.env = env;
  options.dir = dir;
  options.entropy = EnvOr("MEDVAULT_ENTROPY", "");
  options.num_shards = shards;
  if (options.entropy.empty()) {
    fprintf(stderr,
            "medvaultd: --replica-of requires MEDVAULT_ENTROPY (the "
            "primary's) — the shared secret authenticates cursors\n");
    return 2;
  }
  auto applier = medvault::core::ShardedReplicaApplier::Open(options);
  if (!applier.ok()) return Fail(applier.status());
  fprintf(stderr,
          "medvaultd: replica of 127.0.0.1:%u -> %s (%u shards, "
          "poll %d ms)\n",
          primary_port, dir.c_str(), shards, poll_ms);

  medvault::server::HttpClient client;
  while (true) {
    for (uint32_t k = 0; k < shards; ++k) {
      medvault::core::ReplicaApplier* shard = (*applier)->shard(k);
      if (shard == nullptr || shard->quarantined()) continue;
      auto cursor = shard->Cursor();
      if (!cursor.ok()) {
        fprintf(stderr, "medvaultd: shard %u cursor: %s\n", k,
                cursor.status().ToString().c_str());
        continue;
      }
      if (!client.connected() && !client.Connect(primary_port).ok()) {
        break;  // primary down; retry the whole round next poll
      }
      auto response = client.Do(
          "POST", "/v1/replication/cut/" + std::to_string(k),
          cursor->Encode());
      if (!response.ok()) {
        client.Close();
        break;
      }
      if (response->status != 200) {
        fprintf(stderr, "medvaultd: shard %u cut refused (%d): %s", k,
                response->status, response->body.c_str());
        continue;
      }
      Status applied = shard->ApplyEncoded(medvault::Slice(response->body));
      if (!applied.ok()) {
        fprintf(stderr, "medvaultd: shard %u apply: %s\n", k,
                applied.ToString().c_str());
      }
    }
    if ((*applier)->any_quarantined()) {
      fprintf(stderr,
              "medvaultd: replica QUARANTINED (%u shards) — tamper "
              "evidence recorded; operator intervention required\n",
              (*applier)->quarantined_shards());
      return 1;
    }
    struct timespec ts;
    ts.tv_sec = poll_ms / 1000;
    ts.tv_nsec = static_cast<long>(poll_ms % 1000) * 1000000L;
    siginfo_t info;
    if (sigtimedwait(sigs, &info, &ts) > 0) {
      fprintf(stderr,
              "medvaultd: %s — replica stopping (%llu batches applied, "
              "lag %llu bytes)\n",
              strsignal(info.si_signo),
              static_cast<unsigned long long>((*applier)->applied_batches()),
              static_cast<unsigned long long>((*applier)->lag_bytes()));
      return 0;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  ServerOptions server_options;
  uint32_t shards = 4;
  bool bootstrap = false;
  uint16_t replica_of = 0;
  int poll_ms = 500;
  int checkpoint_interval = 1024;  // audit events between checkpoints
  int checkpoint_poll_ms = 1000;   // transparency tick cadence

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      if (const char* v = next()) dir = v;
    } else if (arg == "--port") {
      if (const char* v = next()) server_options.port = static_cast<uint16_t>(atoi(v));
    } else if (arg == "--shards") {
      if (const char* v = next()) shards = static_cast<uint32_t>(atoi(v));
    } else if (arg == "--workers") {
      if (const char* v = next()) server_options.worker_threads = static_cast<unsigned>(atoi(v));
    } else if (arg == "--max-queue") {
      if (const char* v = next()) server_options.admission.max_queue = static_cast<size_t>(atoi(v));
    } else if (arg == "--bootstrap") {
      bootstrap = true;
    } else if (arg == "--no-durable") {
      server_options.durable_writes = false;
    } else if (arg == "--replica-of") {
      if (const char* v = next()) replica_of = static_cast<uint16_t>(atoi(v));
    } else if (arg == "--poll-ms") {
      if (const char* v = next()) poll_ms = atoi(v) > 0 ? atoi(v) : 500;
    } else if (arg == "--checkpoint-interval") {
      if (const char* v = next())
        checkpoint_interval = atoi(v) > 0 ? atoi(v) : 1024;
    } else if (arg == "--checkpoint-poll-ms") {
      if (const char* v = next())
        checkpoint_poll_ms = atoi(v) > 0 ? atoi(v) : 1000;
    } else {
      fprintf(stderr,
              "usage: medvaultd --dir <vault-dir> [--port N] [--shards K] "
              "[--workers N] [--max-queue N] [--bootstrap] [--no-durable]\n"
              "                 [--checkpoint-interval N] "
              "[--checkpoint-poll-ms N]\n"
              "       medvaultd --dir <replica-dir> --replica-of <port> "
              "[--shards K] [--poll-ms N]\n");
      return 2;
    }
  }
  if (dir.empty()) {
    fprintf(stderr, "medvaultd: --dir is required\n");
    return 2;
  }
  if (server_options.port == 0) server_options.port = 8461;

  // Block the termination signals before any thread exists so every
  // thread inherits the mask and only the sigwait below sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  medvault::storage::Env* env = medvault::storage::PosixEnv::Default();
  if (replica_of != 0) {
    return RunReplica(env, dir, shards, replica_of, poll_ms, &sigs);
  }
  medvault::SystemClock clock;

  std::string master = EnvOr("MEDVAULT_MASTER_KEY", "demo-master-key");
  master.resize(32, '#');

  ShardedVaultOptions vault_options;
  vault_options.env = env;
  vault_options.dir = dir;
  vault_options.clock = &clock;
  vault_options.master_key = master;
  vault_options.entropy = EnvOr("MEDVAULT_ENTROPY", "medvaultd-entropy:" + dir);
  vault_options.num_shards = shards;
  vault_options.open_mode = medvault::core::OpenMode::kDegraded;
  vault_options.commit_window_micros = 500;  // coalesce concurrent writers

  auto vault = ShardedVault::Open(vault_options);
  if (!vault.ok()) return Fail(vault.status());
  if (bootstrap) Bootstrap(vault->get());

  server_options.api_secret = EnvOr("MEDVAULT_API_SECRET", "");
  server_options.session_entropy =
      EnvOr("MEDVAULT_ENTROPY", "medvaultd-session:" + dir) + ":sessions";
  server_options.clock = &clock;

  // Every primary ships: standbys pull from /v1/replication/cut/<k>.
  medvault::core::ShardedReplicationSource repl_source(vault->get());
  server_options.repl_source = &repl_source;

  // Every primary also runs the transparency service: witnessed
  // checkpoints plus the /v1/transparency/* proof endpoints. The
  // in-process witness is demo-grade custody (a real deployment runs
  // witnesses in other failure domains), but it exercises the whole
  // cosign path and makes forks self-evident in /v1/health.
  medvault::core::ShardedTransparencyService::Options transparency_options;
  transparency_options.checkpoint_interval =
      static_cast<uint64_t>(checkpoint_interval);
  medvault::core::ShardedTransparencyService transparency(
      vault->get(), transparency_options);
  {
    const std::string seed =
        EnvOr("MEDVAULT_WITNESS_SEED", "medvaultd-witness:" + dir);
    Status added = transparency.AddWitness(
        "witness-local", seed + ":secret", seed + ":public");
    if (!added.ok()) fprintf(stderr, "medvaultd: witness: %s\n",
                             added.ToString().c_str());
  }
  server_options.transparency = &transparency;

  auto server = MedVaultServer::Start(vault->get(), server_options);
  if (!server.ok()) return Fail(server.status());
  fprintf(stderr, "medvaultd: serving %s on 127.0.0.1:%u (%u shards)\n",
          dir.c_str(), (*server)->port(), vault->get()->num_shards());
  if (server_options.api_secret.empty()) {
    fprintf(stderr,
            "medvaultd: MEDVAULT_API_SECRET unset — logins disabled, "
            "health endpoint only\n");
  }

  // Periodic transparency tick instead of a blocking sigwait: publish
  // a witnessed checkpoint whenever the audit log has grown a full
  // interval since the last one (leaf-conserving no-op otherwise).
  int sig = 0;
  while (true) {
    struct timespec ts;
    ts.tv_sec = checkpoint_poll_ms / 1000;
    ts.tv_nsec = static_cast<long>(checkpoint_poll_ms % 1000) * 1000000L;
    siginfo_t info;
    if (sigtimedwait(&sigs, &info, &ts) > 0) {
      sig = info.si_signo;
      break;
    }
    Status ticked = transparency.MaybeCheckpointAll();
    if (!ticked.ok()) {
      fprintf(stderr, "medvaultd: checkpoint tick: %s\n",
              ticked.ToString().c_str());
    }
  }
  fprintf(stderr, "medvaultd: %s — shutting down\n", strsignal(sig));
  (*server)->Stop();
  Status synced = vault->get()->SyncAll();
  if (!synced.ok()) return Fail(synced);
  return 0;
}
